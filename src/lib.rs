//! **Defensive Approximation** — a full-system Rust reproduction of
//! *"Defensive Approximation: Securing CNNs using Approximate Computing"*
//! (Guesmi et al., ASPLOS 2021).
//!
//! This umbrella crate re-exports the workspace's layers:
//!
//! * [`arith`] — gate-level approximate arithmetic (Ax-FPM, HEAP, Bfloat16,
//!   AMA adders, energy model).
//! * [`tensor`] — the dense-tensor substrate.
//! * [`nn`] — the CNN framework with pluggable multipliers.
//! * [`datasets`] — synthetic MNIST/CIFAR-10 stand-ins.
//! * [`attacks`] — the eight-attack adversarial suite.
//! * [`core`] — approximate classifiers, model cache, and the per-table /
//!   per-figure experiment runners.
//!
//! # Thirty-second tour
//!
//! ```
//! use defensive_approximation::arith::MultiplierKind;
//! use defensive_approximation::datasets::digits::synth_digits;
//! use defensive_approximation::nn::zoo::lenet5;
//! use rand::SeedableRng;
//!
//! // A pre-trained-style LeNet-5 (fresh weights here for brevity)...
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = lenet5(10, &mut rng);
//! let batch = synth_digits(4, 1);
//!
//! let exact_logits = model.logits(&batch.images);
//!
//! // ...deployed on approximate hardware: same weights, new multiplier.
//! model.set_multiplier(Some(MultiplierKind::AxFpm.build()));
//! let approx_logits = model.logits(&batch.images);
//!
//! assert_eq!(exact_logits.shape(), approx_logits.shape());
//! assert_ne!(exact_logits, approx_logits); // data-dependent noise is in.
//! ```

pub use da_arith as arith;
pub use da_attacks as attacks;
pub use da_core as core;
pub use da_datasets as datasets;
pub use da_nn as nn;
pub use da_tensor as tensor;
