//! `da-serve`: stand a TCP serving endpoint on a `.daplan` snapshot.
//!
//! ```sh
//! cargo run --release --bin da-serve -- \
//!     --snapshot model.daplan --addr 127.0.0.1:0 --demo-snapshot
//! ```
//!
//! Boots [`BatchServer::from_snapshot`] (mmap cold start, no compilation)
//!
//! [`BatchServer::from_snapshot`]: defensive_approximation::nn::serve::BatchServer::from_snapshot
//! and hands it to the `da_nn::net` reactor. The process prints exactly one
//! `listening on <addr>` line once the socket is bound — harnesses bind
//! port 0 and scrape the kernel-assigned port from that line — then serves
//! until a client sends a `SHUTDOWN` frame, which drains in-flight work and
//! exits 0.
//!
//! `--demo-snapshot` compiles a quantized LeNet-5 on the paper's Ax-FPM
//! multiplier and saves it at `--snapshot` if the file does not exist yet;
//! this is how CI (and a first-time reader) gets a servable artifact
//! without a separate tool.
//!
//! `SIGHUP` hot-reloads the snapshot from `--reload-path` (default: the
//! `--snapshot` path) without dropping a single connection: the handler
//! only flips an atomic and pokes the reactor's self-pipe, and the reactor
//! mmaps + fully validates the replacement before atomically swapping it
//! in. A corrupt replacement is rejected and the old plan keeps serving.
//! Clients can trigger the same reload over the wire with a `RELOAD` frame.

#[cfg(unix)]
fn main() {
    use std::time::Duration;

    use defensive_approximation::nn::net::{NetConfig, NetServer};
    use defensive_approximation::nn::serve::{BatchServer, ServeConfig};

    let mut snapshot = String::from("da-serve.daplan");
    let mut addr = String::from("127.0.0.1:0");
    let mut demo = false;
    let mut serve = ServeConfig::default();
    let mut net = NetConfig::default();
    let mut reload_path: Option<String> = None;
    let mut brownout_snapshot: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| die(&format!("{flag} needs {what}")))
        };
        match flag.as_str() {
            "--snapshot" => snapshot = value("a path"),
            "--addr" => addr = value("host:port"),
            "--demo-snapshot" => demo = true,
            "--workers" => serve.workers = parse(&value("a count")),
            "--max-batch" => serve.max_batch = parse(&value("a count")),
            "--queue" => serve.queue_capacity = parse(&value("a count")),
            "--flush-deadline-us" => {
                serve.flush_deadline = Duration::from_micros(parse(&value("µs")))
            }
            "--flush-deadline-min-us" => {
                serve.flush_deadline_min = Duration::from_micros(parse(&value("µs")))
            }
            "--default-deadline-us" => {
                serve.default_deadline = Some(Duration::from_micros(parse(&value("µs"))))
            }
            "--max-frame" => net.max_frame = parse(&value("bytes")),
            "--max-inflight" => net.max_inflight = parse(&value("a count")),
            "--max-conns" => net.max_conns = parse(&value("a count")),
            "--idle-timeout-ms" => {
                net.idle_timeout = Some(Duration::from_millis(parse(&value("ms"))))
            }
            "--reload-path" => reload_path = Some(value("a path")),
            "--rate" => net.rate = Some(parse(&value("req/s"))),
            "--burst" => net.burst = Some(parse(&value("tokens"))),
            "--conn-rate" => net.conn_rate = Some(parse(&value("req/s"))),
            "--conn-burst" => net.conn_burst = Some(parse(&value("tokens"))),
            "--brownout-snapshot" => brownout_snapshot = Some(value("a path")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other}\n{USAGE}")),
        }
    }

    if demo && !std::path::Path::new(&snapshot).exists() {
        eprintln!("compiling demo snapshot at {snapshot} …");
        write_demo_snapshot(&snapshot);
    }

    // SIGHUP reloads from --reload-path, defaulting to the snapshot we
    // booted from (an operator overwrites the file, then signals).
    net.reload_path = Some(reload_path.unwrap_or_else(|| snapshot.clone()).into());

    let server = match BatchServer::from_snapshot(&snapshot, serve) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot serve snapshot {snapshot}: {e}")),
    };
    // A pre-loaded cheaper plan (typically an int8 snapshot beside the f32
    // one) the server fails over to under sustained shed pressure. Loaded
    // and interface-checked at boot: a brownout is the wrong moment to
    // discover the fallback does not fit.
    if let Some(path) = &brownout_snapshot {
        if let Err(e) = server.set_fallback_from_snapshot(path) {
            die(&format!("cannot use brownout snapshot {path}: {e}"));
        }
        eprintln!("brownout fallback armed from {path}");
    }
    let front = match NetServer::bind(server, addr.as_str(), net) {
        Ok(f) => f,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    install_sighup(front.handle());

    // The one line harnesses scrape; flush so a piped reader sees it
    // before the first request arrives.
    println!("listening on {}", front.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    match front.run() {
        Ok(stats) => eprintln!(
            "drained: {} conns, {} ok replies, {} error replies, {} rate limited, \
             {} protocol errors, {} reloads ok, {} reloads rejected",
            stats.accepted,
            stats.replies_ok,
            stats.replies_err,
            stats.rate_limited,
            stats.protocol_errors,
            stats.reloads_ok,
            stats.reloads_rejected
        ),
        Err(e) => die(&format!("reactor failed: {e}")),
    }
}

/// Route `SIGHUP` to [`NetHandle::reload`]. No `libc` dependency in this
/// workspace, so the registration is a raw `signal(2)` FFI call; the
/// handler body only touches async-signal-safe operations (an atomic store
/// and a `write` to the reactor's self-pipe).
///
/// [`NetHandle::reload`]: defensive_approximation::nn::net::NetHandle::reload
#[cfg(unix)]
fn install_sighup(handle: defensive_approximation::nn::net::NetHandle) {
    use std::sync::OnceLock;

    use defensive_approximation::nn::net::NetHandle;

    static HANDLE: OnceLock<NetHandle> = OnceLock::new();
    HANDLE.set(handle).ok().unwrap_or_else(|| die("SIGHUP handler installed twice"));

    extern "C" fn on_sighup(_sig: i32) {
        // `get` on a set OnceLock is a relaxed load — safe in a handler.
        if let Some(h) = HANDLE.get() {
            h.reload();
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIG_ERR: usize = usize::MAX;
    let prev = unsafe { signal(SIGHUP, on_sighup as *const () as usize) };
    if prev == SIG_ERR {
        die("cannot install SIGHUP handler");
    }
}

#[cfg(unix)]
const USAGE: &str = "usage: da-serve [--snapshot PATH] [--addr HOST:PORT] [--demo-snapshot]
                [--workers N] [--max-batch N] [--queue N]
                [--flush-deadline-us N] [--flush-deadline-min-us N]
                [--default-deadline-us N] [--max-frame BYTES]
                [--max-inflight N] [--max-conns N] [--idle-timeout-ms N]
                [--reload-path PATH]
                [--rate R] [--burst N] [--conn-rate R] [--conn-burst N]
                [--brownout-snapshot PATH]

SIGHUP hot-reloads the plan from --reload-path (default: --snapshot).
--rate/--conn-rate enable token-bucket admission control (req/s, global /
per connection); excess requests get typed Overloaded replies with a
RetryAfter hint. --brownout-snapshot arms a cheaper fallback plan served
under sustained shed pressure (replies are flagged degraded).";

#[cfg(unix)]
fn die(msg: &str) -> ! {
    eprintln!("da-serve: {msg}");
    std::process::exit(2);
}

#[cfg(unix)]
fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| die(&format!("cannot parse {s:?}")))
}

/// Quantized LeNet-5 on Ax-FPM, calibrated on synthetic digits — the same
/// artifact `examples/serve.rs` builds, persisted for cross-process use.
#[cfg(unix)]
fn write_demo_snapshot(path: &str) {
    use defensive_approximation::arith::MultiplierKind;
    use defensive_approximation::datasets::digits::synth_digits;
    use defensive_approximation::nn::engine::InferencePlan;
    use defensive_approximation::nn::zoo::lenet5;
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = lenet5(10, &mut rng);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let calibration = synth_digits(32, 7).images;
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .unwrap_or_else(|| die("demo network failed to quantize"));
    if let Err(e) = plan.save(path) {
        die(&format!("cannot write demo snapshot: {e}"));
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("da-serve: the socket front end requires a Unix platform");
    std::process::exit(2);
}
