//! Regenerate the paper's entire evaluation in one run.
//!
//! ```sh
//! cargo run --release --bin reproduce            # quick budget
//! DA_BUDGET=paper cargo run --release --bin reproduce
//! DA_BUDGET=smoke cargo run --release --bin reproduce
//! ```
//!
//! Prints every table and figure in paper order. Trained backbones are
//! cached under `artifacts/` so re-runs are fast.

use std::time::Instant;

use defensive_approximation::core::experiments::{
    accuracy, blackbox, confidence, dq, energy, fig4, heatmap, profiles, transfer, whitebox,
};
use defensive_approximation::core::{Budget, ModelCache};

fn main() {
    let budget = match std::env::var("DA_BUDGET").as_deref() {
        Ok("paper") => Budget::paper(),
        Ok("smoke") => Budget::smoke(),
        _ => Budget::quick(),
    };
    let cache = ModelCache::default_location();
    let t0 = Instant::now();
    let section = |title: &str| {
        println!("\n──────────────────────────────────────────────────────");
        println!("{title}  [t+{:.0?}]", t0.elapsed());
        println!("──────────────────────────────────────────────────────");
    };

    section("Figure 3 — Ax-FPM noise profile");
    println!("{}", profiles::fig3(&budget));

    section("Figure 4 — convolution vs similarity");
    println!("{}", fig4::fig4(6));

    section("Table 2 — transferability (SynthDigits / LeNet-5)");
    println!("{}", transfer::table2(&cache, &budget));

    section("Table 3 — transferability (SynthObjects / AlexNet)");
    println!("{}", transfer::table3(&cache, &budget));

    section("Table 4 — black-box substitute attacks");
    println!("{}", blackbox::table4(&cache, &budget));

    section("Figures 8 & 10 — white-box DeepFool");
    println!("{}", whitebox::fig8_fig10(&cache, &budget));

    section("Figures 9 & 11 — white-box C&W");
    println!("{}", whitebox::fig9_fig11(&cache, &budget));

    section("Figure 12 — confidence CDF");
    println!("{}", confidence::fig12(&cache, &budget));

    section("Table 5 — DA vs Defensive Quantization");
    println!("{}", dq::table5(&cache, &budget));

    section("Figure 13 — Bfloat16 noise profile");
    println!("{}", profiles::fig13(&budget));

    section("Table 6 — clean accuracy of all variants");
    println!("{}", accuracy::table6(&cache, &budget));

    section("Table 7 — FPM energy & delay");
    println!("{}", energy::table7());

    section("Table 8 — multiplier MRED/NMED + CNN accuracy");
    println!("{}", accuracy::table8(&cache, &budget));

    section("Table 9 — mantissa-core energy & delay");
    println!("{}", energy::table9());

    section("Table 10 — HEAP vs Ax-FPM transferability");
    println!("{}", transfer::table10(&cache, &budget));

    section("Figure 15 — Ax-FPM vs HEAP noise profiles");
    let (ax, heap) = profiles::fig15(&budget);
    println!("{ax}\n{heap}");

    section("Figure 16 — feature-map heat maps");
    println!("{}", heatmap::fig16(&cache, &budget));

    println!("\nreproduction complete in {:.0?}", t0.elapsed());
}
