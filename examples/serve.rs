//! Serve concurrent traffic through the cross-request batch server.
//!
//! ```sh
//! cargo run --release --example serve
//! ```
//!
//! Deploys a LeNet-5 on the paper's Ax-FPM multiplier and stands up a
//! `da_nn::serve::BatchServer`: client threads submit single samples, the
//! server coalesces them into micro-batches and executes them on a shard
//! pool of compiled `InferencePlan` replicas. The demo then verifies the
//! serving contract end to end:
//!
//! 1. every concurrently served logits row is **bit-identical** to a serial
//!    `InferencePlan::predict_batch` on the same sample (the defensive
//!    perturbation must not depend on batch composition), and
//! 2. the server detects when the deployed network drifts from its
//!    compiled snapshot (`BatchServer::is_stale`), and
//! 3. quantized serving runs **from a plan snapshot** — compiled and
//!    calibrated once, saved, then mapped back in milliseconds
//!    (`BatchServer::from_snapshot`) with the measured cold-start delta
//!    printed; see `examples/snapshot.rs` for the warm-pool workflow.

use std::time::{Duration, Instant};

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::datasets::digits::synth_digits;
use defensive_approximation::nn::engine::InferencePlan;
use defensive_approximation::nn::serve::{BatchServer, ServeConfig};
use defensive_approximation::nn::zoo::lenet5;
use defensive_approximation::tensor::Tensor;
use rand::SeedableRng;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 24;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = lenet5(10, &mut rng);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));

    let config = ServeConfig {
        max_batch: 8,
        flush_deadline: Duration::from_micros(500),
        ..ServeConfig::default()
    };
    println!("== Defensive Approximation batch serving ==");
    println!(
        "LeNet-5 on {} | {} workers, max_batch {}, flush deadline {:?}, queue {}",
        MultiplierKind::AxFpm,
        config.workers,
        config.max_batch,
        config.flush_deadline,
        config.queue_capacity
    );

    let server = BatchServer::compile(&net, config).expect("LeNet-5 compiles to serving plans");
    let data = synth_digits(CLIENTS * REQUESTS_PER_CLIENT, 42);

    // Concurrent clients: each submits its slice of the dataset one sample
    // at a time, like independent request streams hitting one endpoint.
    let start = Instant::now();
    let served: Vec<Vec<Tensor>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                let images = &data.images;
                scope.spawn(move || {
                    (0..REQUESTS_PER_CLIENT)
                        .map(|j| {
                            let item = images.batch_item(c * REQUESTS_PER_CLIENT + j);
                            server.logits(&item).expect("server accepting")
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let stats = server.stats();
    println!(
        "served {} samples from {CLIENTS} clients in {:.1} ms ({:.1} items/s)",
        stats.items,
        elapsed * 1e3,
        stats.items as f64 / elapsed
    );
    println!(
        "dispatched {} batches (mean batch {:.2}, largest {})",
        stats.batches,
        stats.mean_batch(),
        stats.largest_batch
    );

    // 1. Bit-identity against serial plan inference.
    let plan = net.plan().expect("same stack compiled for the serial reference");
    let reference = plan.predict_batch(&data.images);
    let classes = reference.shape()[1];
    let mut checked = 0usize;
    for (c, rows) in served.iter().enumerate() {
        for (j, row) in rows.iter().enumerate() {
            let i = c * REQUESTS_PER_CLIENT + j;
            let want = &reference.data()[i * classes..(i + 1) * classes];
            assert_eq!(
                row.data(),
                want,
                "sample {i}: concurrent serving changed the approximate logits"
            );
            checked += 1;
        }
    }
    println!("bit-identity: {checked}/{checked} served rows match serial inference exactly");

    // 2. Staleness detection: redeploying on different hardware makes the
    // server's compiled snapshot stale.
    assert!(!server.is_stale(&net));
    net.set_multiplier(Some(MultiplierKind::Bfloat16.build()));
    assert!(server.is_stale(&net));
    println!("staleness: multiplier swap detected; rebuild the server to serve the new datapath");
    server.shutdown();

    // 3. Int8 serving — via the snapshot path. The quantized plan
    // (LUT-gather GEMMs over the Ax-FPM product table) is compiled and
    // calibrated exactly once, saved to a snapshot file, and every
    // subsequent deployment maps it back in: no calibration pass, no LUT
    // rebuild, and the product tables are served zero-copy straight out of
    // the mapping. The compile-vs-load delta below is the cold start the
    // snapshot deletes.
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let calibration = synth_digits(32, 7).images;
    let snap_path = std::env::temp_dir().join(format!("da-serve-{}.daplan", std::process::id()));
    let start = Instant::now();
    let qplan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("LeNet-5 quantizes");
    let compile_ms = start.elapsed().as_secs_f64() * 1e3;
    qplan.save(&snap_path).expect("snapshot save");
    drop(qplan); // the serving processes below start from the file alone
    let start = Instant::now();
    let qserver =
        BatchServer::from_snapshot(&snap_path, ServeConfig::default()).expect("snapshot load");
    let load_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "cold start: compile+calibrate {compile_ms:.1} ms vs snapshot map {load_ms:.2} ms \
         ({:.0}x faster; identical logits)",
        compile_ms / load_ms
    );
    let f32_preds: Vec<usize> = net.predict(&data.images);
    let total = data.images.shape()[0];
    let start = Instant::now();
    // Pipelined submission (like real request streams): all samples in
    // flight at once, so the server forms full batches.
    let pending: Vec<_> = (0..total)
        .map(|i| qserver.submit(&data.images.batch_item(i)).expect("accepting"))
        .collect();
    let mut agree = 0usize;
    for (i, p) in pending.into_iter().enumerate() {
        let logits = p.wait().expect("served");
        let pred = defensive_approximation::nn::loss::argmax_logits(logits.data());
        agree += usize::from(pred == f32_preds[i]);
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "int8 serving: {total} samples in {:.1} ms ({:.1} items/s); {agree}/{total} predictions match the f32 deployment",
        elapsed * 1e3,
        total as f64 / elapsed,
    );
    qserver.shutdown();
    std::fs::remove_file(&snap_path).ok();

    // 4. Int4 serving: weights narrow to 16 codes where the calibration
    // batch says the layer tolerates it (the rest stay on the int8 gather),
    // and accepted layers run the in-register shuffle GEMM. The mixed
    // int4/int8 layer split survives the snapshot round trip, so the plan
    // is compiled once and both the server and the serial reference share
    // the same mapped file.
    let mult = net.multiplier().cloned();
    let q4plan = InferencePlan::compile_quantized_int4(&net, mult, &calibration)
        .expect("LeNet-5 quantizes to int4");
    let snap4_path = std::env::temp_dir().join(format!("da-serve4-{}.daplan", std::process::id()));
    q4plan.save(&snap4_path).expect("snapshot save");
    drop(q4plan);
    let q4server =
        BatchServer::from_snapshot(&snap4_path, ServeConfig::default()).expect("snapshot load");
    let q4plan = InferencePlan::load(&snap4_path).expect("snapshot load");
    let (int4_layers, int8_fallback) = q4plan.int4_layer_mix();
    let start = Instant::now();
    let pending: Vec<_> = (0..total)
        .map(|i| q4server.submit(&data.images.batch_item(i)).expect("accepting"))
        .collect();
    let mut agree4 = 0usize;
    for (i, p) in pending.into_iter().enumerate() {
        let logits = p.wait().expect("served");
        let pred = defensive_approximation::nn::loss::argmax_logits(logits.data());
        agree4 += usize::from(pred == f32_preds[i]);
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "int4 serving: {total} samples in {:.1} ms ({:.1} items/s); {int4_layers} layers on the \
         shuffle GEMM, {int8_fallback} on the int8 gather; {agree4}/{total} predictions match the \
         f32 deployment",
        elapsed * 1e3,
        total as f64 / elapsed,
    );
    q4server.shutdown();
    std::fs::remove_file(&snap4_path).ok();
}
