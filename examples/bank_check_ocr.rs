//! Bank-check digit recognition under attack — the paper's motivating
//! scenario (§2.1: "an attacker could easily fool the model to predict wrong
//! bank account numbers or amounts").
//!
//! ```sh
//! cargo run --release --example bank_check_ocr
//! ```
//!
//! An eight-digit "courtesy amount" is read by a LeNet-5 OCR stage; an
//! adversary perturbs the digits with C&W to change the amount. We compare
//! the exact reader against the DA reader on the *same* adversarial images.

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::attacks::gradient::CarliniWagnerL2;
use defensive_approximation::attacks::{metrics, Attack, TargetModel};
use defensive_approximation::core::experiments::transfer::with_multiplier;
use defensive_approximation::core::{Budget, ModelCache};
use defensive_approximation::datasets::digits::{digit_image, DigitStyle};
use defensive_approximation::datasets::raster::ascii_art;
use rand::SeedableRng;

fn main() {
    let cache = ModelCache::default_location();
    let budget = Budget::quick();
    let exact_reader = cache.lenet(&budget);
    let da_reader = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);

    // The cheque amount: $4,271,903.58 -> digit stream.
    let amount = [4usize, 2, 7, 1, 9, 0, 3, 5];
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let style = DigitStyle::default();
    let attack = CarliniWagnerL2::standard();

    println!("== Bank-check OCR under C&W attack ==");
    let mut exact_read = Vec::new();
    let mut da_read = Vec::new();
    let mut total_noise = 0.0;
    for &digit in &amount {
        let clean = digit_image(digit, &style, &mut rng);
        let adv = attack.run(&exact_reader, &clean, digit);
        total_noise += metrics::l2(&adv, &clean);
        exact_read.push(TargetModel::predict(&exact_reader, &adv));
        da_read.push(TargetModel::predict(&da_reader, &adv));
        if digit == amount[0] {
            println!("first adversarial digit (true = {digit}):");
            println!("{}", ascii_art(adv.data(), 28));
        }
    }

    let fmt = |ds: &[usize]| ds.iter().map(|d| d.to_string()).collect::<String>();
    println!("true amount digits     : {}", fmt(&amount));
    println!(
        "exact reader sees      : {}  ({} digits corrupted)",
        fmt(&exact_read),
        exact_read.iter().zip(&amount).filter(|(a, b)| a != b).count()
    );
    println!(
        "DA reader sees         : {}  ({} digits corrupted)",
        fmt(&da_read),
        da_read.iter().zip(&amount).filter(|(a, b)| a != b).count()
    );
    println!("mean adversarial L2    : {:.3}", total_noise / amount.len() as f64);
    println!("(paper Table 2: C&W transfers to the approximate classifier at ~1%)");
}
