//! The white-box perturbation price (paper Figures 8–11): how much more
//! noise an attacker with *full knowledge of the defense* must inject to
//! fool the approximate classifier.
//!
//! ```sh
//! cargo run --release --example whitebox_cost
//! ```

use defensive_approximation::core::experiments::whitebox::{fig8_fig10, fig9_fig11};
use defensive_approximation::core::{Budget, ModelCache};

fn main() {
    let cache = ModelCache::default_location();
    let budget = Budget::quick();

    println!("== White-box attack cost: exact vs DA (BPDA gradients) ==\n");
    let df = fig8_fig10(&cache, &budget);
    println!("{df}");
    let cw = fig9_fig11(&cache, &budget);
    println!("{cw}");
    println!("paper reference: DF L2 gap ~5.12, C&W L2 gap ~1.23,");
    println!("                 PSNR drop ~7.8 dB (DF) / ~4 dB (C&W).");
}
