//! Loopback load generator for the `da-serve` socket front end.
//!
//! ```sh
//! # against a running server (CI does this after scraping da-serve's port)
//! cargo run --release --example serve_loadgen -- --addr 127.0.0.1:PORT --shutdown
//!
//! # self-contained: boots an in-process front end on a demo plan
//! cargo run --release --example serve_loadgen
//! ```
//!
//! Spawns `--clients` threads, each holding one TCP connection and issuing
//! `--requests` single-sample `INFER`s back to back; per-request wall
//! latency is recorded client-side. Prints p50/p99 latency and aggregate
//! throughput, and — with `DA_BENCH_JSON=<path>` — emits a
//! `serve_latency` row per run in the `da_bench::json` schema, so the
//! cross-process path is regression-tracked exactly like the in-process
//! benches (`check_bench_json` compares the documents).
//!
//! `--verify PATH` additionally maps the server's own `.daplan` snapshot
//! in this process and asserts every served logits row is **bit-identical**
//! to serial [`InferencePlan::predict_batch`] — the serve module's
//! contract, enforced across the wire.
//!
//! `--shutdown` sends a `SHUTDOWN` frame when done, draining the server
//! (that is how CI stops `da-serve` and collects its exit code).
//!
//! # Open-loop overload mode
//!
//! `--poisson RATE` switches to an **open-loop** arrival process: requests
//! fire at exponentially distributed inter-arrival times at `RATE`/s
//! regardless of how fast replies come back — the traffic shape a public
//! endpoint actually sees, and the one that distinguishes overload control
//! from congestion collapse. `--poisson-factor F` first measures closed-loop
//! capacity with the normal hammer, then drives the open loop at `F×` that
//! rate (machine-independent — CI uses `--poisson-factor 2`). Every request
//! carries `--deadline-ms`; replies are classified as accepted (latency
//! recorded, bit-identity verified), shed (`Overloaded`, the typed refusal
//! with a RetryAfter hint), or expired (`DeadlineExceeded`). Results are
//! emitted as a `serve_overload` row; `--min-sheds N` asserts the server
//! actually shed under pressure instead of hanging.

#[cfg(unix)]
use std::io::{Read, Write};
#[cfg(unix)]
use std::sync::Mutex;
#[cfg(unix)]
use std::time::{Duration, Instant};

#[cfg(unix)]
use da_bench::json::{JsonEmitter, Record};
#[cfg(unix)]
use defensive_approximation::datasets::digits::synth_digits;
#[cfg(unix)]
use defensive_approximation::nn::engine::InferencePlan;
#[cfg(unix)]
use defensive_approximation::nn::net::{
    frame, Client, ErrCode, FrameDecoder, Message, NetConfig, NetServer, DEFAULT_MAX_FRAME,
};
#[cfg(unix)]
use defensive_approximation::nn::serve::{BatchServer, ServeConfig};
#[cfg(unix)]
use defensive_approximation::tensor::Tensor;
#[cfg(unix)]
use rand::{Rng, SeedableRng};

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_loadgen: the socket front end requires a Unix platform");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() {
    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut addr: Option<String> = None;
    let mut verify: Option<String> = None;
    let mut clients: usize = if smoke { 2 } else { 4 };
    let mut requests: usize = if smoke { 16 } else { 64 };
    let mut shutdown = false;
    let mut min_generation: Option<u64> = None;
    let mut poisson: Option<f64> = None;
    let mut poisson_factor: Option<f64> = None;
    let mut deadline_ms: f64 = 50.0;
    let mut min_sheds: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--verify" => verify = Some(value()),
            "--clients" => clients = value().parse().unwrap_or_else(|_| die("bad --clients")),
            "--requests" => requests = value().parse().unwrap_or_else(|_| die("bad --requests")),
            "--shutdown" => shutdown = true,
            "--min-generation" => {
                min_generation =
                    Some(value().parse().unwrap_or_else(|_| die("bad --min-generation")))
            }
            "--poisson" => poisson = Some(value().parse().unwrap_or_else(|_| die("bad --poisson"))),
            "--poisson-factor" => {
                poisson_factor =
                    Some(value().parse().unwrap_or_else(|_| die("bad --poisson-factor")))
            }
            "--deadline-ms" => {
                deadline_ms = value().parse().unwrap_or_else(|_| die("bad --deadline-ms"))
            }
            "--min-sheds" => {
                min_sheds = Some(value().parse().unwrap_or_else(|_| die("bad --min-sheds")))
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if poisson.is_some() && poisson_factor.is_some() {
        die("--poisson and --poisson-factor are mutually exclusive");
    }
    if !(deadline_ms.is_finite() && deadline_ms > 0.0) {
        die("--deadline-ms must be positive");
    }

    // No --addr: boot an in-process front end on a demo snapshot so the
    // example is runnable (and benchable) standalone.
    let selfhost = addr.is_none().then(|| {
        let path = std::env::temp_dir().join(format!("da-loadgen-{}.daplan", std::process::id()));
        write_demo_snapshot(&path);
        let server = BatchServer::from_snapshot(&path, ServeConfig::default())
            .expect("demo snapshot serves");
        let front =
            NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        if verify.is_none() {
            verify = Some(path.display().to_string());
        }
        let (bound, handle, join) = front.spawn();
        println!("self-hosting on {bound}");
        (bound.to_string(), handle, join, path)
    });
    let addr = addr.unwrap_or_else(|| selfhost.as_ref().expect("self-host").0.clone());

    let data = synth_digits(clients * requests, 42);
    let total = clients * requests;

    if poisson.is_some() || poisson_factor.is_some() {
        // Open-loop overload mode. With --poisson-factor the target rate is
        // F× the capacity a closed-loop hammer just measured on this
        // machine, so the overload level is machine-independent.
        let open_conns = clients.max(16);
        let rate = match poisson {
            Some(r) => r,
            None => {
                let factor = poisson_factor.expect("checked");
                // Calibrate at saturation: a couple of synchronous clients
                // measure latency, not capacity (the server would sit half
                // idle between their requests), and "2x" of that undershoots
                // the real ceiling. Use the same concurrency the open-loop
                // run will.
                let cal = synth_digits(open_conns * requests, 42);
                let (_, _, elapsed) = closed_loop(&addr, &cal.images, open_conns, requests);
                let capacity = (open_conns * requests) as f64 / elapsed;
                let rate = capacity * factor;
                println!(
                    "measured closed-loop capacity {capacity:.0} items/s \
                     at concurrency {open_conns}; open loop at {factor}x = {rate:.0} req/s"
                );
                rate
            }
        };
        if !(rate.is_finite() && rate > 0.0) {
            die("open-loop rate must be positive");
        }
        let deadline = Duration::from_secs_f64(deadline_ms / 1e3);
        // Size the run by wall clock, not by the closed-loop request count:
        // sheds only appear once sustained traffic outgrows the queue, so a
        // fixed handful of requests measures nothing. Spread the offered
        // load over enough connections that the backlog is actually visible
        // to the server — per-connection inflight is capped, and anything
        // beyond it waits in kernel socket buffers where no deadline ticks.
        let window = (deadline_ms / 1e3 * 10.0).max(0.5);
        let open_total = ((rate * window).ceil() as usize).clamp(64, 20_000);
        let open_data = synth_digits(open_total, 42);
        let out = open_loop(&addr, &open_data.images, open_total, open_conns, rate, deadline);

        let accepted = out.accepted.len();
        let answered = accepted + out.shed + out.expired;
        assert_eq!(answered, open_total, "every offered request must get exactly one reply");
        let mut lat: Vec<f64> = out.accepted.iter().map(|a| a.latency_ms).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p50 = percentile(&lat, 50.0);
        let p99 = percentile(&lat, 99.0);
        let goodput = accepted as f64 / out.elapsed;
        let degraded = out.accepted.iter().filter(|a| a.degraded).count();

        let mut probe = Client::connect(addr.as_str()).expect("connect for stats");
        let stats = probe.stats().expect("stats");
        println!(
            "open loop: offered {open_total} on {open_conns} conns at {rate:.0}/s \
             over {:.1} ms, deadline {deadline_ms} ms",
            out.elapsed * 1e3
        );
        println!(
            "  accepted {accepted} ({goodput:.0}/s goodput, {degraded} degraded), \
             shed {} (typed Overloaded), expired {} — p50 {p50:.3} ms, p99 {p99:.3} ms",
            out.shed, out.expired
        );
        println!(
            "  server: shed_total {}, rate_limited {}, degraded_total {}, \
             ewma_service {} ns, expired {}",
            stats.shed_total,
            stats.rate_limited,
            stats.degraded_total,
            stats.ewma_service_ns,
            stats.deadline_expired
        );

        // Bit-identity of the survivors: accepted rows must still match the
        // snapshot's serial reference exactly — overload changes who gets
        // served, never what they are served.
        if let Some(path) = &verify {
            let plan = InferencePlan::load(path).expect("verification snapshot maps");
            let reference = plan.predict_batch(&open_data.images);
            let classes = reference.shape()[1];
            for a in &out.accepted {
                let want = &reference.data()[a.index * classes..(a.index + 1) * classes];
                assert!(
                    bits_eq(&a.logits, want),
                    "sample {}: accepted logits diverged from serial inference",
                    a.index
                );
            }
            println!("  bit-identity: {accepted}/{accepted} accepted rows match the plan");
        }

        if let Some(min) = min_sheds {
            let sheds = (out.shed + out.expired) as u64;
            assert!(sheds >= min, "expected >= {min} shed requests under overload, saw {sheds}");
            assert!(accepted > 0, "overload control must keep accepting, not blackhole");
            // Accepted requests must clear near their deadline, not drift
            // into an uncontrolled queue. Admission allows an estimated
            // wait up to the full deadline, so client-observed completion
            // sits at deadline + service + RTT; the 2x factor bounds that
            // tail without flaking on slow runners.
            assert!(
                p99 <= deadline_ms * 2.0,
                "p99 of accepted requests ({p99:.1} ms) blew the {deadline_ms} ms deadline"
            );
            println!("  overload checks: sheds {sheds} >= {min}, p99 within deadline, ok");
        }

        if shutdown {
            probe.shutdown_server().expect("shutdown handshake");
            println!("server acknowledged shutdown; draining");
        }

        let mut emitter = JsonEmitter::from_env("serve_overload");
        emitter.record(
            Record::new()
                .label("scenario", "serve_overload")
                .label("transport", "tcp-loopback")
                .label(
                    "mode",
                    if poisson_factor.is_some() { "poisson-factor" } else { "poisson" },
                )
                .label("clients", open_conns.to_string())
                .metric("offered_per_sec", rate)
                .metric("goodput_per_sec", goodput)
                .metric("accepted", accepted as f64)
                .metric("shed", out.shed as f64)
                .metric("expired", out.expired as f64)
                .metric("degraded", degraded as f64)
                .metric("p50_ms", p50)
                .metric("p99_ms", p99)
                .metric("deadline_ms", deadline_ms),
        );
        if let Some(path) = emitter.finish() {
            println!("bench JSON written to {}", path.display());
        }

        if let Some((_, handle, join, path)) = selfhost {
            handle.shutdown();
            join.join().expect("reactor thread").expect("reactor exit");
            std::fs::remove_file(&path).ok();
        }
        return;
    }

    // Closed-loop hammer: one connection per client thread, synchronous
    // request loops.
    let (latencies, logits_by_index, elapsed) = closed_loop(&addr, &data.images, clients, requests);
    let mut latencies = latencies;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let items_per_sec = total as f64 / elapsed;

    // Server-side counters over the wire.
    let mut probe = Client::connect(addr.as_str()).expect("connect for stats");
    let stats = probe.stats().expect("stats");
    let (batches, items) = (stats.batches, stats.items);
    let mean_batch = if batches == 0 { 0.0 } else { items as f64 / batches as f64 };

    println!(
        "{total} requests from {clients} conns in {:.1} ms: p50 {p50:.3} ms, p99 {p99:.3} ms, \
         {items_per_sec:.0} items/s",
        elapsed * 1e3
    );
    println!(
        "server: {batches} batches / {items} items (mean batch {mean_batch:.2}), \
         flush deadline now {} ns, generation {}, restarts {}, expired {}",
        stats.flush_deadline_ns, stats.generation, stats.worker_restarts, stats.deadline_expired
    );

    // CI's SIGHUP-reload smoke: every request above already had to succeed
    // (zero dropped connections), and the plan generation must show the
    // mid-loadgen reload landed.
    if let Some(min) = min_generation {
        assert!(
            stats.generation >= min,
            "expected plan generation >= {min} after reload, server reports {}",
            stats.generation
        );
        println!("generation check: {} >= {min} ok", stats.generation);
    }

    // Cross-process bit-identity against the snapshot's serial reference.
    if let Some(path) = &verify {
        let plan = InferencePlan::load(path).expect("verification snapshot maps");
        let reference = plan.predict_batch(&data.images);
        let classes = reference.shape()[1];
        let mut checked = 0usize;
        for (i, row) in logits_by_index.iter().enumerate() {
            let want = &reference.data()[i * classes..(i + 1) * classes];
            assert!(bits_eq(row, want), "sample {i}: served logits diverged from serial inference");
            checked += 1;
        }
        println!("bit-identity: {checked}/{total} served rows match the mapped plan exactly");
    }

    if shutdown {
        probe.shutdown_server().expect("shutdown handshake");
        println!("server acknowledged shutdown; draining");
    }

    let mut emitter = JsonEmitter::from_env("serve_latency");
    emitter.record(
        Record::new()
            .label("scenario", "serve_latency")
            .label("transport", "tcp-loopback")
            .label("clients", clients.to_string())
            .label("requests_per_client", requests.to_string())
            .metric("p50_ms", p50)
            .metric("p99_ms", p99)
            .metric("items_per_sec", items_per_sec)
            .metric("mean_batch", mean_batch),
    );
    if let Some(path) = emitter.finish() {
        println!("bench JSON written to {}", path.display());
    }

    if let Some((_, handle, join, path)) = selfhost {
        handle.shutdown();
        join.join().expect("reactor thread").expect("reactor exit");
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(unix)]
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The closed-loop hammer: `clients` synchronous request loops. Returns
/// per-request latencies (ms, unsorted), served logits indexed like
/// `images`, and the wall-clock seconds the whole run took.
#[cfg(unix)]
fn closed_loop(
    addr: &str,
    images: &Tensor,
    clients: usize,
    requests: usize,
) -> (Vec<f64>, Vec<Vec<f32>>, f64) {
    let start = Instant::now();
    let results: Vec<(Vec<f64>, Vec<Vec<f32>>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
                    let mut lat_ms = Vec::with_capacity(requests);
                    let mut logits = Vec::with_capacity(requests);
                    for j in 0..requests {
                        let item = images.batch_item(c * requests + j);
                        let t0 = Instant::now();
                        let reply = client
                            .infer(item.shape(), item.data())
                            .expect("transport")
                            .unwrap_or_else(|refusal| {
                                die(&format!(
                                    "server refused request: {:?} {}",
                                    refusal.code, refusal.msg
                                ))
                            });
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        logits.push(reply.data);
                    }
                    (lat_ms, logits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let latencies: Vec<f64> = results.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    let logits: Vec<Vec<f32>> = results.into_iter().flat_map(|(_, g)| g).collect();
    (latencies, logits, elapsed)
}

/// One accepted open-loop reply.
#[cfg(unix)]
struct Accepted {
    /// Index into the offered image batch (`req_id - 1`).
    index: usize,
    logits: Vec<f32>,
    degraded: bool,
    latency_ms: f64,
}

#[cfg(unix)]
struct OpenLoopOutcome {
    accepted: Vec<Accepted>,
    /// Typed `Overloaded` refusals (estimate-shed, shed-oldest, rate limit).
    shed: usize,
    /// Typed `DeadlineExceeded` refusals (expired while queued).
    expired: usize,
    /// Wall-clock seconds from first scheduled send to last reply.
    elapsed: f64,
}

/// Open-loop Poisson driver: `total` requests at exponential inter-arrival
/// times (rate `rate`/s), spread round-robin over `clients` connections,
/// each with a per-sender and per-receiver thread so sends never wait for
/// replies. Every request must be answered — a hang is fatal, not silent.
#[cfg(unix)]
fn open_loop(
    addr: &str,
    images: &Tensor,
    total: usize,
    clients: usize,
    rate: f64,
    deadline: Duration,
) -> OpenLoopOutcome {
    // Deterministic schedule (fixed seed): CI reruns see the same arrival
    // pattern, so shed counts are comparable run to run.
    let mut rng = rand::rngs::StdRng::seed_from_u64(999);
    let mut at = 0.0f64;
    let offsets: Vec<Duration> = (0..total)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            at += -(1.0 - u).ln() / rate;
            Duration::from_secs_f64(at)
        })
        .collect();
    let clients = clients.max(1).min(total.max(1));
    // Send instants land here right before each write; the receiver reads
    // them after the reply arrives (the TCP round trip orders the accesses).
    let send_at: Vec<Mutex<Option<Instant>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let read_timeout = Duration::from_secs(10).max(deadline * 20);
    let deadline_us = deadline.as_micros().clamp(1, u128::from(u32::MAX)) as u32;

    let start = Instant::now();
    let per_conn: Vec<(Vec<Accepted>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let send_at = &send_at;
                let offsets = &offsets;
                scope.spawn(move || {
                    let stream = std::net::TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    stream.set_read_timeout(Some(read_timeout)).expect("read timeout");
                    let mine: Vec<usize> = (c..total).step_by(clients).collect();
                    let expect = mine.len();

                    // Sender half: fire at the schedule, never at the replies.
                    let mut tx = stream.try_clone().expect("clone stream");
                    let sender = scope.spawn(move || {
                        for i in mine {
                            let until = offsets[i].saturating_sub(start.elapsed());
                            if !until.is_zero() {
                                std::thread::sleep(until);
                            }
                            let item = images.batch_item(i);
                            let msg = Message::Infer {
                                req_id: i as u64 + 1,
                                deadline_us,
                                shape: item.shape().to_vec(),
                                data: item.data().to_vec(),
                            };
                            *send_at[i].lock().expect("send slot") = Some(Instant::now());
                            tx.write_all(&frame::encode(&msg)).expect("send");
                        }
                    });

                    // Receiver half: classify every reply; a read timeout is
                    // the hang this harness exists to rule out.
                    let mut rx = stream;
                    let mut dec = FrameDecoder::new();
                    let mut buf = [0u8; 64 * 1024];
                    let mut accepted = Vec::new();
                    let (mut shed, mut expired, mut seen) = (0usize, 0usize, 0usize);
                    while seen < expect {
                        let payload = loop {
                            if let Some(p) =
                                dec.next_payload(DEFAULT_MAX_FRAME).expect("well-framed reply")
                            {
                                break p;
                            }
                            let n = rx.read(&mut buf).expect("reply (hang = overload collapse)");
                            assert!(n > 0, "server closed with {seen}/{expect} replies delivered");
                            dec.push(&buf[..n]);
                        };
                        let arrived = Instant::now();
                        match frame::decode(&payload).expect("well-formed reply") {
                            Message::InferOk { req_id, degraded, data, .. } => {
                                let index = req_id as usize - 1;
                                let sent = send_at[index]
                                    .lock()
                                    .expect("send slot")
                                    .expect("reply before send");
                                accepted.push(Accepted {
                                    index,
                                    logits: data,
                                    degraded,
                                    latency_ms: arrived.duration_since(sent).as_secs_f64() * 1e3,
                                });
                            }
                            Message::InferErr { code: ErrCode::Overloaded, .. } => shed += 1,
                            Message::InferErr { code: ErrCode::DeadlineExceeded, .. } => {
                                expired += 1
                            }
                            other => die(&format!("unexpected open-loop reply: {other:?}")),
                        }
                        seen += 1;
                    }
                    sender.join().expect("sender thread");
                    (accepted, shed, expired)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection pair")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut out = OpenLoopOutcome { accepted: Vec::new(), shed: 0, expired: 0, elapsed };
    for (accepted, shed, expired) in per_conn {
        out.accepted.extend(accepted);
        out.shed += shed;
        out.expired += expired;
    }
    out
}

/// `q`-th percentile of an ascending-sorted slice (nearest-rank).
#[cfg(unix)]
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(unix)]
fn die(msg: &str) -> ! {
    eprintln!("serve_loadgen: {msg}");
    std::process::exit(2);
}

/// Same artifact `da-serve --demo-snapshot` produces.
#[cfg(unix)]
fn write_demo_snapshot(path: &std::path::Path) {
    use defensive_approximation::arith::MultiplierKind;
    use defensive_approximation::nn::zoo::lenet5;
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = lenet5(10, &mut rng);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let calibration: Tensor = synth_digits(32, 7).images;
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("demo network quantizes");
    plan.save(path).expect("snapshot save");
}
