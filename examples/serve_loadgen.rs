//! Loopback load generator for the `da-serve` socket front end.
//!
//! ```sh
//! # against a running server (CI does this after scraping da-serve's port)
//! cargo run --release --example serve_loadgen -- --addr 127.0.0.1:PORT --shutdown
//!
//! # self-contained: boots an in-process front end on a demo plan
//! cargo run --release --example serve_loadgen
//! ```
//!
//! Spawns `--clients` threads, each holding one TCP connection and issuing
//! `--requests` single-sample `INFER`s back to back; per-request wall
//! latency is recorded client-side. Prints p50/p99 latency and aggregate
//! throughput, and — with `DA_BENCH_JSON=<path>` — emits a
//! `serve_latency` row per run in the `da_bench::json` schema, so the
//! cross-process path is regression-tracked exactly like the in-process
//! benches (`check_bench_json` compares the documents).
//!
//! `--verify PATH` additionally maps the server's own `.daplan` snapshot
//! in this process and asserts every served logits row is **bit-identical**
//! to serial [`InferencePlan::predict_batch`] — the serve module's
//! contract, enforced across the wire.
//!
//! `--shutdown` sends a `SHUTDOWN` frame when done, draining the server
//! (that is how CI stops `da-serve` and collects its exit code).

#[cfg(unix)]
use std::time::{Duration, Instant};

#[cfg(unix)]
use da_bench::json::{JsonEmitter, Record};
#[cfg(unix)]
use defensive_approximation::datasets::digits::synth_digits;
#[cfg(unix)]
use defensive_approximation::nn::engine::InferencePlan;
#[cfg(unix)]
use defensive_approximation::nn::net::{Client, NetConfig, NetServer};
#[cfg(unix)]
use defensive_approximation::nn::serve::{BatchServer, ServeConfig};
#[cfg(unix)]
use defensive_approximation::tensor::Tensor;

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_loadgen: the socket front end requires a Unix platform");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() {
    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut addr: Option<String> = None;
    let mut verify: Option<String> = None;
    let mut clients: usize = if smoke { 2 } else { 4 };
    let mut requests: usize = if smoke { 16 } else { 64 };
    let mut shutdown = false;
    let mut min_generation: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--verify" => verify = Some(value()),
            "--clients" => clients = value().parse().unwrap_or_else(|_| die("bad --clients")),
            "--requests" => requests = value().parse().unwrap_or_else(|_| die("bad --requests")),
            "--shutdown" => shutdown = true,
            "--min-generation" => {
                min_generation =
                    Some(value().parse().unwrap_or_else(|_| die("bad --min-generation")))
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    // No --addr: boot an in-process front end on a demo snapshot so the
    // example is runnable (and benchable) standalone.
    let selfhost = addr.is_none().then(|| {
        let path = std::env::temp_dir().join(format!("da-loadgen-{}.daplan", std::process::id()));
        write_demo_snapshot(&path);
        let server = BatchServer::from_snapshot(&path, ServeConfig::default())
            .expect("demo snapshot serves");
        let front =
            NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        if verify.is_none() {
            verify = Some(path.display().to_string());
        }
        let (bound, handle, join) = front.spawn();
        println!("self-hosting on {bound}");
        (bound.to_string(), handle, join, path)
    });
    let addr = addr.unwrap_or_else(|| selfhost.as_ref().expect("self-host").0.clone());

    let data = synth_digits(clients * requests, 42);
    let total = clients * requests;

    // Hammer: one connection per client thread, synchronous request loops.
    let start = Instant::now();
    let results: Vec<(Vec<f64>, Vec<Vec<f32>>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.as_str();
                let images = &data.images;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
                    let mut lat_ms = Vec::with_capacity(requests);
                    let mut logits = Vec::with_capacity(requests);
                    for j in 0..requests {
                        let item = images.batch_item(c * requests + j);
                        let t0 = Instant::now();
                        let reply = client
                            .infer(item.shape(), item.data())
                            .expect("transport")
                            .unwrap_or_else(|(code, msg)| {
                                die(&format!("server refused request: {code:?} {msg}"))
                            });
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        logits.push(reply.1);
                    }
                    (lat_ms, logits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = results.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let items_per_sec = total as f64 / elapsed;

    // Server-side counters over the wire.
    let mut probe = Client::connect(addr.as_str()).expect("connect for stats");
    let stats = probe.stats().expect("stats");
    let (batches, items) = (stats.batches, stats.items);
    let mean_batch = if batches == 0 { 0.0 } else { items as f64 / batches as f64 };

    println!(
        "{total} requests from {clients} conns in {:.1} ms: p50 {p50:.3} ms, p99 {p99:.3} ms, \
         {items_per_sec:.0} items/s",
        elapsed * 1e3
    );
    println!(
        "server: {batches} batches / {items} items (mean batch {mean_batch:.2}), \
         flush deadline now {} ns, generation {}, restarts {}, expired {}",
        stats.flush_deadline_ns, stats.generation, stats.worker_restarts, stats.deadline_expired
    );

    // CI's SIGHUP-reload smoke: every request above already had to succeed
    // (zero dropped connections), and the plan generation must show the
    // mid-loadgen reload landed.
    if let Some(min) = min_generation {
        assert!(
            stats.generation >= min,
            "expected plan generation >= {min} after reload, server reports {}",
            stats.generation
        );
        println!("generation check: {} >= {min} ok", stats.generation);
    }

    // Cross-process bit-identity against the snapshot's serial reference.
    if let Some(path) = &verify {
        let plan = InferencePlan::load(path).expect("verification snapshot maps");
        let reference = plan.predict_batch(&data.images);
        let classes = reference.shape()[1];
        let mut checked = 0usize;
        for (c, (_, logits)) in results.iter().enumerate() {
            for (j, row) in logits.iter().enumerate() {
                let i = c * requests + j;
                let want = &reference.data()[i * classes..(i + 1) * classes];
                assert!(
                    bits_eq(row, want),
                    "sample {i}: served logits diverged from serial inference"
                );
                checked += 1;
            }
        }
        println!("bit-identity: {checked}/{total} served rows match the mapped plan exactly");
    }

    if shutdown {
        probe.shutdown_server().expect("shutdown handshake");
        println!("server acknowledged shutdown; draining");
    }

    let mut emitter = JsonEmitter::from_env("serve_latency");
    emitter.record(
        Record::new()
            .label("scenario", "serve_latency")
            .label("transport", "tcp-loopback")
            .label("clients", clients.to_string())
            .label("requests_per_client", requests.to_string())
            .metric("p50_ms", p50)
            .metric("p99_ms", p99)
            .metric("items_per_sec", items_per_sec)
            .metric("mean_batch", mean_batch),
    );
    if let Some(path) = emitter.finish() {
        println!("bench JSON written to {}", path.display());
    }

    if let Some((_, handle, join, path)) = selfhost {
        handle.shutdown();
        join.join().expect("reactor thread").expect("reactor exit");
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(unix)]
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// `q`-th percentile of an ascending-sorted slice (nearest-rank).
#[cfg(unix)]
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(unix)]
fn die(msg: &str) -> ! {
    eprintln!("serve_loadgen: {msg}");
    std::process::exit(2);
}

/// Same artifact `da-serve --demo-snapshot` produces.
#[cfg(unix)]
fn write_demo_snapshot(path: &std::path::Path) {
    use defensive_approximation::arith::MultiplierKind;
    use defensive_approximation::nn::zoo::lenet5;
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = lenet5(10, &mut rng);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let calibration: Tensor = synth_digits(32, 7).images;
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("demo network quantizes");
    plan.save(path).expect("snapshot save");
}
