//! Quickstart: deploy Defensive Approximation on a pre-trained classifier.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Trains (or loads from `artifacts/`) a LeNet-5 on SynthDigits, swaps its
//! multipliers for the paper's Ax-FPM — no retraining — and shows:
//! 1. clean accuracy is preserved,
//! 2. an FGSM adversarial crafted on the exact model fails to transfer.
//!
//! All inference below rides compiled serving plans (`da_nn::engine`):
//! `Network` caches an `InferencePlan` with pre-decomposed weights, fused
//! conv tiles, and reused workspaces, and every `predict`/`accuracy` call
//! routes through it — bit-identical to the per-layer forward pass.

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::attacks::gradient::Fgsm;
use defensive_approximation::attacks::{Attack, TargetModel};
use defensive_approximation::core::experiments::transfer::with_multiplier;
use defensive_approximation::core::{Budget, ModelCache};
use defensive_approximation::nn::train::evaluate_accuracy;

fn main() {
    let cache = ModelCache::default_location();
    let budget = Budget::quick();

    println!("== Defensive Approximation quickstart ==");
    println!("training or loading LeNet-5 (cache: {}) ...", cache.dir().display());
    let exact = cache.lenet(&budget);
    let defended = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);

    // Both models serve through compiled plans (compiled once, cached).
    let plan = defended.plan().expect("LeNet-5 compiles to a serving plan");
    println!(
        "serving plan: {} fused steps on the {} multiplier",
        plan.depth(),
        plan.multiplier().map(|m| m.name()).unwrap_or("native")
    );

    // 1. Clean accuracy before/after the multiplier swap (paper Table 6).
    let test = cache.digits_test(500);
    let acc_exact = evaluate_accuracy(&exact, &test.images, &test.labels, 64);
    let acc_da = evaluate_accuracy(&defended, &test.images, &test.labels, 64);
    println!(
        "clean accuracy   exact: {:.2}%   DA (Ax-FPM): {:.2}%",
        acc_exact * 100.0,
        acc_da * 100.0
    );

    // 2. A transferability attack (paper Table 2, one example).
    let attack = Fgsm::new(0.25);
    let mut shown = 0;
    for i in 0..test.len() {
        let x = test.images.batch_item(i);
        let label = test.labels[i];
        if TargetModel::predict(&exact, &x) != label {
            continue;
        }
        let adv = attack.run(&exact, &x, label);
        let exact_pred = TargetModel::predict(&exact, &adv);
        if exact_pred == label {
            continue; // attack failed on the exact model; try the next image
        }
        let da_pred = TargetModel::predict(&defended, &adv);
        println!(
            "digit {label}: FGSM fools exact model (-> {exact_pred}); DA model says {da_pred} ({})",
            if da_pred == label { "defended!" } else { "transferred" }
        );
        shown += 1;
        if shown >= 5 {
            break;
        }
    }
    println!("done. see `cargo bench` for the full table reproductions.");
}
