//! Road-sign-style object classification under black-box attack — the
//! autonomous-driving motivation of the paper's introduction, on the
//! CIFAR-scale AlexNet.
//!
//! ```sh
//! cargo run --release --example road_sign_defense
//! ```
//!
//! The adversary has no model access: it queries the deployed classifier,
//! trains a substitute, and attacks through it (paper Figure 6). We run the
//! pipeline against the exact AlexNet and against the DA AlexNet.

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::attacks::gradient::Pgd;
use defensive_approximation::attacks::substitute::{train_substitute, SubstituteConfig};
use defensive_approximation::attacks::{Attack, TargetModel};
use defensive_approximation::core::experiments::transfer::with_multiplier;
use defensive_approximation::core::{Budget, ModelCache};
use defensive_approximation::datasets::objects::synth_objects;
use defensive_approximation::nn::zoo::alexnet_cifar;
use defensive_approximation::nn::Network;
use rand::SeedableRng;

fn blackbox_success(victim: &Network, tag: &str) -> f64 {
    // Adversary-side data: a fresh unlabeled stream.
    let queries = synth_objects(1500, 0x0BAD_5EED);
    let mut substitute = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        alexnet_cifar(10, &mut rng)
    };
    let config = SubstituteConfig { epochs: 4, batch_size: 32, lr: 1e-3, seed: 5 };
    let agreement = train_substitute(&mut substitute, victim, &queries.images, &config);
    println!("[{tag}] substitute agreement with victim: {:.1}%", agreement * 100.0);

    let eval = synth_objects(40, 0xE7A1);
    let attack = Pgd::new(0.06, 0.01, 20, 7);
    let mut crafted = 0usize;
    let mut hits = 0usize;
    for i in 0..eval.len() {
        let x = eval.images.batch_item(i);
        let label = eval.labels[i];
        if TargetModel::predict(victim, &x) != label {
            continue;
        }
        let adv = attack.run(&substitute, &x, label);
        if TargetModel::predict(&substitute, &adv) == label {
            continue;
        }
        crafted += 1;
        if TargetModel::predict(victim, &adv) != label {
            hits += 1;
        }
    }
    if crafted == 0 {
        0.0
    } else {
        hits as f64 / crafted as f64
    }
}

fn main() {
    let cache = ModelCache::default_location();
    let budget = Budget::quick();
    println!("== Black-box attack on a road-sign-style classifier ==");
    let exact = cache.alexnet(&budget);
    let defended = with_multiplier(cache.alexnet(&budget), MultiplierKind::AxFpm);

    let exact_rate = blackbox_success(&exact, "exact");
    let da_rate = blackbox_success(&defended, "DA");

    println!("black-box PGD success  exact victim: {:.0}%", exact_rate * 100.0);
    println!("black-box PGD success  DA victim   : {:.0}%", da_rate * 100.0);
    println!("(paper Table 4 shape: the DA victim resists the substitute attack)");
}
