//! Zero-copy plan snapshots and the precompiled warm pool.
//!
//! ```sh
//! cargo run --release --example snapshot
//! ```
//!
//! The Defensive Approximation deployment story leans on swapping the
//! arithmetic under a fixed network — and a rotating defense wants that
//! swap to be *fast*. Compiling a quantized serving plan is the slow part:
//! a calibration pass plus one 256×256 product table per quantizer pair
//! (for gate-level wirings, 65 536 gate-level evaluations per table). This
//! demo shows the snapshot workflow that deletes the cost from the serving
//! path:
//!
//! 1. **Precompile a pool**: one int8 plan per multiplier wiring, each
//!    saved into a [`PlanCache`] directory (compile happens once, ever).
//! 2. **Map, don't compile**: reload every pool entry and compare wall
//!    times — loads are zero-parse and zero-copy (tables and weights are
//!    served straight out of the `mmap`), so the cold start collapses from
//!    seconds to milliseconds.
//! 3. **Serve and rotate**: stand a `BatchServer` shard pool on one mapped
//!    plan, verify logits are bit-identical to the originally compiled
//!    plan, then "rotate" to a different wiring by mapping its snapshot.

use std::time::Instant;

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::datasets::digits::synth_digits;
use defensive_approximation::nn::engine::InferencePlan;
use defensive_approximation::nn::serve::{BatchServer, ServeConfig};
use defensive_approximation::nn::snapshot::PlanCache;
use defensive_approximation::nn::zoo::lenet5;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = lenet5(10, &mut rng);
    let calibration = synth_digits(32, 7).images;
    let data = synth_digits(16, 42);

    let dir = std::env::temp_dir().join(format!("da-plan-pool-{}", std::process::id()));
    let cache = PlanCache::new(&dir).expect("cache directory");

    println!("== Plan snapshot warm pool ==");
    println!("pool dir: {}", dir.display());
    println!();
    println!("{:<12} {:>12} {:>12} {:>9} {:>10}", "wiring", "compile", "map", "speedup", "file");

    // 1 + 2. Precompile one int8 plan per wiring into the pool, then map it
    // back and compare cold starts. `get_or_insert_with` is the warm path:
    // on a second run of this binary every compile below is skipped.
    let mut reference = Vec::new();
    for kind in MultiplierKind::ALL {
        net.set_multiplier(Some(kind.build()));
        let key = format!("lenet5-int8-{}", kind.as_str());

        let start = Instant::now();
        let plan = cache
            .get_or_insert_with(&key, || {
                InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
            })
            .expect("LeNet-5 quantizes");
        let compile_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let mapped = cache.load(&key).expect("pool entry maps");
        let map_ms = start.elapsed().as_secs_f64() * 1e3;

        let bytes =
            std::fs::metadata(cache.path(&key).expect("valid key")).map(|m| m.len()).unwrap_or(0);
        println!(
            "{:<12} {:>10.1}ms {:>10.2}ms {:>8.0}x {:>7}KiB",
            kind.as_str(),
            compile_ms,
            map_ms,
            compile_ms / map_ms,
            bytes / 1024
        );

        // The mapped plan must serve the exact logits of the compiled one.
        let want = plan.predict_batch(&data.images);
        let got = mapped.predict_batch(&data.images);
        assert_eq!(got.data(), want.data(), "{}: mapped plan diverged", kind.as_str());
        reference.push((kind, want));
    }
    println!();
    println!("pool ready: {:?}", cache.keys());

    // 3. Rotation: serve each wiring in turn from its snapshot alone. A
    // rotating defense swaps the datapath by pointing the shard pool at a
    // different mapping — milliseconds, no recompilation, no calibration.
    let total = data.images.shape()[0];
    for (kind, want) in &reference {
        let key = format!("lenet5-int8-{}", kind.as_str());
        let start = Instant::now();
        let server = BatchServer::from_snapshot(
            cache.path(&key).expect("valid key"),
            ServeConfig::default(),
        )
        .expect("snapshot serves");
        let pending: Vec<_> = (0..total)
            .map(|i| server.submit(&data.images.batch_item(i)).expect("accepting"))
            .collect();
        let classes = want.shape()[1];
        for (i, p) in pending.into_iter().enumerate() {
            let row = p.wait().expect("served");
            assert_eq!(
                row.data(),
                &want.data()[i * classes..(i + 1) * classes],
                "{}: served logits diverged from the compiled plan",
                kind.as_str()
            );
        }
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "rotated to {:<12} served {total} samples bit-identically in {elapsed_ms:.1} ms \
             (map + serve, no compile)",
            kind.as_str()
        );
        server.shutdown();
    }

    std::fs::remove_dir_all(&dir).ok();
}
