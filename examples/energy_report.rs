//! Hardware cost report: regenerate the paper's energy/delay tables and the
//! HEAP design-space exploration (Tables 7 and 9, §4.3).
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use defensive_approximation::arith::heap::{explore, select_heap};
use defensive_approximation::core::experiments::energy::{table7, table9};

fn main() {
    println!("{}", table7());
    println!("{}", table9());

    println!("Design-space exploration (paper §4.3), 20k samples per design:");
    let points = explore(20_000, 42);
    for p in &points {
        println!("  {p}");
    }
    if let Some(best) = select_heap(&points, 0.6) {
        println!("\nDSE pick under a 0.6x energy budget (published-HEAP criterion):");
        println!("  {best}");
    }
}
