//! Cross-crate integration: the full Defensive Approximation pipeline on a
//! smoke budget — train, deploy the approximate multiplier, attack, measure.

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::attacks::gradient::{CarliniWagnerL2, DeepFool};
use defensive_approximation::attacks::{metrics, Attack, TargetModel};
use defensive_approximation::core::experiments::transfer::with_multiplier;
use defensive_approximation::core::{Budget, ModelCache};
use defensive_approximation::nn::train::evaluate_accuracy;

fn cache(tag: &str) -> ModelCache {
    ModelCache::new(std::env::temp_dir().join(format!("da-e2e-{tag}")))
}

#[test]
fn multiplier_swap_preserves_clean_accuracy() {
    let cache = cache("accuracy");
    let budget = Budget::smoke();
    let exact = cache.lenet(&budget);
    let defended = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);
    let test = cache.digits_test(150);

    let acc_exact = evaluate_accuracy(&exact, &test.images, &test.labels, 64);
    let acc_da = evaluate_accuracy(&defended, &test.images, &test.labels, 64);
    assert!(acc_exact > 0.7, "exact accuracy {acc_exact}");
    // Paper Table 6: DA costs ~0.3% on MNIST. We allow slack at smoke scale,
    // but the model must clearly still work.
    assert!(acc_da > acc_exact - 0.15, "DA accuracy collapsed: {acc_da} vs {acc_exact}");
}

#[test]
fn transferability_attack_end_to_end() {
    let cache = cache("transfer");
    let budget = Budget::smoke();
    let exact = cache.lenet(&budget);
    let defended = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);
    let test = cache.digits_test(40);

    // C&W finds minimal-norm adversarials that sit just across the exact
    // model's boundary — exactly the examples DA's boundary shift defeats
    // (paper Table 2: 1% transfer).
    let attack = CarliniWagnerL2::standard();
    let mut crafted = 0usize;
    let mut transferred = 0usize;
    for i in 0..test.len() {
        let x = test.images.batch_item(i);
        let label = test.labels[i];
        if TargetModel::predict(&exact, &x) != label {
            continue;
        }
        let adv = attack.run(&exact, &x, label);
        if TargetModel::predict(&exact, &adv) == label {
            continue;
        }
        crafted += 1;
        if TargetModel::predict(&defended, &adv) != label {
            transferred += 1;
        }
    }
    assert!(crafted >= 5, "FGSM must fool the exact model (crafted {crafted})");
    assert!(
        transferred < crafted,
        "some adversarials must fail to transfer ({transferred}/{crafted})"
    );
}

#[test]
fn whitebox_attack_pays_a_higher_price_on_da() {
    // Figures 8-11 in miniature: DeepFool needs more L2 against DA on
    // average (allowing smoke-scale variance via a lenient margin).
    let cache = cache("whitebox");
    let budget = Budget::smoke();
    let exact = cache.lenet(&budget);
    let defended = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);
    let test = cache.digits_test(12);
    let attack = DeepFool::new(40, 0.02);

    let mut exact_l2 = Vec::new();
    let mut da_l2 = Vec::new();
    for i in 0..test.len() {
        let x = test.images.batch_item(i);
        let label = test.labels[i];
        if TargetModel::predict(&exact, &x) == label {
            let adv = attack.run(&exact, &x, label);
            if TargetModel::predict(&exact, &adv) != label {
                exact_l2.push(metrics::l2(&adv, &x));
            }
        }
        if TargetModel::predict(&defended, &x) == label {
            let adv = attack.run(&defended, &x, label);
            if TargetModel::predict(&defended, &adv) != label {
                da_l2.push(metrics::l2(&adv, &x));
            }
        }
    }
    assert!(!exact_l2.is_empty(), "DeepFool must succeed on the exact model");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    if !da_l2.is_empty() {
        assert!(
            mean(&da_l2) > 0.5 * mean(&exact_l2),
            "DA whitebox cost implausibly low: {} vs {}",
            mean(&da_l2),
            mean(&exact_l2)
        );
    }
}

#[test]
fn heap_and_bfloat_models_also_run_end_to_end() {
    let cache = cache("variants");
    let budget = Budget::smoke();
    let test = cache.digits_test(20);
    for kind in [MultiplierKind::Heap, MultiplierKind::Bfloat16, MultiplierKind::ExactFpm] {
        let net = with_multiplier(cache.lenet(&budget), kind);
        let acc = evaluate_accuracy(&net, &test.images, &test.labels, 20);
        assert!(acc > 0.4, "{kind} variant accuracy {acc} implausible");
    }
}
