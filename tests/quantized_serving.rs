//! Int8 serving on the paper's deployment: a trained LeNet-5 on SynthDigits
//! (the MNIST stand-in), deployed on the Ax-FPM multiplier.
//!
//! The acceptance bound: the quantized plan's accuracy stays within 1% of
//! the f32 plan's (per multiplier), while serving through the same
//! `BatchServer` machinery. Training reuses the `da_core::ModelCache`
//! smoke backbone, so repeated runs reload cached weights.

use defensive_approximation::arith::MultiplierKind;
use defensive_approximation::core::{Budget, ModelCache};
use defensive_approximation::nn::engine::{InferencePlan, PlanPrecision};
use defensive_approximation::nn::serve::{BatchServer, ServeConfig};

fn cache(tag: &str) -> ModelCache {
    ModelCache::new(std::env::temp_dir().join(format!("da-e2e-{tag}")))
}

/// Fraction of `labels` matched by `plan` over the batch `images`.
fn plan_accuracy(
    plan: &InferencePlan,
    images: &defensive_approximation::tensor::Tensor,
    labels: &[usize],
) -> f32 {
    let preds = plan.predict(images);
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// The headline robustness/accuracy check: int8 LeNet within 1% of the f32
/// plan, on the exact baseline and on the paper's Ax-FPM deployment.
#[test]
fn quantized_lenet_accuracy_within_one_percent_of_f32_plan() {
    let cache = cache("quantized");
    let budget = Budget::smoke();
    let test = cache.digits_test(400);
    // Calibration uses training-distribution samples, disjoint from `test`.
    let calibration = cache.digits_train(&budget);
    let calibration = defensive_approximation::nn::train::gather_batch(
        &calibration.images,
        &(0..64).collect::<Vec<_>>(),
    );

    for kind in [None, Some(MultiplierKind::AxFpm)] {
        let mut net = cache.lenet(&budget);
        net.set_multiplier(kind.map(|k| k.build()));
        let f32_plan =
            InferencePlan::compile(&net, net.multiplier().cloned()).expect("LeNet compiles");
        let q_plan =
            InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
                .expect("LeNet quantizes");
        assert_eq!(q_plan.precision(), PlanPrecision::Int8);

        let acc_f32 = plan_accuracy(&f32_plan, &test.images, &test.labels);
        let acc_q = plan_accuracy(&q_plan, &test.images, &test.labels);
        eprintln!("[quantized-serving] {kind:?}: f32 {acc_f32:.4} vs int8 {acc_q:.4}");
        assert!(acc_f32 > 0.7, "{kind:?}: f32 plan accuracy collapsed: {acc_f32}");
        assert!(
            acc_q >= acc_f32 - 0.01,
            "{kind:?}: quantization cost more than 1%: {acc_q} vs {acc_f32}"
        );
    }
}

/// The quantized plan serves through the batch server bit-identically to a
/// serial run on the trained deployment (not just on toy stacks).
#[test]
fn trained_quantized_lenet_serves_bit_identically() {
    let cache = cache("quantized-serve");
    let budget = Budget::smoke();
    let mut net = cache.lenet(&budget);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let calibration = cache.digits_test(32).images;
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("LeNet quantizes");
    let server = BatchServer::compile_quantized(
        &net,
        &calibration,
        ServeConfig { workers: 2, max_batch: 4, ..ServeConfig::default() },
    )
    .expect("LeNet quantizes");
    let samples = cache.digits_test(24).images;
    let want = plan.predict_batch(&samples);
    let classes = want.shape()[1];
    for i in 0..samples.shape()[0] {
        let got = server.logits(&samples.batch_item(i)).expect("served");
        let row = &want.data()[i * classes..(i + 1) * classes];
        assert_eq!(got.data(), row, "sample {i} diverged under concurrent serving");
    }
    server.shutdown();
}
