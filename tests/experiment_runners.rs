//! Integration: every experiment runner produces a well-formed, printable
//! result on the smoke budget (the per-table/figure index of DESIGN.md §5).

use defensive_approximation::core::experiments::{
    accuracy, confidence, energy, fig4, heatmap, profiles, transfer,
};
use defensive_approximation::core::{Budget, ModelCache};

fn cache() -> ModelCache {
    // Shared across tests in this file: backbones train once.
    ModelCache::new(std::env::temp_dir().join("da-runners-shared"))
}

#[test]
fn profile_runners_render() {
    let budget = Budget::smoke();
    let f3 = profiles::fig3(&budget);
    assert!(f3.to_string().contains("Figure 3"));
    let f13 = profiles::fig13(&budget);
    assert!(f13.summary.mean_abs_error < f3.summary.mean_abs_error);
    let (a, h) = profiles::fig15(&budget);
    assert!(a.to_string().contains("15a") && h.to_string().contains("15b"));
}

#[test]
fn fig4_runner_renders() {
    let series = fig4::fig4(6);
    let text = series.to_string();
    assert_eq!(text.lines().count(), 8, "{text}");
}

#[test]
fn energy_runners_render() {
    assert!(energy::table7().to_string().contains("Ax-FPM"));
    assert!(energy::table9().to_string().contains("HEAP"));
}

#[test]
fn transfer_runner_renders_with_shared_cache() {
    let table = transfer::table2(&cache(), &Budget::smoke());
    let text = table.to_string();
    assert!(text.contains("Table 2"), "{text}");
    assert_eq!(table.rows.len(), 8);
}

#[test]
fn confidence_runner_renders_with_shared_cache() {
    let cdf = confidence::fig12(&cache(), &Budget::smoke());
    assert!(cdf.to_string().contains("Figure 12"));
}

#[test]
fn accuracy_runner_renders_with_shared_cache() {
    let t8 = accuracy::table8(&cache(), &Budget::smoke());
    assert!(t8.to_string().contains("MRED"));
}

#[test]
fn heatmap_runner_renders_with_shared_cache() {
    let report = heatmap::fig16(&cache(), &Budget::smoke());
    assert_eq!(report.stats.len(), 3);
}
