//! **HEAP** — the heterogeneous approximate floating-point multiplier
//! (paper §4.3 and Appendix A; design from the authors' RSP'19 paper \[22\]).
//!
//! HEAP mixes full-adder designs across the array's columns: aggressive
//! approximate cells in the low-significance columns, exact cells above a
//! boundary, chosen by an exhaustive design-space exploration (DSE) that
//! trades accuracy (MRED/NMED) against energy. The published RTL is not
//! available; [`explore`] re-runs the same exploration over our design space
//! and [`heap_mantissa_spec`] pins the configuration whose error metrics best
//! match the published characterization (MRED ≈ 0.12, NMED ≈ 0.03, ~34%
//! inflation — Table 8 / Figure 15).

use crate::adders::AdderKind;
use crate::array::{ArrayMultiplierSpec, CellAssignment, CpaKind, PortMap};
use crate::energy::{mantissa_cost, CostParams};
use crate::fpm::{FloatMultiplier, SIGNIFICAND_BITS};
use crate::metrics::{error_stats, ErrorStats};

/// Mantissa-core specification of a split design: `low_kind` below
/// `boundary`, exact at and above, CPA approximated per-column the same way.
///
/// # Panics
///
/// Panics if `boundary` exceeds `2 * width`.
pub fn split_spec(width: usize, low_kind: AdderKind, boundary: usize) -> ArrayMultiplierSpec {
    assert!(boundary <= 2 * width, "boundary {boundary} exceeds {} columns", 2 * width);
    let mut kinds = vec![low_kind; boundary];
    kinds.extend(std::iter::repeat_n(AdderKind::Exact, 2 * width - boundary));
    ArrayMultiplierSpec {
        width,
        cells: CellAssignment::PerColumn(kinds),
        port_map: PortMap::PpSumCarry,
        cpa: CpaKind::RipplePerColumn,
    }
}

/// The pinned HEAP 24×24 mantissa core, selected by [`explore`]-style DSE to
/// match the published characterization: AMA5 in columns 0–35, a
/// heterogeneous AMA4/AMA2 band in columns 36–43 (AMA2 at column 42 supplies
/// the published ~34% inflation share; AMA4 elsewhere deflates), exact cells
/// in the top four columns.
///
/// Measured (20k samples): MRED ≈ 0.086, NMED ≈ 0.021, inflation ≈ 29%,
/// energy ≈ 0.43, delay ≈ 0.44 — against published 0.12 / 0.03 / 34% /
/// 0.49 / 0.46.
pub fn heap_mantissa_spec() -> ArrayMultiplierSpec {
    let mut kinds = vec![AdderKind::Ama5; 36];
    kinds.extend([
        AdderKind::Ama4,
        AdderKind::Ama4,
        AdderKind::Ama4,
        AdderKind::Ama4,
        AdderKind::Ama4,
        AdderKind::Ama4,
        AdderKind::Ama2,
        AdderKind::Ama4,
    ]);
    kinds.extend([AdderKind::Exact; 4]);
    debug_assert_eq!(kinds.len(), 2 * SIGNIFICAND_BITS);
    ArrayMultiplierSpec {
        width: SIGNIFICAND_BITS,
        cells: CellAssignment::PerColumn(kinds),
        port_map: PortMap::PpSumCarry,
        cpa: CpaKind::RipplePerColumn,
    }
}

/// The HEAP binary32 multiplier.
///
/// # Examples
///
/// ```
/// use da_arith::{Multiplier, heap::heap_multiplier};
///
/// let m = heap_multiplier();
/// let exact = 0.5_f32 * 0.75;
/// // HEAP is far closer to exact than Ax-FPM (paper Table 8).
/// assert!((m.multiply(0.5, 0.75) - exact).abs() / exact < 0.5);
/// ```
pub fn heap_multiplier() -> FloatMultiplier {
    FloatMultiplier::with_core("heap", heap_mantissa_spec())
}

/// One evaluated configuration from the design-space exploration.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Human-readable configuration label.
    pub label: String,
    /// The mantissa-core configuration.
    pub spec: ArrayMultiplierSpec,
    /// Multiplier-level error statistics over `[0, 1]` operands.
    pub stats: ErrorStats,
    /// Energy normalized to the exact mantissa core.
    pub energy: f64,
    /// Delay normalized to the exact mantissa core.
    pub delay: f64,
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} MRED={:.4} NMED={:.4} inflation={:>5.1}% energy={:.3} delay={:.3}",
            self.label,
            self.stats.mred,
            self.stats.nmed,
            self.stats.inflation_rate * 100.0,
            self.energy,
            self.delay
        )
    }
}

/// Exhaustive design-space exploration over split designs (paper §4.3):
/// every approximate cell kind × a sweep of column boundaries, plus the two
/// corner cases (fully exact, fully AMA5 = Ax-FPM core).
///
/// `samples` operand pairs per configuration, deterministic in `seed`.
pub fn explore(samples: usize, seed: u64) -> Vec<DesignPoint> {
    let params = CostParams::default();
    let exact_cost = mantissa_cost(&ArrayMultiplierSpec::exact(SIGNIFICAND_BITS), &params);
    let mut points = Vec::new();

    let mut eval = |label: String, spec: ArrayMultiplierSpec| {
        let fpm = FloatMultiplier::with_core(label.clone(), spec.clone());
        let stats = error_stats(&fpm, samples, seed, (0.0, 1.0));
        let cost = mantissa_cost(&spec, &params);
        points.push(DesignPoint {
            label,
            spec,
            stats,
            energy: cost.transistors / exact_cost.transistors,
            delay: cost.delay / exact_cost.delay,
        });
    };

    eval("exact".into(), ArrayMultiplierSpec::exact(SIGNIFICAND_BITS));
    eval("ax-fpm".into(), ArrayMultiplierSpec::ax_mantissa(SIGNIFICAND_BITS));
    for kind in
        [AdderKind::Ama1, AdderKind::Ama2, AdderKind::Ama3, AdderKind::Ama4, AdderKind::Ama5]
    {
        for boundary in [24usize, 28, 32, 36, 40, 44] {
            eval(format!("{kind}<{boundary}"), split_spec(SIGNIFICAND_BITS, kind, boundary));
        }
    }
    points
}

/// Select the accuracy/energy-balanced design the paper calls HEAP: among
/// explored points with energy below `energy_budget`, the one whose MRED is
/// closest to the published 0.12.
pub fn select_heap(points: &[DesignPoint], energy_budget: f64) -> Option<&DesignPoint> {
    points.iter().filter(|p| p.energy <= energy_budget && p.stats.mred > 0.0).min_by(|a, b| {
        let da = (a.stats.mred - 0.12).abs();
        let db = (b.stats.mred - 0.12).abs();
        da.partial_cmp(&db).expect("MRED is finite")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Multiplier;

    #[test]
    fn heap_error_is_between_exact_and_ax_fpm() {
        let heap = heap_multiplier();
        let ax = FloatMultiplier::ax_fpm();
        let heap_stats = error_stats(&heap, 10_000, 21, (0.0, 1.0));
        let ax_stats = error_stats(&ax, 10_000, 21, (0.0, 1.0));
        assert!(heap_stats.mred > 1e-4, "HEAP must be approximate");
        assert!(
            heap_stats.mred < ax_stats.mred,
            "HEAP ({}) must beat Ax-FPM ({}) on accuracy",
            heap_stats.mred,
            ax_stats.mred
        );
    }

    #[test]
    fn heap_mred_matches_published_scale() {
        // Table 8: HEAP MRED 0.12 (we accept the published order of magnitude).
        let stats = error_stats(&heap_multiplier(), 20_000, 22, (0.0, 1.0));
        assert!(
            (0.02..0.25).contains(&stats.mred),
            "HEAP MRED {} far from published 0.12",
            stats.mred
        );
    }

    #[test]
    fn heap_inflation_is_below_ax_fpm() {
        // Figure 15: HEAP inflates only ~34% of products vs Ax-FPM's ~96%.
        let heap = error_stats(&heap_multiplier(), 10_000, 23, (0.0, 1.0));
        let ax = error_stats(&FloatMultiplier::ax_fpm(), 10_000, 23, (0.0, 1.0));
        assert!(heap.inflation_rate < ax.inflation_rate);
    }

    #[test]
    fn split_with_zero_boundary_is_exact() {
        let spec = split_spec(8, AdderKind::Ama5, 0);
        let m = crate::ArrayMultiplier::new(spec);
        for (a, b) in [(3u64, 5u64), (255, 255), (17, 200), (0, 9)] {
            assert_eq!(m.multiply(a, b), a * b);
        }
    }

    #[test]
    fn heap_multiplier_sign_and_zero() {
        let m = heap_multiplier();
        assert_eq!(m.multiply(0.0, 0.5), 0.0);
        assert!(m.multiply(-0.5, 0.5) < 0.0);
        assert_eq!(m.name(), "heap");
    }

    #[test]
    fn exploration_contains_corner_cases_and_is_deterministic() {
        let a = explore(300, 5);
        let b = explore(300, 5);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().any(|p| p.label == "exact"));
        assert!(a.iter().any(|p| p.label == "ax-fpm"));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats, "{} not deterministic", x.label);
        }
    }

    #[test]
    fn selected_heap_respects_energy_budget() {
        let points = explore(500, 6);
        let chosen = select_heap(&points, 0.6).expect("budget admits a design");
        assert!(chosen.energy <= 0.6);
        assert!(chosen.stats.mred > 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn split_spec_rejects_oversized_boundary() {
        let _ = split_spec(8, AdderKind::Ama5, 17);
    }
}
