//! Bfloat16 (Brain Floating Point) arithmetic, the reduced-precision baseline
//! of paper §7.2.
//!
//! Bfloat16 keeps binary32's 8-bit exponent but truncates the mantissa to
//! 7 bits. The paper's Bfloat16 multiplier shares the Ax-FPM architecture but
//! uses an exact Booth mantissa multiplier; the dominant error source is the
//! mantissa truncation of the operands and the result. We model truncation
//! (round toward zero), which matches the paper's observation that the
//! resulting noise is "mostly negative" with magnitude orders below Ax-FPM
//! (Figure 13).

use crate::multiplier::Multiplier;

/// Truncate an `f32` to bfloat16 precision (drop the low 16 mantissa bits).
///
/// # Examples
///
/// ```
/// use da_arith::bfloat::to_bf16;
///
/// assert_eq!(to_bf16(1.0), 1.0);
/// let x = 0.3_f32;
/// let t = to_bf16(x);
/// assert!(t <= x && (x - t) / x < 1.0 / 128.0);
/// ```
#[inline]
pub fn to_bf16(x: f32) -> f32 {
    f32::from_bits(x.to_bits() & 0xFFFF_0000)
}

/// `true` if the value is exactly representable in bfloat16.
pub fn is_bf16(x: f32) -> bool {
    x.to_bits() & 0x0000_FFFF == 0
}

/// The Bfloat16 multiplier: truncate operands, multiply exactly, truncate
/// the product.
///
/// # Examples
///
/// ```
/// use da_arith::{Multiplier, bfloat::BfloatMultiplier};
///
/// let m = BfloatMultiplier;
/// let r = m.multiply(0.3, 0.7);
/// // Truncation never increases magnitude.
/// assert!(r.abs() <= (0.3_f32 * 0.7).abs());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfloatMultiplier;

impl Multiplier for BfloatMultiplier {
    fn multiply(&self, a: f32, b: f32) -> f32 {
        to_bf16(to_bf16(a) * to_bf16(b))
    }

    fn name(&self) -> &str {
        "bfloat16"
    }

    // Slice overrides: pure bit-mask + multiply loops with no calls, so they
    // vectorize. `axpy_slice` hoists the truncation of the shared operand,
    // which is bit-identical to truncating it per element.

    fn multiply_slice(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
        assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = to_bf16(to_bf16(x) * to_bf16(y));
        }
    }

    fn dot_accumulate(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_accumulate length mismatch");
        let mut acc = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            acc += to_bf16(to_bf16(x) * to_bf16(y));
        }
        acc
    }

    fn axpy_slice(&self, a: f32, b: &[f32], acc: &mut [f32]) {
        assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
        let ta = to_bf16(a);
        for (o, &y) in acc.iter_mut().zip(b) {
            *o += to_bf16(ta * to_bf16(y));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn truncation_is_idempotent_and_magnitude_reducing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = rng.gen_range(-10.0f32..10.0);
            let t = to_bf16(x);
            assert_eq!(to_bf16(t), t);
            assert!(t.abs() <= x.abs());
            assert!(is_bf16(t));
            if x != 0.0 {
                assert!((x - t).abs() / x.abs() < 1.0 / 128.0, "x={x} t={t}");
            }
        }
    }

    #[test]
    fn product_error_is_never_positive_in_magnitude() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let m = BfloatMultiplier;
        for _ in 0..5000 {
            let a = rng.gen_range(0.0f32..1.0);
            let b = rng.gen_range(0.0f32..1.0);
            let exact = (a as f64) * (b as f64);
            let approx = m.multiply(a, b) as f64;
            assert!(approx <= exact + 1e-12, "a={a} b={b}");
        }
    }

    #[test]
    fn relative_error_is_small() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = BfloatMultiplier;
        for _ in 0..5000 {
            let a = rng.gen_range(0.05f32..1.0);
            let b = rng.gen_range(0.05f32..1.0);
            let exact = (a as f64) * (b as f64);
            let approx = m.multiply(a, b) as f64;
            // Three truncations of < 2^-7 relative each.
            assert!((exact - approx) / exact < 3.0 / 128.0, "a={a} b={b}");
        }
    }

    #[test]
    fn specials_and_zero() {
        let m = BfloatMultiplier;
        assert_eq!(m.multiply(0.0, 3.0), 0.0);
        assert!(m.multiply(f32::NAN, 3.0).is_nan());
        assert_eq!(m.multiply(f32::INFINITY, 2.0), f32::INFINITY);
        assert_eq!(m.name(), "bfloat16");
    }

    #[test]
    fn bf16_representable_values_are_multiplied_closely() {
        // Products of bf16 values only incur the final truncation.
        let m = BfloatMultiplier;
        let a = to_bf16(0.5);
        let b = to_bf16(0.25);
        assert_eq!(m.multiply(a, b), 0.125);
    }
}
