//! Bfloat16 (Brain Floating Point) arithmetic, the reduced-precision baseline
//! of paper §7.2.
//!
//! Bfloat16 keeps binary32's 8-bit exponent but truncates the mantissa to
//! 7 bits. The paper's Bfloat16 multiplier shares the Ax-FPM architecture but
//! uses an exact Booth mantissa multiplier; the dominant error source is the
//! mantissa truncation of the operands and the result. We model truncation
//! (round toward zero), which matches the paper's observation that the
//! resulting noise is "mostly negative" with magnitude orders below Ax-FPM
//! (Figure 13).

use crate::batch::{BatchKernel, PreparedOperands};
use crate::multiplier::Multiplier;
use crate::simd::{self, RowClass};

/// Truncate an `f32` to bfloat16 precision (drop the low 16 mantissa bits).
///
/// # Examples
///
/// ```
/// use da_arith::bfloat::to_bf16;
///
/// assert_eq!(to_bf16(1.0), 1.0);
/// let x = 0.3_f32;
/// let t = to_bf16(x);
/// assert!(t <= x && (x - t) / x < 1.0 / 128.0);
/// ```
#[inline]
pub fn to_bf16(x: f32) -> f32 {
    f32::from_bits(x.to_bits() & 0xFFFF_0000)
}

/// `true` if the value is exactly representable in bfloat16.
pub fn is_bf16(x: f32) -> bool {
    x.to_bits() & 0x0000_FFFF == 0
}

/// The Bfloat16 multiplier: truncate operands, multiply exactly, truncate
/// the product.
///
/// # Examples
///
/// ```
/// use da_arith::{Multiplier, bfloat::BfloatMultiplier};
///
/// let m = BfloatMultiplier;
/// let r = m.multiply(0.3, 0.7);
/// // Truncation never increases magnitude.
/// assert!(r.abs() <= (0.3_f32 * 0.7).abs());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfloatMultiplier;

impl Multiplier for BfloatMultiplier {
    fn multiply(&self, a: f32, b: f32) -> f32 {
        to_bf16(to_bf16(a) * to_bf16(b))
    }

    fn name(&self) -> &str {
        "bfloat16"
    }

    // Slice overrides route through the lane kernels of [`crate::simd`]
    // (autovectorized, optional AVX2): pure bit-mask + multiply pipelines
    // with no calls. `axpy_slice` hoists the truncation of the shared
    // operand, which is bit-identical to truncating it per element. Rows
    // are classified first: NaN-free product streams run the plain fused
    // loops, rows carrying Inf/NaN pin NaN payload propagation (see
    // `crate::simd::nan_stable_add`).

    fn multiply_slice(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        simd::bf16_mul(a, b, out);
    }

    fn dot_accumulate(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_accumulate length mismatch");
        // Lane-compute the products block by block, then accumulate in
        // slice order (the reduction order is part of the bit-exactness
        // contract, so only the products are vectorized).
        let mut acc = 0.0f32;
        if simd::pair_has_special(a, b) {
            for (&x, &y) in a.iter().zip(b) {
                acc = simd::nan_stable_add(acc, to_bf16(to_bf16(x) * to_bf16(y)));
            }
            return acc;
        }
        let mut buf = [0.0f32; 8 * simd::LANES];
        for (ac, bc) in a.chunks(buf.len()).zip(b.chunks(buf.len())) {
            let prods = &mut buf[..ac.len()];
            simd::bf16_mul(ac, bc, prods);
            for &p in prods.iter() {
                acc += p;
            }
        }
        acc
    }

    fn axpy_slice(&self, a: f32, b: &[f32], acc: &mut [f32]) {
        let ta = to_bf16(a);
        simd::bf16_axpy(ta, b, acc, simd::clean_axpy(ta, bf16_class(b)));
    }

    fn batch_kernel(&self) -> Box<dyn BatchKernel + Send + '_> {
        Box::new(BfloatBatchKernel { row_class: Vec::new() })
    }
}

/// The special-only row scan for the Bfloat16 kernel: truncation and the
/// native multiply handle zeros like any other finite value, so zero-bearing
/// rows report `Normal` (half the scan cost of the three-way
/// classification).
fn bf16_class(b: &[f32]) -> RowClass {
    if simd::row_has_special(b) {
        RowClass::Special
    } else {
        RowClass::Normal
    }
}

/// The batched kernel behind [`BfloatMultiplier::batch_kernel`]: the lane
/// kernels of the slice methods, with row classification amortized across
/// multi-row sweeps and whole GEMM tiles instead of re-scanned per `axpy`.
struct BfloatBatchKernel {
    row_class: Vec<RowClass>,
}

impl BatchKernel for BfloatBatchKernel {
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]) {
        BfloatMultiplier.axpy_slice(a, b, acc);
    }

    fn axpy_classified(&mut self, a: f32, b: &[f32], class: RowClass, acc: &mut [f32]) {
        debug_assert!(class == RowClass::Special || !simd::row_has_special(b), "stale row class");
        let ta = to_bf16(a);
        simd::bf16_axpy(ta, b, acc, simd::clean_axpy(ta, class));
    }

    fn axpy_rows(&mut self, a: &[f32], b: &[f32], acc: &mut [f32], acc_stride: usize) {
        assert!(a.len() <= 1 || acc_stride >= b.len(), "axpy_rows rows overlap");
        let class = bf16_class(b);
        for (r, &av) in a.iter().enumerate() {
            let ta = to_bf16(av);
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + b.len()];
            simd::bf16_axpy(ta, b, acc_row, simd::clean_axpy(ta, class));
        }
    }

    fn gemm_tile(
        &mut self,
        ops: &PreparedOperands,
        b: &[f32],
        tile: usize,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        let mut row_class = std::mem::take(&mut self.row_class);
        crate::batch::gemm_tile_classified(
            ops,
            b,
            tile,
            acc,
            acc_stride,
            &mut row_class,
            bf16_class,
            |a, brow, class, acc_row| {
                let ta = to_bf16(a);
                simd::bf16_axpy(ta, brow, acc_row, simd::clean_axpy(ta, class));
            },
        );
        self.row_class = row_class;
    }

    fn gemm_tile_classed(
        &mut self,
        ops: &PreparedOperands,
        b: &[f32],
        tile: usize,
        class: RowClass,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        // One covering class for every row: a direct sweep, no per-row
        // classification state at all.
        assert_eq!(b.len(), ops.cols() * tile, "gemm_tile b length mismatch");
        assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
        for r in 0..ops.rows() {
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
            for (k, op) in ops.row(r).iter().enumerate() {
                let ta = to_bf16(op.value());
                let brow = &b[k * tile..(k + 1) * tile];
                simd::bf16_axpy(ta, brow, acc_row, simd::clean_axpy(ta, class));
            }
        }
    }

    fn classify_rhs(&self, b: &[f32]) -> RowClass {
        bf16_class(b)
    }

    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32 {
        BfloatMultiplier.dot_accumulate(a, b)
    }

    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]) {
        BfloatMultiplier.multiply_slice(a, b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn truncation_is_idempotent_and_magnitude_reducing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = rng.gen_range(-10.0f32..10.0);
            let t = to_bf16(x);
            assert_eq!(to_bf16(t), t);
            assert!(t.abs() <= x.abs());
            assert!(is_bf16(t));
            if x != 0.0 {
                assert!((x - t).abs() / x.abs() < 1.0 / 128.0, "x={x} t={t}");
            }
        }
    }

    #[test]
    fn product_error_is_never_positive_in_magnitude() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let m = BfloatMultiplier;
        for _ in 0..5000 {
            let a = rng.gen_range(0.0f32..1.0);
            let b = rng.gen_range(0.0f32..1.0);
            let exact = (a as f64) * (b as f64);
            let approx = m.multiply(a, b) as f64;
            assert!(approx <= exact + 1e-12, "a={a} b={b}");
        }
    }

    #[test]
    fn relative_error_is_small() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = BfloatMultiplier;
        for _ in 0..5000 {
            let a = rng.gen_range(0.05f32..1.0);
            let b = rng.gen_range(0.05f32..1.0);
            let exact = (a as f64) * (b as f64);
            let approx = m.multiply(a, b) as f64;
            // Three truncations of < 2^-7 relative each.
            assert!((exact - approx) / exact < 3.0 / 128.0, "a={a} b={b}");
        }
    }

    #[test]
    fn specials_and_zero() {
        let m = BfloatMultiplier;
        assert_eq!(m.multiply(0.0, 3.0), 0.0);
        assert!(m.multiply(f32::NAN, 3.0).is_nan());
        assert_eq!(m.multiply(f32::INFINITY, 2.0), f32::INFINITY);
        assert_eq!(m.name(), "bfloat16");
    }

    #[test]
    fn bf16_representable_values_are_multiplied_closely() {
        // Products of bf16 values only incur the final truncation.
        let m = BfloatMultiplier;
        let a = to_bf16(0.5);
        let b = to_bf16(0.25);
        assert_eq!(m.multiply(a, b), 0.125);
    }
}
