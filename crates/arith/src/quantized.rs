//! Int8 quantized arithmetic: affine quantizers, per-multiplier product
//! tables, and LUT-gather GEMM kernels.
//!
//! Once operands are 8-bit codes, any [`Multiplier`] — gate-level HEAP and
//! ablation wirings just like the closed-form AMA5/exact/Bfloat16 cores —
//! has only `256 × 256` possible products. A [`ProductLut`] therefore
//! evaluates the *actual* scalar multiplier once per code pair at build time
//! and the entire GEMM hot path collapses into a table gather: no per-element
//! field decomposition, no row classification, no clamp selects, and no
//! gate-level simulation at serving time. The LUT is **exact with respect to
//! the hardware model it replaces by construction**: entry `(qa, qb)` is
//! bit-identical to `m.multiply(a.dequantize(qa), b.dequantize(qb))`
//! (exhaustively asserted for every [`crate::MultiplierKind`] in
//! `tests/quantized_conformance.rs`).
//!
//! # Quantization contract
//!
//! * **Affine, per-tensor, `u8` codes.** A [`QuantParams`] is a positive
//!   `scale` and a `zero_point` code: `dequantize(q) = scale · (q − zero_point)`
//!   and `quantize(x) = round(x / scale) + zero_point` saturated to
//!   `0..=255`. The zero point is always a valid code, so the real value
//!   `0.0` is exactly representable — convolution padding and ReLU cut-offs
//!   quantize without error.
//! * **Calibration from observed ranges.** [`QuantParams::from_range`] takes
//!   the `[lo, hi]` interval a tensor was observed to occupy (serving plans
//!   record it on a calibration batch, see `da_nn::engine`), widens it to
//!   contain zero, and spreads the 256 codes uniformly across it. Degenerate
//!   ranges fall back to unit scale.
//! * **`f32` table entries and `f32` accumulation.** The classic int8 GEMM
//!   accumulates `i32` products, but re-quantizing the *approximate
//!   multiplier's* products onto an integer grid would add a second error
//!   source and break bit-faithfulness to the gate-level datapath. This
//!   crate's contract everywhere is "only the multiplier is approximate;
//!   additions stay exact `f32`" — the LUT keeps it: entries are the
//!   multiplier's own `f32` products, and [`lut_gemm`] accumulates them with
//!   exact `f32` adds, `k` ascending per output element (the batched GEMM's
//!   order).
//!
//! # When the LUT beats the SIMD lane kernels
//!
//! The [`crate::simd`] lane kernels are the fastest *full-precision* path:
//! they need the real 24-bit significands. The LUT wins whenever operands
//! are 8-bit codes, for two different reasons:
//!
//! * **Closed-form cores** (AMA5, exact, Bfloat16): the gather replaces the
//!   whole decompose → exponent-add → clamp-select pipeline with one indexed
//!   load per MAC — ~1.5× the lane kernels' GEMM throughput and ~3× the
//!   serving-engine throughput, where the f32 path also pays per-plane
//!   classification and f32 patch gathers.
//! * **Gate-level cores** (HEAP, ablation wirings): these have *no* lane
//!   kernels — every product simulates an array multiplier (memoized by
//!   [`crate::SigProductCache`] at best). The LUT runs them at exactly the
//!   same gather speed as the closed-form cores: three orders of magnitude
//!   faster, while staying bit-faithful to the gates.
//!
//! The gather kernels are runtime-dispatched (AVX-512 → AVX2 → portable
//! scalar). Unlike the lane kernels there is no autovectorizable
//! formulation of a table gather, so the hand-written bodies are always
//! compiled in on x86-64 rather than gated behind the `simd-intrinsics`
//! feature; every dispatch path is bit-identical (same table entries, same
//! per-element add order — property-tested in
//! `tests/quantized_conformance.rs`).
//!
//! # Example
//!
//! ```
//! use da_arith::quantized::{lut_gemm, ProductLut, QuantParams};
//! use da_arith::MultiplierKind;
//!
//! let m = MultiplierKind::AxFpm.build();
//! let w = QuantParams::from_range(-1.0, 1.0);
//! let x = QuantParams::from_range(0.0, 4.0);
//! let lut = ProductLut::build(&*m, w, x);
//! // Entry (qa, qb) is the scalar multiplier's product, bit for bit.
//! let (qa, qb) = (w.quantize(0.5), x.quantize(2.0));
//! assert_eq!(
//!     lut.product(qa, qb).to_bits(),
//!     m.multiply(w.dequantize(qa), x.dequantize(qb)).to_bits(),
//! );
//! // A 1x1 "GEMM" over codes gathers the same product.
//! let mut acc = [0.0f32];
//! lut_gemm(&lut, &[qa], 1, 1, &[qb], 1, &mut acc, 1);
//! assert_eq!(acc[0].to_bits(), lut.product(qa, qb).to_bits());
//! ```

use crate::multiplier::Multiplier;
use crate::storage::Storage;
use da_tensor::parallel::par_map_chunks;

/// Codes per operand side (8-bit quantization).
pub const CODES: usize = 256;

/// Codes per int4 operand side (weight-only 4-bit quantization).
pub const CODES4: usize = 16;

/// An affine per-tensor quantizer: `value = scale · (code − zero_point)`.
///
/// `scale` is always positive and finite, and `zero_point` is itself a code,
/// so `dequantize` is strictly increasing and maps `zero_point` to exactly
/// `0.0` (monotonicity is what lets max-pooling and ReLU run directly on
/// codes in `da_nn::engine`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    /// `1 / scale`, precomputed: the quantize loops run on every serving
    /// request (input quantization, inter-layer requantization) and a
    /// multiply keeps them autovectorizable where a divide would not be.
    inv_scale: f32,
    zero_point: u8,
}

impl QuantParams {
    /// A quantizer spanning the observed value range `[lo, hi]`.
    ///
    /// The range is widened to include `0.0` (so the zero code exists), then
    /// the 256 codes are spread uniformly across it. Degenerate or
    /// non-finite ranges (empty tensors, all-constant tensors) fall back to
    /// unit scale around zero.
    pub fn from_range(lo: f32, hi: f32) -> QuantParams {
        let lo = if lo.is_finite() { lo.min(0.0) } else { 0.0 };
        let hi = if hi.is_finite() { hi.max(0.0) } else { 0.0 };
        let scale = (hi - lo) / (CODES - 1) as f32;
        if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !scale.is_finite()
            || !(1.0 / scale).is_finite()
        {
            return QuantParams { scale: 1.0, inv_scale: 1.0, zero_point: 0 };
        }
        // Nudge the zero point onto the code grid; rounding keeps it within
        // 0..=255 because lo <= 0 <= hi.
        let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as u8;
        QuantParams { scale, inv_scale: 1.0 / scale, zero_point }
    }

    /// Reassemble a quantizer from its serialized `(scale, zero_point)`
    /// pair — the snapshot-load path. `inv_scale` is recomputed as
    /// `1.0 / scale`, exactly as [`QuantParams::from_range`] does, so the
    /// round trip is bit-identical. Returns `None` for a scale no valid
    /// quantizer can carry (non-positive, non-finite, or with a non-finite
    /// reciprocal), turning hostile snapshot bytes into a typed error
    /// instead of NaN arithmetic downstream.
    pub fn from_parts(scale: f32, zero_point: u8) -> Option<QuantParams> {
        if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !scale.is_finite()
            || !(1.0 / scale).is_finite()
        {
            return None;
        }
        Some(QuantParams { scale, inv_scale: 1.0 / scale, zero_point })
    }

    /// The positive step between adjacent codes.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The code representing exactly `0.0`.
    pub fn zero_point(&self) -> u8 {
        self.zero_point
    }

    /// The real value of `code` (exact: one `f32` multiply of exact ints).
    #[inline]
    pub fn dequantize(&self, code: u8) -> f32 {
        self.scale * (code as i32 - self.zero_point as i32) as f32
    }

    /// The nearest code for `x` (ties to even), saturating outside the
    /// calibrated range. NaN maps to the zero point (the only sane code for
    /// "no value").
    #[inline]
    pub fn quantize(&self, x: f32) -> u8 {
        // This runs on every serving request (input quantization and every
        // inter-layer requantize), so it must autovectorize on the SSE2
        // baseline: `f32::round` is a libm call there and Rust's saturating
        // float→int casts scalarize, so round via the 2²³ magic-number
        // trick instead — saturate in f32 with max/min, push the value into
        // the mantissa range where the float grid *is* the integers (one
        // RNE add), and read the code out of the low mantissa bits. Every
        // step is a plain vector op (mul/add/max/min/select/bitcast).
        let v = x * self.inv_scale + self.zero_point as f32;
        let v = if x.is_nan() { self.zero_point as f32 } else { v };
        let magic = (1u32 << 23) as f32;
        let f = v.clamp(0.0, 255.0) + magic;
        (f.to_bits() & 0xFF) as u8
    }

    /// Quantize a slice (`out[i] = quantize(xs[i])`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn quantize_slice(&self, xs: &[f32], out: &mut [u8]) {
        assert_eq!(xs.len(), out.len(), "quantize_slice length mismatch");
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.quantize(x);
        }
    }

    /// Dequantize a slice (`out[i] = dequantize(codes[i])`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dequantize_slice(&self, codes: &[u8], out: &mut [f32]) {
        assert_eq!(codes.len(), out.len(), "dequantize_slice length mismatch");
        for (o, &q) in out.iter_mut().zip(codes) {
            *o = self.dequantize(q);
        }
    }

    /// The `(min, max)` of a value stream, ignoring NaNs. Returns `(0, 0)`
    /// for an empty (or all-NaN) stream, which [`QuantParams::from_range`]
    /// maps to the unit fallback quantizer.
    pub fn observe(xs: &[f32]) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &x in xs {
            if x.is_nan() {
                continue;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }
}

/// An affine per-tensor **int4** quantizer: 16 codes spread across the
/// observed range, zero always exactly representable — the weight-side
/// companion of [`QuantParams`] for [`ProductLut4`] plans. Codes live in the
/// low nibble of a `u8` (`0..=15`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams4 {
    scale: f32,
    inv_scale: f32,
    zero_point: u8,
}

impl QuantParams4 {
    /// A 16-code quantizer spanning `[lo, hi]`, widened to include `0.0`;
    /// degenerate or non-finite ranges fall back to unit scale (see
    /// [`QuantParams::from_range`]).
    pub fn from_range(lo: f32, hi: f32) -> QuantParams4 {
        let lo = if lo.is_finite() { lo.min(0.0) } else { 0.0 };
        let hi = if hi.is_finite() { hi.max(0.0) } else { 0.0 };
        let scale = (hi - lo) / (CODES4 - 1) as f32;
        if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !scale.is_finite()
            || !(1.0 / scale).is_finite()
        {
            return QuantParams4 { scale: 1.0, inv_scale: 1.0, zero_point: 0 };
        }
        let zero_point = (-lo / scale).round().clamp(0.0, 15.0) as u8;
        QuantParams4 { scale, inv_scale: 1.0 / scale, zero_point }
    }

    /// Reassemble a quantizer from its serialized `(scale, zero_point)`
    /// pair (see [`QuantParams::from_parts`]). Additionally rejects zero
    /// points outside the 16-code grid.
    pub fn from_parts(scale: f32, zero_point: u8) -> Option<QuantParams4> {
        if zero_point >= CODES4 as u8
            || scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !scale.is_finite()
            || !(1.0 / scale).is_finite()
        {
            return None;
        }
        Some(QuantParams4 { scale, inv_scale: 1.0 / scale, zero_point })
    }

    /// The positive step between adjacent codes.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The code representing exactly `0.0`.
    pub fn zero_point(&self) -> u8 {
        self.zero_point
    }

    /// The real value of `code` (taken modulo 16, like every int4 kernel).
    #[inline]
    pub fn dequantize(&self, code: u8) -> f32 {
        self.scale * ((code & 0xF) as i32 - self.zero_point as i32) as f32
    }

    /// The nearest code for `x` (ties to even), saturating to `0..=15`;
    /// NaN maps to the zero point. Same branch-free magic-number rounding
    /// as [`QuantParams::quantize`].
    #[inline]
    pub fn quantize(&self, x: f32) -> u8 {
        let v = x * self.inv_scale + self.zero_point as f32;
        let v = if x.is_nan() { self.zero_point as f32 } else { v };
        let magic = (1u32 << 23) as f32;
        let f = v.clamp(0.0, 15.0) + magic;
        (f.to_bits() & 0xF) as u8
    }

    /// Quantize a slice (`out[i] = quantize(xs[i])`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn quantize_slice(&self, xs: &[f32], out: &mut [u8]) {
        assert_eq!(xs.len(), out.len(), "quantize_slice length mismatch");
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.quantize(x);
        }
    }

    /// Dequantize a slice (`out[i] = dequantize(codes[i])`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dequantize_slice(&self, codes: &[u8], out: &mut [f32]) {
        assert_eq!(codes.len(), out.len(), "dequantize_slice length mismatch");
        for (o, &q) in out.iter_mut().zip(codes) {
            *o = self.dequantize(q);
        }
    }
}

/// The full 256×256 product table of one [`Multiplier`] over a pair of
/// quantizers: `table[(qa << 8) | qb] = m.multiply(a.dequantize(qa),
/// b.dequantize(qb))` — 64 Ki entries, 256 KiB.
///
/// The `a` side is the GEMM's left operand (weights in a convolution,
/// activations in this crate's dense reference — operand order matters
/// because approximate multipliers need not be commutative) and the `b` side
/// the right operand. Building a table costs 65 536 scalar `multiply` calls:
/// microseconds for closed-form cores, tens of milliseconds for gate-level
/// HEAP — paid once at plan-compile time, never at serving time.
#[derive(Clone)]
pub struct ProductLut {
    table: Storage<f32>,
    a: QuantParams,
    b: QuantParams,
    /// Whether every entry of the `a` zero-point row is exactly `±0.0` —
    /// true for every multiplier in the tree (`multiply(0.0, y)` is a
    /// signed zero). Lets [`lut_gemm`]'s single-row sweeps skip zero-point
    /// shared operands: adding `±0.0` is a bitwise no-op on any
    /// accumulator other than `-0.0`, and an accumulator chain seeded
    /// without `-0.0` can never produce one (IEEE round-to-nearest yields
    /// `-0.0` only from `-0.0 + -0.0`).
    zero_a_row: bool,
}

impl ProductLut {
    /// Evaluate `m` over every code pair.
    ///
    /// Rows are built in parallel (one chunk per `qa` row): every entry is
    /// an independent scalar `multiply` call, so the table is bit-identical
    /// to the sequential build regardless of thread count — gate-level
    /// wirings pay 65 536 full gate evaluations here, the dominant
    /// plan-compile cost.
    pub fn build(m: &dyn Multiplier, a: QuantParams, b: QuantParams) -> ProductLut {
        let mut table = vec![0.0f32; CODES * CODES];
        par_map_chunks(&mut table, CODES, |qa, row| {
            let av = a.dequantize(qa as u8);
            for (qb, slot) in row.iter_mut().enumerate() {
                *slot = m.multiply(av, b.dequantize(qb as u8));
            }
        });
        ProductLut::from_parts(Storage::Owned(table), a, b)
    }

    /// Reassemble a table from storage (owned or borrowed from a snapshot
    /// mapping) and its quantizer pair, without touching a multiplier. The
    /// zero-point-row skip flag is rederived by scanning the actual row, so
    /// it is always consistent with the entries — including entries a
    /// hostile snapshot may have altered.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not hold exactly `CODES * CODES` entries
    /// (snapshot loaders validate section lengths before constructing
    /// storage, so this indicates a caller bug, not bad input data).
    pub fn from_parts(table: Storage<f32>, a: QuantParams, b: QuantParams) -> ProductLut {
        assert_eq!(table.len(), CODES * CODES, "ProductLut table must be 256x256");
        let zp = a.zero_point() as usize;
        let zero_a_row = table.as_slice()[zp << 8..(zp << 8) + CODES].iter().all(|v| *v == 0.0);
        ProductLut { table, a, b, zero_a_row }
    }

    /// The product for code pair `(qa, qb)` — bit-identical to
    /// `multiply(a.dequantize(qa), b.dequantize(qb))` on the multiplier the
    /// table was built from.
    #[inline]
    pub fn product(&self, qa: u8, qb: u8) -> f32 {
        self.table.as_slice()[((qa as usize) << 8) | qb as usize]
    }

    /// The left-operand quantizer.
    pub fn a_params(&self) -> QuantParams {
        self.a
    }

    /// The right-operand quantizer.
    pub fn b_params(&self) -> QuantParams {
        self.b
    }

    /// The raw table (`[(qa << 8) | qb]` layout), for kernels.
    #[inline]
    pub fn table(&self) -> &[f32] {
        self.table.as_slice()
    }

    /// Whether the table entries borrow a mapped snapshot (vs heap-owned).
    pub fn is_mapped(&self) -> bool {
        self.table.is_mapped()
    }
}

impl std::fmt::Debug for ProductLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductLut")
            .field("a", &self.a)
            .field("b", &self.b)
            .field("entries", &self.table.len())
            .finish()
    }
}

/// Validate the shared `lut_gemm` preconditions.
#[inline]
fn check_gemm(
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &[f32],
    acc_stride: usize,
) {
    assert_eq!(qa.len(), rows * k, "lut_gemm qa length mismatch");
    assert_eq!(b.len(), k * tile, "lut_gemm b length mismatch");
    assert!(rows <= 1 || acc_stride >= tile, "lut_gemm rows overlap");
    if rows > 0 {
        assert!(
            (rows - 1) * acc_stride + tile <= acc.len(),
            "lut_gemm acc too small for {rows} rows of {tile} at stride {acc_stride}"
        );
    }
    // The zero-point skip (see `ProductLut::zero_a_row`) is a bitwise no-op
    // for every accumulator value except -0.0, which no accumulation chain
    // can produce — but a caller could seed one. Reject it loudly in debug,
    // checking only the row spans actually accumulated (gap bytes between
    // strided rows are documented untouched and may hold anything).
    debug_assert!(
        (0..rows).all(|r| {
            acc[r * acc_stride..r * acc_stride + tile]
                .iter()
                .all(|v| v.to_bits() != (-0.0f32).to_bits())
        }),
        "lut_gemm accumulators must not be seeded with -0.0"
    );
}

/// LUT-gather GEMM over code matrices:
/// `acc[r·acc_stride + j] += lut[qa[r·k + kk]][b[kk·tile + j]]` for every
/// output row `r < rows` and column `j < tile`, accumulated with `kk`
/// ascending per element — the batched GEMM's order, so results are
/// bit-identical to [`lut_gemm_reference`] (and therefore to the scalar
/// multiplier over dequantized codes).
///
/// Output rows live at stride `acc_stride ≥ tile` inside `acc` (serving
/// engines accumulate straight into strided conv output planes); bytes
/// between rows are untouched. Dense layers are the `rows == 1` case with
/// activations as `qa` and the pre-transposed weight codes as `b`.
///
/// Dispatches at runtime to AVX-512 / AVX2 hardware gathers when available,
/// falling back to [`lut_gemm_scalar`]; every path is bit-identical.
///
/// Single-row sweeps (dense layers) additionally **skip** shared-operand
/// codes at the `a` zero point when that LUT row is exactly `±0.0` (it is
/// for every multiplier in the tree) — post-ReLU activations hit the zero
/// code constantly, so this drops a large fraction of dense MACs. The skip
/// is bitwise neutral: adding `±0.0` never changes an accumulator other
/// than `-0.0`, no accumulation chain can produce `-0.0` under
/// round-to-nearest, and `-0.0` *seeds* are rejected in debug builds.
///
/// # Panics
///
/// Panics if `qa.len() != rows·k`, `b.len() != k·tile`, `acc` cannot hold
/// the strided output rows, or `acc_stride < tile` with more than one row.
pub fn lut_gemm(
    lut: &ProductLut,
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    check_gemm(qa, rows, k, b, tile, acc, acc_stride);
    let skip = if lut.zero_a_row { Some(lut.a.zero_point()) } else { None };
    #[cfg(target_arch = "x86_64")]
    {
        match gather_level() {
            GatherLevel::Avx512 => {
                // SAFETY: preconditions checked above; the kernel requires
                // avx512f, which `gather_level` just probed.
                unsafe {
                    gemm_avx512(lut.table.as_slice(), qa, rows, k, b, tile, acc, acc_stride, skip)
                }
                return;
            }
            GatherLevel::Avx2 => {
                // SAFETY: as above, for avx2.
                unsafe {
                    gemm_avx2(lut.table.as_slice(), qa, rows, k, b, tile, acc, acc_stride, skip)
                }
                return;
            }
            GatherLevel::Scalar => {}
        }
    }
    gemm_scalar(lut.table.as_slice(), qa, rows, k, b, tile, acc, acc_stride, skip);
}

/// The portable scalar body of [`lut_gemm`] (also its non-x86 and
/// pre-AVX2 fallback), exposed so conformance tests can pin every dispatch
/// path against the same reference.
///
/// # Panics
///
/// Panics as [`lut_gemm`] does.
pub fn lut_gemm_scalar(
    lut: &ProductLut,
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    check_gemm(qa, rows, k, b, tile, acc, acc_stride);
    let skip = if lut.zero_a_row { Some(lut.a.zero_point()) } else { None };
    gemm_scalar(lut.table.as_slice(), qa, rows, k, b, tile, acc, acc_stride, skip);
}

/// The semantic ground truth [`lut_gemm`] is tested against: the same loop
/// with every product computed by the scalar multiplier on dequantized
/// codes instead of gathered from the table.
///
/// # Panics
///
/// Panics as [`lut_gemm`] does.
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_reference(
    m: &dyn Multiplier,
    a_params: QuantParams,
    b_params: QuantParams,
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    check_gemm(qa, rows, k, b, tile, acc, acc_stride);
    for r in 0..rows {
        let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
        for kk in 0..k {
            let av = a_params.dequantize(qa[r * k + kk]);
            let brow = &b[kk * tile..(kk + 1) * tile];
            for (o, &qb) in acc_row.iter_mut().zip(brow) {
                *o += m.multiply(av, b_params.dequantize(qb));
            }
        }
    }
}

/// Fused epilogue of a quantized conv/dense row: `act(acc[i] + bias)`
/// requantized into `out` codes (`act` is ReLU when `relu` is set).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn requantize_bias_act(
    acc: &[f32],
    bias: f32,
    relu: bool,
    params: &QuantParams,
    out: &mut [u8],
) {
    assert_eq!(acc.len(), out.len(), "requantize length mismatch");
    for (o, &v) in out.iter_mut().zip(acc) {
        let v = v + bias;
        let v = if relu { v.max(0.0) } else { v };
        *o = params.quantize(v);
    }
}

// ---------------------------------------------------------------------------
// Kernel bodies.
//
// Every body computes, per output element, the identical ascending-k sequence
// of f32 adds over identical table entries; blocking and lane width only
// change how *independent* elements interleave, so all bodies are
// bit-identical (property-tested in tests/quantized_conformance.rs).
// Gather indices are structurally in bounds: `(qa << 8) | qb <= 0xFFFF` and
// the table always holds 65 536 entries.
// ---------------------------------------------------------------------------

/// Scalar kernel: 4 output rows × 4 k-steps register-blocked, so each
/// accumulator round-trips memory once per four products and the four
/// gather streams overlap in the load pipeline. Single-row sweeps honor
/// `skip` (see [`next_k_block`]).
#[allow(clippy::too_many_arguments)]
fn gemm_scalar(
    table: &[f32],
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    skip: Option<u8>,
) {
    let mut r = 0;
    while r + 4 <= rows {
        let mut kk = 0;
        while kk + 4 <= k {
            let mut base = [[0usize; 4]; 4];
            for (c, row_base) in base.iter_mut().enumerate() {
                for (i, slot) in row_base.iter_mut().enumerate() {
                    *slot = (qa[(r + c) * k + kk + i] as usize) << 8;
                }
            }
            for j in 0..tile {
                let q = [
                    b[kk * tile + j] as usize,
                    b[(kk + 1) * tile + j] as usize,
                    b[(kk + 2) * tile + j] as usize,
                    b[(kk + 3) * tile + j] as usize,
                ];
                for (c, row_base) in base.iter().enumerate() {
                    let slot = (r + c) * acc_stride + j;
                    let mut a = acc[slot];
                    a += table[row_base[0] + q[0]];
                    a += table[row_base[1] + q[1]];
                    a += table[row_base[2] + q[2]];
                    a += table[row_base[3] + q[3]];
                    acc[slot] = a;
                }
            }
            kk += 4;
        }
        for c in 0..4 {
            scalar_row_tail(table, qa, r + c, k, kk, b, tile, acc, acc_stride);
        }
        r += 4;
    }
    while r < rows {
        let qa_row = &qa[r * k..(r + 1) * k];
        let mut kk = 0usize;
        loop {
            let mut ks = [0usize; 4];
            let cnt = next_k_block(qa_row, skip, &mut kk, &mut ks);
            if cnt == 4 {
                let base = [
                    (qa_row[ks[0]] as usize) << 8,
                    (qa_row[ks[1]] as usize) << 8,
                    (qa_row[ks[2]] as usize) << 8,
                    (qa_row[ks[3]] as usize) << 8,
                ];
                let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                for (j, o) in arow.iter_mut().enumerate() {
                    let mut a = *o;
                    a += table[base[0] + b[ks[0] * tile + j] as usize];
                    a += table[base[1] + b[ks[1] * tile + j] as usize];
                    a += table[base[2] + b[ks[2] * tile + j] as usize];
                    a += table[base[3] + b[ks[3] * tile + j] as usize];
                    *o = a;
                }
            } else {
                for &ki in &ks[..cnt] {
                    let base = (qa_row[ki] as usize) << 8;
                    let row = &table[base..base + CODES];
                    let brow = &b[ki * tile..(ki + 1) * tile];
                    let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                    for (o, &q) in arow.iter_mut().zip(brow) {
                        *o += row[q as usize];
                    }
                }
                break;
            }
        }
        r += 1;
    }
}

/// Collect up to four not-skipped `k` indices starting at `*kk` (advancing
/// it); returns how many were found. The zero-point skip is bit-exact: the
/// skipped products are exact `±0.0` (guaranteed by the caller via
/// [`ProductLut::build`]'s zero-row scan), and adding `±0.0` never changes
/// an accumulator that is not `-0.0` — which no chain produces and
/// [`check_gemm`] rejects as a seed in debug builds.
#[inline]
fn next_k_block(qa_row: &[u8], skip: Option<u8>, kk: &mut usize, out: &mut [usize; 4]) -> usize {
    let mut cnt = 0usize;
    while *kk < qa_row.len() && cnt < 4 {
        if skip != Some(qa_row[*kk]) {
            out[cnt] = *kk;
            cnt += 1;
        }
        *kk += 1;
    }
    cnt
}

/// Remaining `k`-steps (`from..k`) of one output row, one step at a time.
#[allow(clippy::too_many_arguments)]
fn scalar_row_tail(
    table: &[f32],
    qa: &[u8],
    r: usize,
    k: usize,
    from: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    for kk in from..k {
        let base = (qa[r * k + kk] as usize) << 8;
        let row = &table[base..base + CODES];
        let brow = &b[kk * tile..(kk + 1) * tile];
        let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
        for (o, &q) in arow.iter_mut().zip(brow) {
            *o += row[q as usize];
        }
    }
}

/// Which hardware-gather tier the CPU supports (probed once).
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq, Eq)]
enum GatherLevel {
    Avx512,
    Avx2,
    Scalar,
}

#[cfg(target_arch = "x86_64")]
fn gather_level() -> GatherLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<GatherLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx512f") {
            GatherLevel::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            GatherLevel::Avx2
        } else {
            GatherLevel::Scalar
        }
    })
}

/// AVX2 body: 2 output rows × 4 k-steps, 8-lane `vgatherdps` columns;
/// single-row sweeps honor `skip` (see [`next_k_block`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_avx2(
    table: &[f32],
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    skip: Option<u8>,
) {
    use std::arch::x86_64::*;
    let tp = table.as_ptr();
    let mut r = 0;
    while r + 2 <= rows {
        let mut kk = 0;
        while kk + 4 <= k {
            let mut base = [[0i32; 4]; 2];
            for (c, row_base) in base.iter_mut().enumerate() {
                for (i, slot) in row_base.iter_mut().enumerate() {
                    *slot = (qa[(r + c) * k + kk + i] as i32) << 8;
                }
            }
            let b0: [__m256i; 4] = std::array::from_fn(|i| _mm256_set1_epi32(base[0][i]));
            let b1: [__m256i; 4] = std::array::from_fn(|i| _mm256_set1_epi32(base[1][i]));
            let mut j = 0;
            while j + 8 <= tile {
                let q: [__m256i; 4] = std::array::from_fn(|i| {
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        b.as_ptr().add((kk + i) * tile + j) as *const __m128i
                    ))
                });
                let mut a0 = _mm256_loadu_ps(acc.as_ptr().add(r * acc_stride + j));
                for i in 0..4 {
                    let g = _mm256_i32gather_ps::<4>(tp, _mm256_add_epi32(q[i], b0[i]));
                    a0 = _mm256_add_ps(a0, g);
                }
                _mm256_storeu_ps(acc.as_mut_ptr().add(r * acc_stride + j), a0);
                let mut a1 = _mm256_loadu_ps(acc.as_ptr().add((r + 1) * acc_stride + j));
                for i in 0..4 {
                    let g = _mm256_i32gather_ps::<4>(tp, _mm256_add_epi32(q[i], b1[i]));
                    a1 = _mm256_add_ps(a1, g);
                }
                _mm256_storeu_ps(acc.as_mut_ptr().add((r + 1) * acc_stride + j), a1);
                j += 8;
            }
            // Ragged column tail: scalar lanes, same ascending-k adds.
            for j in j..tile {
                for (c, row_base) in base.iter().enumerate() {
                    let slot = (r + c) * acc_stride + j;
                    let mut a = acc[slot];
                    for (i, &rb) in row_base.iter().enumerate() {
                        a += table[rb as usize + b[(kk + i) * tile + j] as usize];
                    }
                    acc[slot] = a;
                }
            }
            kk += 4;
        }
        for c in 0..2 {
            scalar_row_tail(table, qa, r + c, k, kk, b, tile, acc, acc_stride);
        }
        r += 2;
    }
    // Odd final row (and the whole GEMM when `rows == 1` — every dense
    // layer): same 4-step k blocks over not-skipped steps, single
    // accumulator row.
    while r < rows {
        let qa_row = &qa[r * k..(r + 1) * k];
        let mut kk = 0usize;
        loop {
            let mut ks = [0usize; 4];
            let cnt = next_k_block(qa_row, skip, &mut kk, &mut ks);
            if cnt < 4 {
                for &ki in &ks[..cnt] {
                    let base = (qa_row[ki] as usize) << 8;
                    let row = &table[base..base + CODES];
                    let brow = &b[ki * tile..(ki + 1) * tile];
                    let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                    for (o, &q) in arow.iter_mut().zip(brow) {
                        *o += row[q as usize];
                    }
                }
                break;
            }
            let mut base = [0i32; 4];
            for (i, slot) in base.iter_mut().enumerate() {
                *slot = (qa_row[ks[i]] as i32) << 8;
            }
            let bv: [__m256i; 4] = std::array::from_fn(|i| _mm256_set1_epi32(base[i]));
            let mut j = 0;
            while j + 8 <= tile {
                let mut a0 = _mm256_loadu_ps(acc.as_ptr().add(r * acc_stride + j));
                for i in 0..4 {
                    let q = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        b.as_ptr().add(ks[i] * tile + j) as *const __m128i
                    ));
                    let g = _mm256_i32gather_ps::<4>(tp, _mm256_add_epi32(q, bv[i]));
                    a0 = _mm256_add_ps(a0, g);
                }
                _mm256_storeu_ps(acc.as_mut_ptr().add(r * acc_stride + j), a0);
                j += 8;
            }
            for j in j..tile {
                let slot = r * acc_stride + j;
                let mut a = acc[slot];
                for (i, &rb) in base.iter().enumerate() {
                    a += table[rb as usize + b[ks[i] * tile + j] as usize];
                }
                acc[slot] = a;
            }
        }
        r += 1;
    }
}

/// AVX-512 body: 2 output rows × 4 k-steps, 16-lane gather columns;
/// single-row sweeps honor `skip` (see [`next_k_block`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_avx512(
    table: &[f32],
    qa: &[u8],
    rows: usize,
    k: usize,
    b: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    skip: Option<u8>,
) {
    use std::arch::x86_64::*;
    let tp = table.as_ptr();
    let mut r = 0;
    while r + 2 <= rows {
        let mut kk = 0;
        while kk + 4 <= k {
            let mut base = [[0i32; 4]; 2];
            for (c, row_base) in base.iter_mut().enumerate() {
                for (i, slot) in row_base.iter_mut().enumerate() {
                    *slot = (qa[(r + c) * k + kk + i] as i32) << 8;
                }
            }
            let b0: [__m512i; 4] = std::array::from_fn(|i| _mm512_set1_epi32(base[0][i]));
            let b1: [__m512i; 4] = std::array::from_fn(|i| _mm512_set1_epi32(base[1][i]));
            let mut j = 0;
            while j + 16 <= tile {
                let q: [__m512i; 4] = std::array::from_fn(|i| {
                    _mm512_cvtepu8_epi32(_mm_loadu_si128(
                        b.as_ptr().add((kk + i) * tile + j) as *const __m128i
                    ))
                });
                let mut a0 = _mm512_loadu_ps(acc.as_ptr().add(r * acc_stride + j));
                for i in 0..4 {
                    let g = _mm512_i32gather_ps::<4>(_mm512_add_epi32(q[i], b0[i]), tp);
                    a0 = _mm512_add_ps(a0, g);
                }
                _mm512_storeu_ps(acc.as_mut_ptr().add(r * acc_stride + j), a0);
                let mut a1 = _mm512_loadu_ps(acc.as_ptr().add((r + 1) * acc_stride + j));
                for i in 0..4 {
                    let g = _mm512_i32gather_ps::<4>(_mm512_add_epi32(q[i], b1[i]), tp);
                    a1 = _mm512_add_ps(a1, g);
                }
                _mm512_storeu_ps(acc.as_mut_ptr().add((r + 1) * acc_stride + j), a1);
                j += 16;
            }
            for j in j..tile {
                for (c, row_base) in base.iter().enumerate() {
                    let slot = (r + c) * acc_stride + j;
                    let mut a = acc[slot];
                    for (i, &rb) in row_base.iter().enumerate() {
                        a += table[rb as usize + b[(kk + i) * tile + j] as usize];
                    }
                    acc[slot] = a;
                }
            }
            kk += 4;
        }
        for c in 0..2 {
            scalar_row_tail(table, qa, r + c, k, kk, b, tile, acc, acc_stride);
        }
        r += 2;
    }
    // Odd final row (and the whole GEMM when `rows == 1` — every dense
    // layer): same 4-step k blocks over not-skipped steps, single
    // accumulator row.
    while r < rows {
        let qa_row = &qa[r * k..(r + 1) * k];
        let mut kk = 0usize;
        loop {
            let mut ks = [0usize; 4];
            let cnt = next_k_block(qa_row, skip, &mut kk, &mut ks);
            if cnt < 4 {
                for &ki in &ks[..cnt] {
                    let base = (qa_row[ki] as usize) << 8;
                    let row = &table[base..base + CODES];
                    let brow = &b[ki * tile..(ki + 1) * tile];
                    let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                    for (o, &q) in arow.iter_mut().zip(brow) {
                        *o += row[q as usize];
                    }
                }
                break;
            }
            let mut base = [0i32; 4];
            for (i, slot) in base.iter_mut().enumerate() {
                *slot = (qa_row[ks[i]] as i32) << 8;
            }
            let bv: [__m512i; 4] = std::array::from_fn(|i| _mm512_set1_epi32(base[i]));
            let mut j = 0;
            while j + 16 <= tile {
                let mut a0 = _mm512_loadu_ps(acc.as_ptr().add(r * acc_stride + j));
                for i in 0..4 {
                    let q = _mm512_cvtepu8_epi32(_mm_loadu_si128(
                        b.as_ptr().add(ks[i] * tile + j) as *const __m128i
                    ));
                    let g = _mm512_i32gather_ps::<4>(_mm512_add_epi32(q, bv[i]), tp);
                    a0 = _mm512_add_ps(a0, g);
                }
                _mm512_storeu_ps(acc.as_mut_ptr().add(r * acc_stride + j), a0);
                j += 16;
            }
            for j in j..tile {
                let slot = r * acc_stride + j;
                let mut a = acc[slot];
                for (i, &rb) in base.iter().enumerate() {
                    a += table[rb as usize + b[ks[i] * tile + j] as usize];
                }
                acc[slot] = a;
            }
        }
        r += 1;
    }
}

// ---------------------------------------------------------------------------
// Int4 weight codes: 256×16 product tables and in-register shuffle GEMM.
//
// With weights down to 16 codes (activations stay u8), each activation code
// selects one 16-entry table row — 64 bytes, exactly one cache line, one zmm
// register. The inner loop needs no hardware gather at all: the row is
// register-resident and each weight code picks its product with a shuffle
// (`vpermps`), which retires ~an order of magnitude faster than `vgatherdps`.
// ---------------------------------------------------------------------------

/// Which operand of the underlying multiplier the **weight** is — product
/// tables bake the operand order in, and approximate multipliers need not be
/// commutative. Convolutions multiply `(weight, activation)`
/// ([`Lut4Order::WeightsLeft`]); this crate's dense reference multiplies
/// `(activation, weight)` ([`Lut4Order::ActivationsLeft`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lut4Order {
    /// Entry `(qact, qw)` is `m.multiply(w(qw), act(qact))`.
    WeightsLeft,
    /// Entry `(qact, qw)` is `m.multiply(act(qact), w(qw))`.
    ActivationsLeft,
}

/// The 256×16 product table of one [`Multiplier`] over an activation
/// quantizer and an int4 **weight** quantizer:
/// `table[(qact << 4) | qw]` is the multiplier's product over the decoded
/// pair, in the operand order recorded by [`Lut4Order`] — 4 Ki entries,
/// 16 KiB (L1-resident; each activation code's row is one cache line).
#[derive(Clone)]
pub struct ProductLut4 {
    table: Storage<f32>,
    act: QuantParams,
    w: QuantParams4,
    order: Lut4Order,
    /// Whether the activation zero-point row is exactly `±0.0` (it is for
    /// every multiplier in the tree) — enables the same bitwise-neutral
    /// zero-point skip as [`ProductLut::zero_a_row`].
    zero_act_row: bool,
}

impl ProductLut4 {
    /// Evaluate `m` over every (activation, weight) code pair.
    ///
    /// Rows (one per activation code) are built in parallel; every entry is
    /// an independent scalar `multiply`, so the result is bit-identical to
    /// the sequential build regardless of thread count.
    pub fn build(
        m: &dyn Multiplier,
        act: QuantParams,
        w: QuantParams4,
        order: Lut4Order,
    ) -> ProductLut4 {
        let mut table = vec![0.0f32; CODES * CODES4];
        par_map_chunks(&mut table, CODES4, |qa, row| {
            let av = act.dequantize(qa as u8);
            for (qw, slot) in row.iter_mut().enumerate() {
                let wv = w.dequantize(qw as u8);
                *slot = match order {
                    Lut4Order::WeightsLeft => m.multiply(wv, av),
                    Lut4Order::ActivationsLeft => m.multiply(av, wv),
                };
            }
        });
        ProductLut4::from_parts(Storage::Owned(table), act, w, order)
    }

    /// Reassemble a table from storage (owned or borrowed from a snapshot
    /// mapping), its quantizers, and the operand order — the int4 companion
    /// of [`ProductLut::from_parts`]. The zero-point-row skip flag is
    /// rederived from the actual entries.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not hold exactly `CODES * CODES4` entries.
    pub fn from_parts(
        table: Storage<f32>,
        act: QuantParams,
        w: QuantParams4,
        order: Lut4Order,
    ) -> ProductLut4 {
        assert_eq!(table.len(), CODES * CODES4, "ProductLut4 table must be 256x16");
        let zp = act.zero_point() as usize;
        let zero_act_row = table.as_slice()[zp << 4..(zp << 4) + CODES4].iter().all(|v| *v == 0.0);
        ProductLut4 { table, act, w, order, zero_act_row }
    }

    /// The product for code pair `(qact, qw)` — bit-identical to the scalar
    /// multiplier over the decoded pair (codes taken modulo their width,
    /// like every kernel path).
    #[inline]
    pub fn product(&self, qact: u8, qw: u8) -> f32 {
        self.table.as_slice()[((qact as usize) << 4) | (qw & 0xF) as usize]
    }

    /// The activation-side quantizer.
    pub fn act_params(&self) -> QuantParams {
        self.act
    }

    /// The weight-side int4 quantizer.
    pub fn w_params(&self) -> QuantParams4 {
        self.w
    }

    /// The operand order the table was built with.
    pub fn order(&self) -> Lut4Order {
        self.order
    }

    /// The raw table (`[(qact << 4) | qw]` layout), for kernels.
    #[inline]
    pub fn table(&self) -> &[f32] {
        self.table.as_slice()
    }

    /// Whether the table entries borrow a mapped snapshot (vs heap-owned).
    pub fn is_mapped(&self) -> bool {
        self.table.is_mapped()
    }
}

impl std::fmt::Debug for ProductLut4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductLut4")
            .field("act", &self.act)
            .field("w", &self.w)
            .field("order", &self.order)
            .field("entries", &self.table.len())
            .finish()
    }
}

/// Int4-weight shuffle GEMM over code matrices:
/// `acc[r·acc_stride + j] += lut[(qa[r·k + kk] << 4) | qw[kk·tile + j]]` for
/// every output row `r < rows` and column `j < tile`, accumulated with `kk`
/// ascending per element — bit-identical to [`lut4_gemm_reference`] (and
/// therefore to the scalar multiplier over dequantized codes).
///
/// `qa` holds u8 **activation** codes (the row side) and `qw` int4 **weight**
/// codes in the low nibble (taken modulo 16 on every path). Convolutions run
/// this formulation transposed — patch pixels as rows, out-channels as
/// columns — so the 4-bit codes always vary along the vectorized `j` axis,
/// which is what lets each activation's 16-entry table row stay in one
/// register and each weight code pick its product with an in-register
/// shuffle instead of a hardware gather.
///
/// Dispatches at runtime to AVX-512 (`vpermps` over a zmm-resident row) /
/// AVX2 (two ymm halves + `vpermps` + blend) shuffle kernels, falling back
/// to [`lut4_gemm_scalar`]; every path is bit-identical. Rows additionally
/// skip activation codes at the zero point when that table row is exactly
/// `±0.0` (same bitwise-neutral contract as [`lut_gemm`]).
///
/// # Panics
///
/// Panics as [`lut_gemm`] does (same shape preconditions).
pub fn lut4_gemm(
    lut: &ProductLut4,
    qa: &[u8],
    rows: usize,
    k: usize,
    qw: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    check_gemm(qa, rows, k, qw, tile, acc, acc_stride);
    let skip = if lut.zero_act_row { Some(lut.act.zero_point()) } else { None };
    #[cfg(target_arch = "x86_64")]
    {
        match gather_level() {
            GatherLevel::Avx512 => {
                // SAFETY: preconditions checked above; the kernel requires
                // avx512f, which `gather_level` just probed.
                unsafe {
                    gemm4_avx512(lut.table.as_slice(), qa, rows, k, qw, tile, acc, acc_stride, skip)
                }
                return;
            }
            GatherLevel::Avx2 => {
                // SAFETY: as above, for avx2.
                unsafe {
                    gemm4_avx2(lut.table.as_slice(), qa, rows, k, qw, tile, acc, acc_stride, skip)
                }
                return;
            }
            GatherLevel::Scalar => {}
        }
    }
    gemm4_scalar(lut.table.as_slice(), qa, rows, k, qw, tile, acc, acc_stride, skip);
}

/// The portable scalar body of [`lut4_gemm`] (also its non-x86 and pre-AVX2
/// fallback), exposed so conformance tests can pin every dispatch path
/// against the same reference.
///
/// # Panics
///
/// Panics as [`lut4_gemm`] does.
pub fn lut4_gemm_scalar(
    lut: &ProductLut4,
    qa: &[u8],
    rows: usize,
    k: usize,
    qw: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    check_gemm(qa, rows, k, qw, tile, acc, acc_stride);
    let skip = if lut.zero_act_row { Some(lut.act.zero_point()) } else { None };
    gemm4_scalar(lut.table.as_slice(), qa, rows, k, qw, tile, acc, acc_stride, skip);
}

/// The semantic ground truth [`lut4_gemm`] is tested against: the same loop
/// with every product computed by the scalar multiplier on dequantized codes
/// in the table's operand order.
///
/// # Panics
///
/// Panics as [`lut4_gemm`] does.
#[allow(clippy::too_many_arguments)]
pub fn lut4_gemm_reference(
    m: &dyn Multiplier,
    act: QuantParams,
    w: QuantParams4,
    order: Lut4Order,
    qa: &[u8],
    rows: usize,
    k: usize,
    qw: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
) {
    check_gemm(qa, rows, k, qw, tile, acc, acc_stride);
    for r in 0..rows {
        let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
        for kk in 0..k {
            let av = act.dequantize(qa[r * k + kk]);
            let wrow = &qw[kk * tile..(kk + 1) * tile];
            for (o, &cw) in acc_row.iter_mut().zip(wrow) {
                let wv = w.dequantize(cw);
                *o += match order {
                    Lut4Order::WeightsLeft => m.multiply(wv, av),
                    Lut4Order::ActivationsLeft => m.multiply(av, wv),
                };
            }
        }
    }
}

/// Scalar int4 kernel: per output row, 4 not-skipped k-steps blocked so each
/// accumulator round-trips memory once per four products (mirroring
/// [`gemm_scalar`]'s single-row path — the skip applies to every row here
/// because each output row owns its accumulators).
#[allow(clippy::too_many_arguments)]
fn gemm4_scalar(
    table: &[f32],
    qa: &[u8],
    rows: usize,
    k: usize,
    qw: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    skip: Option<u8>,
) {
    for r in 0..rows {
        let qa_row = &qa[r * k..(r + 1) * k];
        let mut kk = 0usize;
        loop {
            let mut ks = [0usize; 4];
            let cnt = next_k_block(qa_row, skip, &mut kk, &mut ks);
            if cnt == 4 {
                let base = [
                    (qa_row[ks[0]] as usize) << 4,
                    (qa_row[ks[1]] as usize) << 4,
                    (qa_row[ks[2]] as usize) << 4,
                    (qa_row[ks[3]] as usize) << 4,
                ];
                let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                for (j, o) in arow.iter_mut().enumerate() {
                    let mut a = *o;
                    a += table[base[0] + (qw[ks[0] * tile + j] & 0xF) as usize];
                    a += table[base[1] + (qw[ks[1] * tile + j] & 0xF) as usize];
                    a += table[base[2] + (qw[ks[2] * tile + j] & 0xF) as usize];
                    a += table[base[3] + (qw[ks[3] * tile + j] & 0xF) as usize];
                    *o = a;
                }
            } else {
                for &ki in &ks[..cnt] {
                    let base = (qa_row[ki] as usize) << 4;
                    let row = &table[base..base + CODES4];
                    let wrow = &qw[ki * tile..(ki + 1) * tile];
                    let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                    for (o, &q) in arow.iter_mut().zip(wrow) {
                        *o += row[(q & 0xF) as usize];
                    }
                }
                break;
            }
        }
    }
}

/// AVX-512 int4 body: each activation code's 16-entry table row is loaded
/// once into a zmm register; 16 weight codes per step pick their products
/// with `vpermps` (`_mm512_permutexvar_ps` indexes modulo 16, matching the
/// scalar nibble mask). No gathers anywhere in the loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm4_avx512(
    table: &[f32],
    qa: &[u8],
    rows: usize,
    k: usize,
    qw: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    skip: Option<u8>,
) {
    use std::arch::x86_64::*;
    for r in 0..rows {
        let qa_row = &qa[r * k..(r + 1) * k];
        let mut kk = 0usize;
        loop {
            let mut ks = [0usize; 4];
            let cnt = next_k_block(qa_row, skip, &mut kk, &mut ks);
            if cnt < 4 {
                for &ki in &ks[..cnt] {
                    let base = (qa_row[ki] as usize) << 4;
                    let row = &table[base..base + CODES4];
                    let wrow = &qw[ki * tile..(ki + 1) * tile];
                    let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                    for (o, &q) in arow.iter_mut().zip(wrow) {
                        *o += row[(q & 0xF) as usize];
                    }
                }
                break;
            }
            let rowv: [__m512; 4] = std::array::from_fn(|i| {
                _mm512_loadu_ps(table.as_ptr().add((qa_row[ks[i]] as usize) << 4))
            });
            let mut j = 0;
            while j + 16 <= tile {
                let mut a0 = _mm512_loadu_ps(acc.as_ptr().add(r * acc_stride + j));
                for i in 0..4 {
                    let idx = _mm512_cvtepu8_epi32(_mm_loadu_si128(
                        qw.as_ptr().add(ks[i] * tile + j) as *const __m128i,
                    ));
                    a0 = _mm512_add_ps(a0, _mm512_permutexvar_ps(idx, rowv[i]));
                }
                _mm512_storeu_ps(acc.as_mut_ptr().add(r * acc_stride + j), a0);
                j += 16;
            }
            for j in j..tile {
                let slot = r * acc_stride + j;
                let mut a = acc[slot];
                for &ki in &ks {
                    a += table[((qa_row[ki] as usize) << 4) + (qw[ki * tile + j] & 0xF) as usize];
                }
                acc[slot] = a;
            }
        }
    }
}

/// AVX2 int4 body: each table row lives in two ymm halves (codes 0–7 and
/// 8–15); `vpermps` picks from both and a blend on index bit 3 (shifted to
/// the sign position) selects the half — still no gathers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm4_avx2(
    table: &[f32],
    qa: &[u8],
    rows: usize,
    k: usize,
    qw: &[u8],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    skip: Option<u8>,
) {
    use std::arch::x86_64::*;
    for r in 0..rows {
        let qa_row = &qa[r * k..(r + 1) * k];
        let mut kk = 0usize;
        loop {
            let mut ks = [0usize; 4];
            let cnt = next_k_block(qa_row, skip, &mut kk, &mut ks);
            if cnt < 4 {
                for &ki in &ks[..cnt] {
                    let base = (qa_row[ki] as usize) << 4;
                    let row = &table[base..base + CODES4];
                    let wrow = &qw[ki * tile..(ki + 1) * tile];
                    let arow = &mut acc[r * acc_stride..r * acc_stride + tile];
                    for (o, &q) in arow.iter_mut().zip(wrow) {
                        *o += row[(q & 0xF) as usize];
                    }
                }
                break;
            }
            let lo: [__m256; 4] = std::array::from_fn(|i| {
                _mm256_loadu_ps(table.as_ptr().add((qa_row[ks[i]] as usize) << 4))
            });
            let hi: [__m256; 4] = std::array::from_fn(|i| {
                _mm256_loadu_ps(table.as_ptr().add(((qa_row[ks[i]] as usize) << 4) + 8))
            });
            let mut j = 0;
            while j + 8 <= tile {
                let mut a0 = _mm256_loadu_ps(acc.as_ptr().add(r * acc_stride + j));
                for i in 0..4 {
                    let idx = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        qw.as_ptr().add(ks[i] * tile + j) as *const __m128i,
                    ));
                    let pick_lo = _mm256_permutevar8x32_ps(lo[i], idx);
                    let pick_hi = _mm256_permutevar8x32_ps(hi[i], idx);
                    let sel = _mm256_castsi256_ps(_mm256_slli_epi32(idx, 28));
                    a0 = _mm256_add_ps(a0, _mm256_blendv_ps(pick_lo, pick_hi, sel));
                }
                _mm256_storeu_ps(acc.as_mut_ptr().add(r * acc_stride + j), a0);
                j += 8;
            }
            for j in j..tile {
                let slot = r * acc_stride + j;
                let mut a = acc[slot];
                for &ki in &ks {
                    a += table[((qa_row[ki] as usize) << 4) + (qw[ki * tile + j] & 0xF) as usize];
                }
                acc[slot] = a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactMultiplier;

    #[test]
    fn from_range_includes_zero_and_round_trips_grid() {
        let q = QuantParams::from_range(-1.0, 3.0);
        assert!(q.scale() > 0.0);
        assert_eq!(q.dequantize(q.zero_point()), 0.0);
        // Every code round-trips through quantize(dequantize(code)).
        for code in 0..=255u8 {
            assert_eq!(q.quantize(q.dequantize(code)), code, "code {code}");
        }
    }

    #[test]
    fn positive_only_and_negative_only_ranges_still_contain_zero() {
        let pos = QuantParams::from_range(0.5, 4.0);
        assert_eq!(pos.zero_point(), 0, "range widened down to zero");
        let neg = QuantParams::from_range(-4.0, -0.5);
        assert_eq!(neg.zero_point(), 255, "range widened up to zero");
        assert_eq!(neg.dequantize(255), 0.0);
    }

    #[test]
    fn degenerate_and_nonfinite_ranges_fall_back_to_unit_scale() {
        for (lo, hi) in [(0.0, 0.0), (2.0, 2.0), (f32::NAN, 1.0), (0.0, f32::INFINITY)] {
            let q = QuantParams::from_range(lo, hi);
            assert!(q.scale().is_finite() && q.scale() > 0.0, "({lo}, {hi}) -> {q:?}");
        }
    }

    #[test]
    fn quantize_saturates_and_maps_nan_to_zero_point() {
        let q = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(q.quantize(-100.0), 0);
        assert_eq!(q.quantize(100.0), 255);
        assert_eq!(q.quantize(f32::NAN), q.zero_point());
        assert_eq!(q.quantize(f32::INFINITY), 255);
        assert_eq!(q.quantize(f32::NEG_INFINITY), 0);
    }

    #[test]
    fn observe_ignores_nan_and_handles_empty() {
        assert_eq!(QuantParams::observe(&[]), (0.0, 0.0));
        assert_eq!(QuantParams::observe(&[f32::NAN]), (0.0, 0.0));
        assert_eq!(QuantParams::observe(&[1.0, f32::NAN, -2.0]), (-2.0, 1.0));
    }

    #[test]
    fn lut_stores_exact_products() {
        let a = QuantParams::from_range(-2.0, 2.0);
        let b = QuantParams::from_range(0.0, 1.0);
        let lut = ProductLut::build(&ExactMultiplier, a, b);
        for (qa, qb) in [(0u8, 0u8), (17, 200), (255, 255), (a.zero_point(), 9)] {
            let want = a.dequantize(qa) * b.dequantize(qb);
            assert_eq!(lut.product(qa, qb).to_bits(), want.to_bits());
        }
        assert_eq!(lut.a_params(), a);
        assert_eq!(lut.b_params(), b);
    }

    #[test]
    fn requantize_fuses_bias_and_relu() {
        let q = QuantParams::from_range(0.0, 10.0);
        let acc = [-3.0f32, 0.0, 4.0];
        let mut out = [0u8; 3];
        requantize_bias_act(&acc, 1.0, true, &q, &mut out);
        assert_eq!(out[0], q.quantize(0.0), "relu clamps -2");
        assert_eq!(out[1], q.quantize(1.0));
        assert_eq!(out[2], q.quantize(5.0));
        requantize_bias_act(&acc, 1.0, false, &q, &mut out);
        assert_eq!(out[0], q.quantize(-2.0), "no relu: saturates at the range floor");
    }

    #[test]
    #[should_panic(expected = "rows overlap")]
    fn gemm_rejects_overlapping_rows() {
        let lut = ProductLut::build(
            &ExactMultiplier,
            QuantParams::from_range(0.0, 1.0),
            QuantParams::from_range(0.0, 1.0),
        );
        let mut acc = [0.0f32; 8];
        lut_gemm(&lut, &[0, 0], 2, 1, &[0, 0, 0], 3, &mut acc, 2);
    }

    #[test]
    #[should_panic(expected = "acc too small")]
    fn gemm_rejects_short_acc() {
        let lut = ProductLut::build(
            &ExactMultiplier,
            QuantParams::from_range(0.0, 1.0),
            QuantParams::from_range(0.0, 1.0),
        );
        let mut acc = [0.0f32; 5];
        lut_gemm(&lut, &[0, 0], 2, 1, &[0, 0, 0], 3, &mut acc, 3);
    }

    #[test]
    fn int4_params_include_zero_and_round_trip_grid() {
        let q = QuantParams4::from_range(-1.0, 3.0);
        assert!(q.scale() > 0.0);
        assert_eq!(q.dequantize(q.zero_point()), 0.0);
        for code in 0..CODES4 as u8 {
            assert_eq!(q.quantize(q.dequantize(code)), code, "code {code}");
        }
        // Codes dequantize modulo 16, like every kernel path.
        assert_eq!(q.dequantize(0x35).to_bits(), q.dequantize(0x5).to_bits());
        // Saturation + NaN behaviour mirrors the u8 quantizer.
        assert_eq!(q.quantize(-100.0), 0);
        assert_eq!(q.quantize(100.0), 15);
        assert_eq!(q.quantize(f32::NAN), q.zero_point());
        for (lo, hi) in [(0.0, 0.0), (f32::NAN, 1.0), (0.0, f32::INFINITY)] {
            let d = QuantParams4::from_range(lo, hi);
            assert!(d.scale().is_finite() && d.scale() > 0.0, "({lo}, {hi}) -> {d:?}");
        }
        let pos = QuantParams4::from_range(0.5, 4.0);
        assert_eq!(pos.zero_point(), 0, "range widened down to zero");
        let neg = QuantParams4::from_range(-4.0, -0.5);
        assert_eq!(neg.zero_point(), 15, "range widened up to zero");
    }

    #[test]
    fn lut4_stores_exact_products_in_both_operand_orders() {
        let act = QuantParams::from_range(-2.0, 2.0);
        let w = QuantParams4::from_range(-1.5, 0.5);
        for order in [Lut4Order::WeightsLeft, Lut4Order::ActivationsLeft] {
            let lut = ProductLut4::build(&ExactMultiplier, act, w, order);
            for (qa, qw) in [(0u8, 0u8), (17, 9), (255, 15), (act.zero_point(), 3)] {
                let (x, y) = match order {
                    Lut4Order::WeightsLeft => (w.dequantize(qw), act.dequantize(qa)),
                    Lut4Order::ActivationsLeft => (act.dequantize(qa), w.dequantize(qw)),
                };
                assert_eq!(lut.product(qa, qw).to_bits(), (x * y).to_bits());
            }
            assert_eq!(lut.act_params(), act);
            assert_eq!(lut.w_params(), w);
            assert_eq!(lut.order(), order);
            assert_eq!(lut.table().len(), CODES * CODES4);
        }
    }

    #[test]
    fn lut4_gemm_matches_reference_on_all_paths() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let act = QuantParams::from_range(-1.0, 1.0);
        let w = QuantParams4::from_range(-1.0, 1.0);
        let m = ExactMultiplier;
        for order in [Lut4Order::WeightsLeft, Lut4Order::ActivationsLeft] {
            let lut = ProductLut4::build(&m, act, w, order);
            for (rows, k, tile) in [(1, 1, 1), (2, 7, 15), (3, 9, 17), (4, 13, 33), (5, 150, 64)] {
                let stride = tile + 3;
                let mut qa: Vec<u8> = (0..rows * k).map(|_| rng.gen()).collect();
                // Plant zero-point codes so the skip path runs.
                for slot in qa.iter_mut().step_by(5) {
                    *slot = act.zero_point();
                }
                let qw: Vec<u8> = (0..k * tile).map(|_| rng.gen::<u8>() & 0xF).collect();
                let seed: Vec<f32> =
                    (0..rows * stride).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

                let mut want = seed.clone();
                lut4_gemm_reference(&m, act, w, order, &qa, rows, k, &qw, tile, &mut want, stride);
                let mut got = seed.clone();
                lut4_gemm(&lut, &qa, rows, k, &qw, tile, &mut got, stride);
                let mut got_s = seed.clone();
                lut4_gemm_scalar(&lut, &qa, rows, k, &qw, tile, &mut got_s, stride);
                for i in 0..want.len() {
                    assert_eq!(got[i].to_bits(), want[i].to_bits(), "{rows}x{k}x{tile} [{i}]");
                    assert_eq!(
                        got_s[i].to_bits(),
                        want[i].to_bits(),
                        "scalar {rows}x{k}x{tile} [{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn lut4_gemm_ignores_high_weight_nibble() {
        let act = QuantParams::from_range(-1.0, 1.0);
        let w = QuantParams4::from_range(-1.0, 1.0);
        let lut = ProductLut4::build(&ExactMultiplier, act, w, Lut4Order::ActivationsLeft);
        let qa = [200u8, 3, 77];
        let qw_lo: Vec<u8> = (0..3 * 19).map(|i| (i % 16) as u8).collect();
        let qw_hi: Vec<u8> = qw_lo.iter().map(|&q| q | 0xA0).collect();
        let mut a = vec![0.0f32; 19];
        let mut b = vec![0.0f32; 19];
        lut4_gemm(&lut, &qa, 1, 3, &qw_lo, 19, &mut a, 19);
        lut4_gemm(&lut, &qa, 1, 3, &qw_hi, 19, &mut b, 19);
        for i in 0..19 {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "[{i}]");
        }
    }

    #[test]
    #[should_panic(expected = "acc too small")]
    fn lut4_gemm_rejects_short_acc() {
        let lut = ProductLut4::build(
            &ExactMultiplier,
            QuantParams::from_range(0.0, 1.0),
            QuantParams4::from_range(0.0, 1.0),
            Lut4Order::ActivationsLeft,
        );
        let mut acc = [0.0f32; 5];
        lut4_gemm(&lut, &[0, 0], 2, 1, &[0, 0, 0], 3, &mut acc, 3);
    }
}
