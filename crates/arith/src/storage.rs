//! Owned-or-mapped backing storage for large inference constants.
//!
//! Compiled plans hold two kinds of big flat arrays: `f32` tables/weights
//! (256 KiB per [`crate::ProductLut`], one weight matrix per layer) and `u8`
//! code tensors. At compile time these are plain `Vec`s; when a plan is
//! loaded from a zero-copy snapshot they should instead *borrow* the mapped
//! file so that N workers (or N processes, via the page cache) share one
//! physical copy. [`Storage`] is that choice: an enum over an owned `Vec<T>`
//! and a typed window into a shared byte region.
//!
//! The mapped variant keeps the region alive through an
//! `Arc<dyn ByteRegion>` and re-derives the `&[T]` view on every
//! [`Storage::as_slice`] call, so the enum stays `Send + Sync + Clone`
//! without self-referential borrows. Alignment and bounds are validated
//! once, at construction ([`Storage::mapped`]); the snapshot format's
//! 64-byte section alignment makes `f32` views valid by construction, and
//! the check here is the backstop that turns a corrupt offset into a typed
//! error instead of undefined behavior.

use std::sync::Arc;

/// A shared immutable byte buffer that typed [`Storage`] windows can borrow.
///
/// Blanket-implemented for anything `AsRef<[u8]> + Send + Sync` — e.g. a
/// `memmap2::Mmap`, or an aligned heap buffer in tests. The returned slice
/// must be stable for the lifetime of the value (same pointer, same
/// length); all standard implementors satisfy this.
pub trait ByteRegion: Send + Sync {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

impl<B: AsRef<[u8]> + Send + Sync> ByteRegion for B {
    fn bytes(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Element types `Storage` may reinterpret raw bytes as: plain-old-data with
/// no padding and no invalid bit patterns. Sealed — exactly `u8` and `f32`,
/// the two element types compiled plans store in bulk.
pub trait Pod: Copy + Send + Sync + 'static + sealed::Sealed {}

impl Pod for u8 {}
impl Pod for f32 {}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for f32 {}
}

/// Why a mapped window could not be created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// `offset + len * size_of::<T>()` overflows or exceeds the region.
    OutOfBounds,
    /// `region.bytes().as_ptr() + offset` is not aligned for `T`.
    Misaligned,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::OutOfBounds => write!(f, "mapped window exceeds the byte region"),
            StorageError::Misaligned => write!(f, "mapped window is misaligned for its element"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Backing storage for a flat `[T]`: owned, or a window into a shared
/// mapped byte region.
#[derive(Clone)]
pub enum Storage<T: Pod> {
    /// Heap-owned elements (the compile-time path).
    Owned(Vec<T>),
    /// `len` elements starting `offset` bytes into `region` (the
    /// snapshot-load path). Invariants — in-bounds, aligned — are checked
    /// by [`Storage::mapped`], the only way to construct this variant.
    Mapped { region: Arc<dyn ByteRegion>, offset: usize, len: usize },
}

impl<T: Pod> Storage<T> {
    /// A typed window of `len` elements at byte `offset` into `region`.
    ///
    /// Validates bounds and alignment up front so that [`Storage::as_slice`]
    /// is infallible afterwards.
    pub fn mapped(
        region: Arc<dyn ByteRegion>,
        offset: usize,
        len: usize,
    ) -> Result<Storage<T>, StorageError> {
        let bytes = region.bytes();
        let size = len.checked_mul(std::mem::size_of::<T>()).ok_or(StorageError::OutOfBounds)?;
        let end = offset.checked_add(size).ok_or(StorageError::OutOfBounds)?;
        if end > bytes.len() {
            return Err(StorageError::OutOfBounds);
        }
        if !(bytes.as_ptr() as usize + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(StorageError::Misaligned);
        }
        Ok(Storage::Mapped { region, offset, len })
    }

    /// The elements, wherever they live.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped { region, offset, len } => {
                // Bounds and alignment were validated in `mapped`, and
                // `ByteRegion` implementors return a stable slice; `T: Pod`
                // admits every bit pattern.
                unsafe {
                    let base = region.bytes().as_ptr().add(*offset);
                    std::slice::from_raw_parts(base as *const T, *len)
                }
            }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Storage::Owned(v) => v.len(),
            Storage::Mapped { len, .. } => *len,
        }
    }

    /// Whether the storage holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements borrow a mapped region (vs being heap-owned).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped { .. })
    }
}

impl<T: Pod> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Storage<T> {
        Storage::Owned(v)
    }
}

impl<T: Pod> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Storage::Owned(v) => f.debug_struct("Owned").field("len", &v.len()).finish(),
            Storage::Mapped { offset, len, .. } => {
                f.debug_struct("Mapped").field("offset", offset).field("len", len).finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_round_trip() {
        let s: Storage<f32> = vec![1.0, 2.0, 3.0].into();
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_mapped());
    }

    #[test]
    fn mapped_window_reads_region_bytes() {
        // An aligned Vec<u8> would not guarantee f32 alignment; build the
        // region from f32s and view its bytes.
        let floats = [0.5f32, -1.25, 3.0, f32::NAN];
        let bytes: Vec<u8> = floats.iter().flat_map(|v| v.to_le_bytes()).collect();
        // Copy into an f32-aligned buffer.
        let mut aligned = vec![0f32; floats.len()];
        let dst =
            unsafe { std::slice::from_raw_parts_mut(aligned.as_mut_ptr() as *mut u8, bytes.len()) };
        dst.copy_from_slice(&bytes);
        let region: Arc<dyn ByteRegion> = Arc::new(AlignedRegion(aligned));
        let s: Storage<f32> = Storage::mapped(region, 4, 2).unwrap();
        assert!(s.is_mapped());
        assert_eq!(s.as_slice(), &[-1.25, 3.0]);
    }

    #[test]
    fn mapped_rejects_out_of_bounds_and_misalignment() {
        let region: Arc<dyn ByteRegion> = Arc::new(AlignedRegion(vec![0f32; 4]));
        assert_eq!(
            Storage::<f32>::mapped(region.clone(), 0, 5).unwrap_err(),
            StorageError::OutOfBounds
        );
        assert_eq!(
            Storage::<f32>::mapped(region.clone(), usize::MAX, 1).unwrap_err(),
            StorageError::OutOfBounds
        );
        assert_eq!(Storage::<f32>::mapped(region, 2, 1).unwrap_err(), StorageError::Misaligned);
    }

    /// f32-backed region so the base pointer is 4-byte aligned.
    struct AlignedRegion(Vec<f32>);

    impl AsRef<[u8]> for AlignedRegion {
        fn as_ref(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.0.as_ptr() as *const u8, self.0.len() * 4) }
        }
    }
}
