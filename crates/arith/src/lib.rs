//! Gate-level approximate arithmetic for **Defensive Approximation** (ASPLOS '21).
//!
//! This crate implements every hardware artifact the paper builds or compares
//! against, simulated faithfully at the gate level but bit-sliced over machine
//! words for speed:
//!
//! * [`adders`] — the mirror-adder family: the exact full adder and the
//!   AMA1–AMA5 approximate mirror adders (AMA5, `Sum = B` / `Cout = A`, is the
//!   design the paper's Ax-FPM uses).
//! * [`mod@array`] — carry-save array multipliers with configurable cell kinds,
//!   port wiring, and final carry-propagate adder.
//! * [`fpm`] — IEEE-754 binary32 floating-point multipliers assembled from a
//!   mantissa array core: the exact reference and the paper's **Ax-FPM**.
//! * [`heap`] — the heterogeneous **HEAP** multiplier and the design-space
//!   exploration that selects it (paper §4.3 and Appendix A).
//! * [`bfloat`] — the truncating Bfloat16 multiplier (paper §7.2).
//! * [`metrics`] — MRED / NMED / inflation-rate error metrics (Appendix A).
//! * [`profile`] — noise-profile sampling behind Figures 3, 13 and 15.
//! * [`energy`] — a transistor-census energy and critical-path delay model
//!   calibrated to the paper's PTM-45nm measurements (Tables 7 and 9).
//!
//! # Arithmetic backend
//!
//! Scalar [`Multiplier::multiply`] is the semantic ground truth, but hot
//! paths (CNN GEMMs, profile sweeps) run on the **batched backend**:
//!
//! * Slice-level trait methods — [`Multiplier::multiply_slice`],
//!   [`Multiplier::dot_accumulate`], [`Multiplier::axpy_slice`] — with
//!   scalar-loop defaults and vectorizable overrides for the exact and
//!   Bfloat16 multipliers.
//! * [`Multiplier::batch_kernel`] hands out a per-worker stateful
//!   [`batch::BatchKernel`]. The FPM kernel decomposes the shared operand
//!   once per slice and, for cores without a proven closed form (HEAP and
//!   ablation wirings), memoizes gate-level significand products in a
//!   [`batch::SigProductCache`] — a direct-mapped LUT tagged with the full
//!   24×24-bit significand pair, so hits are exact and misses fall back to
//!   the gate-level core.
//! * [`batch::PreparedOperands`] pre-decomposes a weight matrix's
//!   sign/exponent/significand fields once (at serving-plan compile time,
//!   see `da_nn::engine`); [`BatchKernel::axpy_prepared`] consumes the
//!   cached decomposition directly, skipping the per-call field extraction
//!   entirely.
//! * Cores with a proven closed form (canonical AMA5, the exact array, and
//!   the Bfloat16 truncation) run on the **lane-parallel kernels** of
//!   [`simd`]: rows are classified once ([`RowClass`]) and swept by
//!   `LANES`-wide branchless block pipelines (autovectorized on every
//!   target; hand-written AVX2 with runtime dispatch behind the
//!   `simd-intrinsics` cargo feature). Inf/NaN rows stay on the shared
//!   scalar slow path, so special-value semantics cannot diverge.
//! * When operands are **8-bit codes**, the [`quantized`] module collapses
//!   any multiplier's hot path — gate-level cores included — into a
//!   precomputed 256×256 [`ProductLut`] gather: every entry is the scalar
//!   multiplier's own product over the decoded code pair, and
//!   [`quantized::lut_gemm`] accumulates them with exact `f32` adds
//!   (runtime-dispatched AVX-512/AVX2 hardware gathers, scalar fallback).
//!   This is what int8 serving plans in `da_nn::engine` run on.
//! * When additionally the **weights are 4-bit codes**, [`ProductLut4`]
//!   shrinks the table to 256×16 — one cache line per activation code — and
//!   [`quantized::lut4_gemm`] replaces every hardware gather with an
//!   **in-register shuffle** (`vpermps` over a zmm-/ymm-resident table row),
//!   the fastest inner loop in the crate.
//! * For **gate-level cores without a closed form** (HEAP, rotating ablation
//!   wirings), [`bitslice`] evaluates the netlist itself over 64-wide (or,
//!   through [`Multiplier::axpy_fused`], 8×64-wide) lane planes of machine
//!   words — no table to build or invalidate, which is what makes rotating
//!   schedules viable at serving throughput.
//!
//! # Backend decision tree
//!
//! How a GEMM picks its backend, from most to least specialized:
//!
//! 1. **Int4 weight codes available** (plan compiled at
//!    `Int4Weights` precision and the layer passed its calibration gap
//!    check) → [`quantized::lut4_gemm`] in-register shuffle. Needs only a
//!    16-entry table row per activation code; AVX-512 `vpermutexvar_ps`,
//!    AVX2 `vpermps`+blend, scalar fallback.
//! 2. **Int8 codes available** (quantized serving plan) →
//!    [`quantized::lut_gemm`] 256×256 table gather. AVX-512/AVX2 hardware
//!    gathers, scalar fallback.
//! 3. **f32 operands, closed-form core** (exact array, canonical AMA5
//!    Ax-FPM, Bfloat16 truncation) → [`simd`] lane kernels: branchless
//!    `LANES`-wide block pipelines over classified rows.
//! 4. **f32 operands, gate-level core** (HEAP, ablation wirings) →
//!    one-shot kernels run the [`bitslice`] plane sweep via
//!    [`Multiplier::axpy_fused`]; memoized per-worker kernels keep the
//!    [`batch::SigProductCache`] LUT path (its hit/miss counters are part
//!    of the observable serving contract).
//! 5. **Anything else** (special values, ragged tails, non-x86 targets) →
//!    the scalar loop, which is always the semantic ground truth.
//!
//! Every batched path is **bit-identical** to the scalar loop it replaces
//! (enforced by property tests here and in `da_nn`); approximation stays a
//! property of the simulated hardware, never of the simulation strategy.
//!
//! # Quick example
//!
//! ```
//! use da_arith::{Multiplier, fpm::FloatMultiplier};
//!
//! let ax = FloatMultiplier::ax_fpm();
//! let exact = 0.5_f32 * 0.75_f32;
//! let approx = ax.multiply(0.5, 0.75);
//! // The paper's headline property: Ax-FPM inflates products (Figure 3).
//! assert!(approx >= exact);
//! assert!(approx <= 2.0 * exact + f32::EPSILON);
//! ```

pub mod adders;
pub mod array;
pub mod batch;
pub mod bfloat;
pub mod bitslice;
pub mod energy;
pub mod fpm;
pub mod heap;
pub mod metrics;
pub mod profile;
pub mod quantized;
pub mod rotating;
pub mod simd;
pub mod storage;

mod multiplier;

pub use adders::AdderKind;
pub use array::{ArrayMultiplier, ArrayMultiplierSpec, CellAssignment, CpaKind, PortMap};
pub use batch::{BatchKernel, PreparedOperand, PreparedOperands, SigProductCache};
pub use bitslice::{
    transpose64, BitslicedArray, BITSLICE_LANES, BITSLICE_WIDE, BITSLICE_WIDE_LANES,
};
pub use multiplier::{ExactMultiplier, Multiplier, MultiplierKind};
pub use quantized::{Lut4Order, ProductLut, ProductLut4, QuantParams, QuantParams4};
pub use simd::{classify_row, RowClass, LANES};
pub use storage::{ByteRegion, Storage, StorageError};
