//! Carry-save array multipliers with configurable (approximate) cells.
//!
//! The paper's mantissa multiplier (§4.1, Figure 1) is the classic unsigned
//! array multiplier: partial products `pp_i = (b_i ? a << i : 0)` are reduced
//! row by row through full-adder cells, and a final carry-propagate adder
//! (CPA) merges the surviving sum and carry vectors.
//!
//! Each cell has three input nets — the partial-product bit, the sum arriving
//! from the row above, and the carry arriving from one column to the right —
//! and two outputs, `Sum` (kept in-column) and `Cout` (sent one column left).
//! For the *exact* full adder the input assignment is irrelevant (the
//! function is symmetric); for approximate adders such as AMA5 (`Sum = B`,
//! `Cout = A`) the wiring choice *is* the design. The paper does not publish
//! its wiring; [`PortMap::PpSumCarry`] is the assignment that reproduces the
//! paper's measured error characterization (Figure 3: ~96% of products
//! inflated, MRED ≈ 0.33 — see DESIGN.md §4), and the alternatives are kept
//! for the wiring-sensitivity ablation.

use crate::adders::AdderKind;
use crate::bitslice::eval_tt;

/// Assignment of the three cell input nets to the adder ports `(A, B, Cin)`.
///
/// Variant names list the nets feeding `A`, `B`, `Cin` in order; `Pp` is the
/// partial-product bit, `Sum` the incoming sum, `Carry` the incoming carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortMap {
    /// `A = pp`, `B = sum`, `Cin = carry` — canonical wiring; reproduces the
    /// paper's Figure-3 inflation profile with AMA5 cells.
    PpSumCarry,
    /// `A = sum`, `B = pp`, `Cin = carry`.
    SumPpCarry,
    /// `A = pp`, `B = carry`, `Cin = sum`.
    PpCarrySum,
    /// `A = carry`, `B = pp`, `Cin = sum`.
    CarryPpSum,
    /// `A = sum`, `B = carry`, `Cin = pp`.
    SumCarryPp,
    /// `A = carry`, `B = sum`, `Cin = pp`.
    CarrySumPp,
}

impl PortMap {
    /// Every wiring permutation (for ablation sweeps).
    pub const ALL: [PortMap; 6] = [
        PortMap::PpSumCarry,
        PortMap::SumPpCarry,
        PortMap::PpCarrySum,
        PortMap::CarryPpSum,
        PortMap::SumCarryPp,
        PortMap::CarrySumPp,
    ];

    /// Route the three nets to the `(A, B, Cin)` ports.
    #[inline]
    pub fn assign(self, pp: u64, sum: u64, carry: u64) -> (u64, u64, u64) {
        match self {
            PortMap::PpSumCarry => (pp, sum, carry),
            PortMap::SumPpCarry => (sum, pp, carry),
            PortMap::PpCarrySum => (pp, carry, sum),
            PortMap::CarryPpSum => (carry, pp, sum),
            PortMap::SumCarryPp => (sum, carry, pp),
            PortMap::CarrySumPp => (carry, sum, pp),
        }
    }
}

impl std::fmt::Display for PortMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PortMap::PpSumCarry => "A=pp,B=sum,C=carry",
            PortMap::SumPpCarry => "A=sum,B=pp,C=carry",
            PortMap::PpCarrySum => "A=pp,B=carry,C=sum",
            PortMap::CarryPpSum => "A=carry,B=pp,C=sum",
            PortMap::SumCarryPp => "A=sum,B=carry,C=pp",
            PortMap::CarrySumPp => "A=carry,B=sum,C=pp",
        };
        f.write_str(s)
    }
}

/// Which full-adder design sits in each column of the array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellAssignment {
    /// Every cell uses the same design (the paper's Ax-FPM: all AMA5).
    Uniform(AdderKind),
    /// Column `j` (absolute product weight) uses `kinds[j]`; the vector must
    /// cover `2 * width` columns. This is the HEAP design space.
    PerColumn(Vec<AdderKind>),
}

impl CellAssignment {
    /// The adder kind at absolute column `col`.
    pub fn kind_at(&self, col: usize) -> AdderKind {
        match self {
            CellAssignment::Uniform(k) => *k,
            CellAssignment::PerColumn(v) => v[col],
        }
    }

    /// Distinct kinds present, with a bitmask of the columns each occupies.
    fn kind_masks(&self, columns: usize) -> Vec<(AdderKind, u64)> {
        match self {
            CellAssignment::Uniform(k) => vec![(*k, mask_low(columns))],
            CellAssignment::PerColumn(v) => {
                let mut out: Vec<(AdderKind, u64)> = Vec::new();
                for (j, k) in v.iter().enumerate().take(columns) {
                    match out.iter_mut().find(|(kk, _)| kk == k) {
                        Some((_, m)) => *m |= 1u64 << j,
                        None => out.push((*k, 1u64 << j)),
                    }
                }
                out
            }
        }
    }
}

/// The final carry-propagate adder merging the sum and carry vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpaKind {
    /// Behavioural exact addition (bit-identical to an exact ripple adder).
    Exact,
    /// Gate-level ripple adder built from `kind` cells. Ports: `A` = sum-vector
    /// bit, `B` = carry-vector bit, `Cin` = ripple carry (swap `A`/`B` with
    /// `swap`). The paper's Ax-FPM uses an AMA5 ripple CPA (`swap = false`),
    /// so the merged output follows the carry vector.
    Ripple {
        /// Adder design of each CPA cell.
        kind: AdderKind,
        /// Swap the `A`/`B` operand assignment (ablation).
        swap: bool,
    },
    /// Gate-level ripple adder whose cell at column `j` reuses the reduction
    /// array's column assignment (`cells.kind_at(j)`). This is the HEAP
    /// construction: the CPA is approximated in the same low columns as the
    /// array.
    RipplePerColumn,
}

/// Full configuration of an array multiplier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayMultiplierSpec {
    /// Operand bit width (product is `2 * width` bits). Must be in `1..=31`.
    pub width: usize,
    /// Cell design per column.
    pub cells: CellAssignment,
    /// Input-net wiring of the reduction cells.
    pub port_map: PortMap,
    /// Final carry-propagate adder.
    pub cpa: CpaKind,
}

impl ArrayMultiplierSpec {
    /// Exact multiplier of the given width.
    pub fn exact(width: usize) -> Self {
        ArrayMultiplierSpec {
            width,
            cells: CellAssignment::Uniform(AdderKind::Exact),
            port_map: PortMap::PpSumCarry,
            cpa: CpaKind::Exact,
        }
    }

    /// The paper's mantissa core: every cell (including the CPA) is AMA5.
    pub fn ax_mantissa(width: usize) -> Self {
        ArrayMultiplierSpec {
            width,
            cells: CellAssignment::Uniform(AdderKind::Ama5),
            port_map: PortMap::PpSumCarry,
            cpa: CpaKind::Ripple { kind: AdderKind::Ama5, swap: false },
        }
    }
}

/// A gate-level (bit-sliced) unsigned array multiplier.
///
/// # Examples
///
/// ```
/// use da_arith::{ArrayMultiplier, ArrayMultiplierSpec};
///
/// let exact = ArrayMultiplier::new(ArrayMultiplierSpec::exact(8));
/// assert_eq!(exact.multiply(13, 17), 13 * 17);
///
/// let approx = ArrayMultiplier::new(ArrayMultiplierSpec::ax_mantissa(8));
/// // For a multiplier with its top bit set, the AMA5 array inflates:
/// let exact_p = 200u64 * 150u64;
/// let approx_p = approx.multiply(200, 150);
/// assert!(approx_p >= exact_p);
/// ```
#[derive(Debug, Clone)]
pub struct ArrayMultiplier {
    spec: ArrayMultiplierSpec,
    /// `(sum_tt, cout_tt, column mask)` per distinct reduction-cell kind.
    row_kinds: Vec<(u8, u8, u64)>,
}

impl ArrayMultiplier {
    /// Build a multiplier from its specification.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=31` or a `PerColumn` assignment does
    /// not cover `2 * width` columns.
    pub fn new(spec: ArrayMultiplierSpec) -> Self {
        assert!((1..=31).contains(&spec.width), "width must be in 1..=31, got {}", spec.width);
        if let CellAssignment::PerColumn(v) = &spec.cells {
            assert!(
                v.len() >= 2 * spec.width,
                "PerColumn assignment covers {} columns, need {}",
                v.len(),
                2 * spec.width
            );
        }
        let columns = 2 * spec.width;
        let row_kinds = spec
            .cells
            .kind_masks(columns)
            .into_iter()
            .map(|(k, m)| (k.sum_tt(), k.cout_tt(), m))
            .collect();
        ArrayMultiplier { spec, row_kinds }
    }

    /// The configuration this multiplier was built from.
    pub fn spec(&self) -> &ArrayMultiplierSpec {
        &self.spec
    }

    /// Multiply two `width`-bit unsigned operands through the simulated array.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an operand exceeds `width` bits.
    pub fn multiply(&self, a: u64, b: u64) -> u64 {
        let w = self.spec.width;
        debug_assert!(a < (1u64 << w), "operand a exceeds width");
        debug_assert!(b < (1u64 << w), "operand b exceeds width");

        // Row 0 is the raw first partial product; no adder cells exist there.
        let mut s = if b & 1 == 1 { a } else { 0 };
        let mut c = 0u64;
        for i in 1..w {
            let pp = if (b >> i) & 1 == 1 { a << i } else { 0 };
            let (pa, pb, pcin) = self.spec.port_map.assign(pp, s, c);
            let mut ns = 0u64;
            let mut nc = 0u64;
            for &(sum_tt, cout_tt, mask) in &self.row_kinds {
                ns |= eval_tt(sum_tt, pa, pb, pcin) & mask;
                nc |= eval_tt(cout_tt, pa, pb, pcin) & mask;
            }
            s = ns;
            // A carry out of column j has weight j + 1.
            c = nc << 1;
        }
        self.merge(s, c)
    }

    /// Apply the final carry-propagate adder to the sum and carry vectors.
    fn merge(&self, s: u64, c: u64) -> u64 {
        match self.spec.cpa {
            CpaKind::Exact => s.wrapping_add(c),
            CpaKind::Ripple { kind, swap } => {
                let bits = 2 * self.spec.width + 1;
                let (sum_tt, cout_tt) = (kind.sum_tt(), kind.cout_tt());
                let mut out = 0u64;
                let mut carry = 0u64;
                for k in 0..bits.min(63) {
                    let x = (s >> k) & 1;
                    let y = (c >> k) & 1;
                    let (pa, pb) = if swap { (y, x) } else { (x, y) };
                    out |= (eval_tt(sum_tt, pa, pb, carry) & 1) << k;
                    carry = eval_tt(cout_tt, pa, pb, carry) & 1;
                }
                out
            }
            CpaKind::RipplePerColumn => {
                let bits = 2 * self.spec.width;
                let mut out = 0u64;
                let mut carry = 0u64;
                for k in 0..bits.min(63) {
                    let kind = self.spec.cells.kind_at(k);
                    let x = (s >> k) & 1;
                    let y = (c >> k) & 1;
                    out |= (eval_tt(kind.sum_tt(), x, y, carry) & 1) << k;
                    carry = eval_tt(kind.cout_tt(), x, y, carry) & 1;
                }
                // The final carry out of the top column lands one bit above.
                out | (carry << bits.min(63))
            }
        }
    }
}

/// A mask with the low `n` bits set (`n <= 64`).
fn mask_low(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn exact_array_equals_integer_multiply() {
        let mut rng = rng();
        for width in [1usize, 2, 4, 8, 13, 16, 24, 31] {
            let m = ArrayMultiplier::new(ArrayMultiplierSpec::exact(width));
            for _ in 0..200 {
                let a = rng.gen::<u64>() & mask_low(width);
                let b = rng.gen::<u64>() & mask_low(width);
                assert_eq!(m.multiply(a, b), a * b, "w={width} a={a} b={b}");
            }
        }
    }

    #[test]
    fn exact_array_is_wiring_invariant() {
        // The exact full adder is symmetric in all three inputs, so every
        // port map must produce the true product.
        let mut rng = rng();
        for pm in PortMap::ALL {
            let m = ArrayMultiplier::new(ArrayMultiplierSpec {
                port_map: pm,
                ..ArrayMultiplierSpec::exact(16)
            });
            for _ in 0..100 {
                let a = rng.gen::<u64>() & 0xFFFF;
                let b = rng.gen::<u64>() & 0xFFFF;
                assert_eq!(m.multiply(a, b), a * b, "port map {pm}");
            }
        }
    }

    #[test]
    fn exact_ripple_cpa_matches_behavioural_cpa() {
        let mut rng = rng();
        let ripple = ArrayMultiplier::new(ArrayMultiplierSpec {
            cpa: CpaKind::Ripple { kind: AdderKind::Exact, swap: false },
            ..ArrayMultiplierSpec::exact(12)
        });
        for _ in 0..300 {
            let a = rng.gen::<u64>() & 0xFFF;
            let b = rng.gen::<u64>() & 0xFFF;
            assert_eq!(ripple.multiply(a, b), a * b);
        }
    }

    /// The closed form derived in DESIGN.md §4: with AMA5 cells, the sum
    /// vector telescopes to `pp_0` and the carry vector ends as
    /// `pp_{w-1} << 1`; the AMA5 CPA then forwards the carry vector.
    #[test]
    fn ama5_array_matches_closed_form() {
        let mut rng = rng();
        let w = 12;
        let m = ArrayMultiplier::new(ArrayMultiplierSpec::ax_mantissa(w));
        for _ in 0..500 {
            let a = rng.gen::<u64>() & 0xFFF;
            let b = rng.gen::<u64>() & 0xFFF;
            let expected = if (b >> (w - 1)) & 1 == 1 { a << w } else { 0 };
            assert_eq!(m.multiply(a, b), expected, "a={a} b={b}");
        }
    }

    /// With an exact CPA, the low partial product survives as well.
    #[test]
    fn ama5_array_with_exact_cpa_keeps_low_bits() {
        let mut rng = rng();
        let w = 10;
        let m = ArrayMultiplier::new(ArrayMultiplierSpec {
            cpa: CpaKind::Exact,
            ..ArrayMultiplierSpec::ax_mantissa(w)
        });
        for _ in 0..500 {
            let a = rng.gen::<u64>() & 0x3FF;
            let b = rng.gen::<u64>() & 0x3FF;
            let hi = if (b >> (w - 1)) & 1 == 1 { a << w } else { 0 };
            let lo = if b & 1 == 1 { a } else { 0 };
            assert_eq!(m.multiply(a, b), hi + lo);
        }
    }

    /// The defining inflation property for normalized operands (top bit of
    /// the multiplier set): `exact <= approx <= 2 * exact`.
    #[test]
    fn ama5_inflates_normalized_products() {
        let mut rng = rng();
        let w = 16;
        let m = ArrayMultiplier::new(ArrayMultiplierSpec::ax_mantissa(w));
        for _ in 0..2000 {
            let a = (rng.gen::<u64>() & 0xFFFF) | 0x8000;
            let b = (rng.gen::<u64>() & 0xFFFF) | 0x8000;
            let exact = a * b;
            let approx = m.multiply(a, b);
            assert!(approx >= exact, "deflated: a={a} b={b}");
            assert!(approx <= 2 * exact, "over-inflated: a={a} b={b}");
        }
    }

    #[test]
    fn per_column_exact_assignment_is_exact() {
        let mut rng = rng();
        let w = 14;
        let m = ArrayMultiplier::new(ArrayMultiplierSpec {
            cells: CellAssignment::PerColumn(vec![AdderKind::Exact; 2 * w]),
            ..ArrayMultiplierSpec::exact(w)
        });
        for _ in 0..200 {
            let a = rng.gen::<u64>() & 0x3FFF;
            let b = rng.gen::<u64>() & 0x3FFF;
            assert_eq!(m.multiply(a, b), a * b);
        }
    }

    #[test]
    fn per_column_split_bounds_error_to_low_columns() {
        // Approximating only the low `k` columns perturbs the product by at
        // most the weight those columns (and their promoted carries) carry.
        let mut rng = rng();
        let w = 12;
        let k = 6;
        let mut kinds = vec![AdderKind::Ama5; k];
        kinds.extend(vec![AdderKind::Exact; 2 * w - k]);
        let m = ArrayMultiplier::new(ArrayMultiplierSpec {
            cells: CellAssignment::PerColumn(kinds),
            cpa: CpaKind::Exact,
            ..ArrayMultiplierSpec::exact(w)
        });
        for _ in 0..500 {
            let a = rng.gen::<u64>() & 0xFFF;
            let b = rng.gen::<u64>() & 0xFFF;
            let exact = a * b;
            let approx = m.multiply(a, b);
            // Each row can mis-add at most ~3·2^k across the approximate
            // columns; over w rows a loose bound is w · 2^(k+3).
            let bound = (w as u64) << (k + 3);
            assert!(
                approx.abs_diff(exact) <= bound,
                "error too large: a={a} b={b} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn multiply_by_zero_and_one() {
        for spec in [ArrayMultiplierSpec::exact(8), ArrayMultiplierSpec::ax_mantissa(8)] {
            let m = ArrayMultiplier::new(spec);
            assert_eq!(m.multiply(0, 0), 0);
            assert_eq!(m.multiply(0, 255), 0);
            assert_eq!(m.multiply(255, 0), 0);
        }
        let exact = ArrayMultiplier::new(ArrayMultiplierSpec::exact(8));
        assert_eq!(exact.multiply(1, 1), 1);
        assert_eq!(exact.multiply(255, 1), 255);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=31")]
    fn rejects_zero_width() {
        let _ = ArrayMultiplier::new(ArrayMultiplierSpec::exact(0));
    }

    #[test]
    #[should_panic(expected = "PerColumn assignment covers")]
    fn rejects_short_per_column_assignment() {
        let _ = ArrayMultiplier::new(ArrayMultiplierSpec {
            cells: CellAssignment::PerColumn(vec![AdderKind::Exact; 3]),
            ..ArrayMultiplierSpec::exact(8)
        });
    }
}
