//! Bit-sliced (word-parallel) evaluation of 3-input truth tables.
//!
//! A carry-save array-multiplier row applies the *same* cell function to every
//! column independently, so one row of up to 64 cells can be simulated with a
//! handful of word-level boolean operations instead of 64 per-cell calls.
//! This keeps the simulation gate-faithful while making the Ax-FPM fast
//! enough to drive whole-CNN inference.

/// Evaluate an 8-entry truth table bitwise across three input words.
///
/// `tt` is indexed by `(cin << 2) | (b << 1) | a`, matching
/// [`AdderKind::sum_tt`](crate::AdderKind::sum_tt). Bit `k` of the result is
/// the table output for the bit-`k` lanes of `a`, `b`, and `cin`.
///
/// Common tables are special-cased to their minimal boolean forms; arbitrary
/// tables fall back to a minterm expansion.
///
/// # Examples
///
/// ```
/// use da_arith::bitslice::eval_tt;
/// use da_arith::adders::EXACT_SUM_TT;
///
/// // XOR-parity of three words, lane by lane.
/// assert_eq!(eval_tt(EXACT_SUM_TT, 0b1100, 0b1010, 0b0110), 0b1100 ^ 0b1010 ^ 0b0110);
/// ```
#[inline]
pub fn eval_tt(tt: u8, a: u64, b: u64, cin: u64) -> u64 {
    match tt {
        0b0000_0000 => 0,
        0b1111_1111 => !0,
        0b1010_1010 => a,                            // A
        0b0101_0101 => !a,                           // !A
        0b1100_1100 => b,                            // B
        0b0011_0011 => !b,                           // !B
        0b1111_0000 => cin,                          // Cin
        0b0000_1111 => !cin,                         // !Cin
        0b1001_0110 => a ^ b ^ cin,                  // exact Sum
        0b0110_1001 => !(a ^ b ^ cin),               // !Sum
        0b1110_1000 => (a & b) | (cin & (a | b)),    // exact Cout (majority)
        0b0001_0111 => !((a & b) | (cin & (a | b))), // !Cout (AMA1 sum)
        _ => eval_tt_minterms(tt, a, b, cin),
    }
}

/// Generic minterm-expansion evaluation of an arbitrary 3-input truth table.
///
/// Used as the fallback for tables without a special-cased boolean form; it is
/// exhaustively checked against [`eval_tt`] in tests.
pub fn eval_tt_minterms(tt: u8, a: u64, b: u64, cin: u64) -> u64 {
    let mut out = 0u64;
    for idx in 0..8u8 {
        if (tt >> idx) & 1 == 1 {
            let ta = if idx & 1 == 1 { a } else { !a };
            let tb = if (idx >> 1) & 1 == 1 { b } else { !b };
            let tc = if (idx >> 2) & 1 == 1 { cin } else { !cin };
            out |= ta & tb & tc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdderKind;

    /// Exhaustively compare the fast path against the minterm fallback for
    /// every truth table used by any adder design, over random words.
    #[test]
    fn fast_paths_match_minterm_expansion() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut tables: Vec<u8> =
            AdderKind::ALL.iter().flat_map(|k| [k.sum_tt(), k.cout_tt()]).collect();
        tables.extend([0x00, 0xFF, 0xF0, 0x0F, 0x33, 0xCC, 0x69, 0x96, 0x17, 0x3A]);
        for tt in tables {
            for _ in 0..64 {
                let (a, b, c) = (rng.gen::<u64>(), rng.gen::<u64>(), rng.gen::<u64>());
                assert_eq!(
                    eval_tt(tt, a, b, c),
                    eval_tt_minterms(tt, a, b, c),
                    "table {tt:#010b} diverged"
                );
            }
        }
    }

    /// Bit-sliced evaluation must agree with per-bit [`AdderKind::eval`].
    #[test]
    fn bitslice_matches_scalar_eval() {
        for kind in AdderKind::ALL {
            for idx in 0u8..8 {
                let a = (idx & 1) as u64;
                let b = ((idx >> 1) & 1) as u64;
                let c = ((idx >> 2) & 1) as u64;
                let (sum, cout) = kind.eval(a as u8, b as u8, c as u8);
                assert_eq!(eval_tt(kind.sum_tt(), a, b, c) & 1, sum as u64);
                assert_eq!(eval_tt(kind.cout_tt(), a, b, c) & 1, cout as u64);
            }
        }
    }

    #[test]
    fn all_lanes_evaluated_independently() {
        // Alternating lanes exercise different truth-table rows simultaneously.
        let a = 0xAAAA_AAAA_AAAA_AAAA;
        let b = 0xCCCC_CCCC_CCCC_CCCC;
        let c = 0xF0F0_F0F0_F0F0_F0F0;
        let sum = eval_tt(crate::adders::EXACT_SUM_TT, a, b, c);
        for lane in 0..64 {
            let (la, lb, lc) = ((a >> lane) & 1, (b >> lane) & 1, (c >> lane) & 1);
            assert_eq!((sum >> lane) & 1, la ^ lb ^ lc, "lane {lane}");
        }
    }
}
