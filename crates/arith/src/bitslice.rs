//! Bit-sliced (word-parallel) evaluation of gate-level array multipliers.
//!
//! A carry-save array-multiplier row applies the *same* cell function to every
//! column independently, so one row of up to 64 cells can be simulated with a
//! handful of word-level boolean operations instead of 64 per-cell calls
//! ([`eval_tt`]). [`BitslicedArray`] turns that around: instead of slicing
//! *columns* of one multiply into a word, it slices **64 independent operand
//! pairs** into bit-planes (one `u64` per significand bit position), sweeps
//! the adder rows once per plane set, and transposes the product planes back.
//! Every word-level boolean op then retires 64 multiplies' worth of one gate,
//! which is what gives gate-level and rotating wirings — the kinds with no
//! closed form and no precomputed table — SIMD-class throughput while staying
//! bit-identical to [`ArrayMultiplier::multiply`](crate::ArrayMultiplier::multiply).

use crate::array::{ArrayMultiplierSpec, CellAssignment, CpaKind, PortMap};

/// Evaluate an 8-entry truth table bitwise across three input words.
///
/// `tt` is indexed by `(cin << 2) | (b << 1) | a`, matching
/// [`AdderKind::sum_tt`](crate::AdderKind::sum_tt). Bit `k` of the result is
/// the table output for the bit-`k` lanes of `a`, `b`, and `cin`.
///
/// Common tables are special-cased to their minimal boolean forms; arbitrary
/// tables fall back to a minterm expansion.
///
/// # Examples
///
/// ```
/// use da_arith::bitslice::eval_tt;
/// use da_arith::adders::EXACT_SUM_TT;
///
/// // XOR-parity of three words, lane by lane.
/// assert_eq!(eval_tt(EXACT_SUM_TT, 0b1100, 0b1010, 0b0110), 0b1100 ^ 0b1010 ^ 0b0110);
/// ```
#[inline]
pub fn eval_tt(tt: u8, a: u64, b: u64, cin: u64) -> u64 {
    match tt {
        0b0000_0000 => 0,
        0b1111_1111 => !0,
        0b1010_1010 => a,                            // A
        0b0101_0101 => !a,                           // !A
        0b1100_1100 => b,                            // B
        0b0011_0011 => !b,                           // !B
        0b1111_0000 => cin,                          // Cin
        0b0000_1111 => !cin,                         // !Cin
        0b1001_0110 => a ^ b ^ cin,                  // exact Sum
        0b0110_1001 => !(a ^ b ^ cin),               // !Sum
        0b1110_1000 => (a & b) | (cin & (a | b)),    // exact Cout (majority)
        0b0001_0111 => !((a & b) | (cin & (a | b))), // !Cout (AMA1 sum)
        _ => eval_tt_minterms(tt, a, b, cin),
    }
}

/// Generic minterm-expansion evaluation of an arbitrary 3-input truth table.
///
/// Used as the fallback for tables without a special-cased boolean form; it is
/// exhaustively checked against [`eval_tt`] in tests.
pub fn eval_tt_minterms(tt: u8, a: u64, b: u64, cin: u64) -> u64 {
    let mut out = 0u64;
    for idx in 0..8u8 {
        if (tt >> idx) & 1 == 1 {
            let ta = if idx & 1 == 1 { a } else { !a };
            let tb = if (idx >> 1) & 1 == 1 { b } else { !b };
            let tc = if (idx >> 2) & 1 == 1 { cin } else { !cin };
            out |= ta & tb & tc;
        }
    }
    out
}

/// Transpose a 64×64 bit matrix in place.
///
/// Bit `i` of `a[j]` afterwards equals bit `j` of `a[i]` beforehand, i.e. row
/// `j` of the result collects bit `j` of every input word. The operation is
/// an involution: applying it twice restores the input.
pub fn transpose64(a: &mut [u64; 64]) {
    // One loop per stage with a constant swap distance: the paired rows
    // `a[i]` / `a[i + J]` are contiguous runs, so the wide stages
    // autovectorize (the generic computed-stride loop does not).
    macro_rules! stage {
        ($j:literal, $m:literal) => {
            let mut k = 0usize;
            while k < 64 {
                for i in k..k + $j {
                    let t = ((a[i] >> $j) ^ a[i + $j]) & $m;
                    a[i] ^= t << $j;
                    a[i + $j] ^= t;
                }
                k += 2 * $j;
            }
        };
    }
    stage!(32, 0x0000_0000_FFFF_FFFFu64);
    stage!(16, 0x0000_FFFF_0000_FFFFu64);
    stage!(8, 0x00FF_00FF_00FF_00FFu64);
    stage!(4, 0x0F0F_0F0F_0F0F_0F0Fu64);
    stage!(2, 0x3333_3333_3333_3333u64);
    stage!(1, 0x5555_5555_5555_5555u64);
}

/// The number of operand pairs one [`BitslicedArray::multiply_block`] call
/// retires — one per bit lane of a `u64` plane word.
pub const BITSLICE_LANES: usize = 64;

/// Sub-blocks fused by one [`BitslicedArray::multiply_block8_shared`] call:
/// the sweep runs on `[u64; 8]` plane vectors, which fill one AVX-512
/// register (two AVX2 registers) per plane.
pub const BITSLICE_WIDE: usize = 8;

/// Lanes retired by one [`BitslicedArray::multiply_block8_shared`] call.
pub const BITSLICE_WIDE_LANES: usize = BITSLICE_WIDE * BITSLICE_LANES;

/// Which vector tier the wide sweep runs on (probed once, like the
/// [`crate::quantized`] gather dispatch).
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepLevel {
    Avx512,
    Avx2,
    Scalar,
}

#[cfg(target_arch = "x86_64")]
fn sweep_level() -> SweepLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SweepLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx512f") {
            SweepLevel::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            SweepLevel::Avx2
        } else {
            SweepLevel::Scalar
        }
    })
}

// The envelopes contain no intrinsics: they inline the generic body under a
// wider target feature so the `[u64; 8]` plane ops compile to 256-/512-bit
// boolean instructions. Bit-exactness is unconditional — the instruction
// selection changes, the computed planes do not.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block8_avx2(
    arr: &BitslicedArray,
    a: &[u64; BITSLICE_WIDE],
    b: &[u64; BITSLICE_WIDE_LANES],
) -> [u64; BITSLICE_WIDE_LANES] {
    arr.block8_body(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn block8_avx512(
    arr: &BitslicedArray,
    a: &[u64; BITSLICE_WIDE],
    b: &[u64; BITSLICE_WIDE_LANES],
) -> [u64; BITSLICE_WIDE_LANES] {
    arr.block8_body(a, b)
}

/// A reduction-cell function expressed in the *canonical* input order
/// `(pp, sum, carry)`, after folding the spec's [`PortMap`] into the truth
/// tables. Index convention: `(carry << 2) | (sum << 1) | pp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellOp {
    /// `sum_out = sum`, `cout = pp` — AMA5 under the canonical wiring. The
    /// cell is a pure pass-through, so a bit-sliced column costs one move.
    PassThrough,
    /// `sum_out = sum`, `cout = maj(pp, sum, carry)` — AMA4 canonical.
    SumPassCarryMaj,
    /// `sum_out = pp ^ sum ^ carry`, `cout = pp` — AMA2 canonical.
    SumXorCarryPp,
    /// Exact full adder: `xor3` / `maj`.
    Exact,
    /// Anything else — evaluated through [`eval_tt`] on the folded tables.
    Tables { sum_tt: u8, cout_tt: u8 },
}

const TT_PP: u8 = 0b1010_1010; // out = pp     (canonical index order)
const TT_S: u8 = 0b1100_1100; // out = sum
const TT_XOR3: u8 = 0b1001_0110;
const TT_MAJ: u8 = 0b1110_1000;

/// Fold a cell's `(sum_tt, cout_tt)` (indexed over its *ports* `(A, B, Cin)`)
/// through the wiring `pm` into tables indexed over the canonical nets
/// `(pp, sum, carry)`.
fn fold_port_map(sum_tt: u8, cout_tt: u8, pm: PortMap) -> (u8, u8) {
    let mut es = 0u8;
    let mut ec = 0u8;
    for idx in 0..8u8 {
        let pp = (idx & 1) as u64;
        let s = ((idx >> 1) & 1) as u64;
        let c = ((idx >> 2) & 1) as u64;
        let (a, b, cin) = pm.assign(pp, s, c);
        let oidx = ((cin << 2) | (b << 1) | a) as u8;
        es |= ((sum_tt >> oidx) & 1) << idx;
        ec |= ((cout_tt >> oidx) & 1) << idx;
    }
    (es, ec)
}

fn classify(sum_tt: u8, cout_tt: u8, pm: PortMap) -> CellOp {
    let (es, ec) = fold_port_map(sum_tt, cout_tt, pm);
    match (es, ec) {
        (TT_S, TT_PP) => CellOp::PassThrough,
        (TT_S, TT_MAJ) => CellOp::SumPassCarryMaj,
        (TT_XOR3, TT_PP) => CellOp::SumXorCarryPp,
        (TT_XOR3, TT_MAJ) => CellOp::Exact,
        _ => CellOp::Tables { sum_tt: es, cout_tt: ec },
    }
}

// Elementwise boolean ops over `W` plane words. Written as fixed-size array
// maps so the sweep instantiated at `W > 1` autovectorizes; at `W = 1` they
// compile to the plain scalar ops.
#[inline(always)]
fn vand<const W: usize>(a: [u64; W], b: [u64; W]) -> [u64; W] {
    std::array::from_fn(|k| a[k] & b[k])
}

#[inline(always)]
fn vxor3<const W: usize>(a: [u64; W], b: [u64; W], c: [u64; W]) -> [u64; W] {
    std::array::from_fn(|k| a[k] ^ b[k] ^ c[k])
}

#[inline(always)]
fn vmaj<const W: usize>(a: [u64; W], b: [u64; W], c: [u64; W]) -> [u64; W] {
    std::array::from_fn(|k| (a[k] & b[k]) | (c[k] & (a[k] | b[k])))
}

#[inline(always)]
fn cell_eval_w<const W: usize>(
    op: CellOp,
    pp: [u64; W],
    sj: [u64; W],
    cj: [u64; W],
) -> ([u64; W], [u64; W]) {
    match op {
        CellOp::PassThrough => (sj, pp),
        CellOp::SumPassCarryMaj => (sj, vmaj(pp, sj, cj)),
        CellOp::SumXorCarryPp => (vxor3(pp, sj, cj), pp),
        CellOp::Exact => (vxor3(pp, sj, cj), vmaj(pp, sj, cj)),
        CellOp::Tables { sum_tt, cout_tt } => (
            std::array::from_fn(|k| eval_tt(sum_tt, pp[k], sj[k], cj[k])),
            std::array::from_fn(|k| eval_tt(cout_tt, pp[k], sj[k], cj[k])),
        ),
    }
}

#[cfg(test)]
#[inline(always)]
fn cell_eval(op: CellOp, pp: u64, sj: u64, cj: u64) -> (u64, u64) {
    let (s, c) = cell_eval_w(op, [pp], [sj], [cj]);
    (s[0], c[0])
}

/// The final carry-propagate adder, pre-lowered to bit-plane form. CPA cells
/// take their ports directly — `(A, B, Cin)` = `(s, c, ripple_carry)` — so
/// their truth tables are classified with the identity wiring; [`cell_eval`]
/// then runs them without any per-column table dispatch (an AMA5 CPA column
/// is two moves).
#[derive(Debug, Clone)]
enum CpaSlices {
    /// Behavioural exact merge (`s + c`), rippled over planes.
    Exact,
    /// Gate-level ripple from one cell design; ports are `(A, B, Cin)` =
    /// `(s, c, ripple)`, or `(c, s, ripple)` when swapped.
    Ripple { op: CellOp, swap: bool },
    /// HEAP-style CPA: column `k` reuses the array's column-`k` cell design.
    PerColumn { ops: Vec<CellOp> },
}

/// A bit-sliced evaluator for an [`ArrayMultiplierSpec`]: 64 independent
/// multiplies per call, bit-identical to the scalar
/// [`ArrayMultiplier`](crate::ArrayMultiplier) built from the same spec.
///
/// # Examples
///
/// ```
/// use da_arith::{ArrayMultiplier, ArrayMultiplierSpec, BitslicedArray};
///
/// let spec = ArrayMultiplierSpec::ax_mantissa(8);
/// let scalar = ArrayMultiplier::new(spec.clone());
/// let sliced = BitslicedArray::new(&spec);
/// let a = [173u64; 64];
/// let mut b = [0u64; 64];
/// for (l, slot) in b.iter_mut().enumerate() {
///     *slot = (l as u64) * 4 % 256;
/// }
/// let prod = sliced.multiply_block(&a, &b);
/// for l in 0..64 {
///     assert_eq!(prod[l], scalar.multiply(a[l], b[l]));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BitslicedArray {
    width: usize,
    /// Maximal runs of columns sharing one cell function: `(op, start, end)`.
    runs: Vec<(CellOp, usize, usize)>,
    cpa: CpaSlices,
}

impl BitslicedArray {
    /// Lower a spec into bit-plane form.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ArrayMultiplier::new`](crate::ArrayMultiplier::new): `width` outside
    /// `1..=31` or a `PerColumn` assignment shorter than `2 * width`.
    pub fn new(spec: &ArrayMultiplierSpec) -> Self {
        assert!((1..=31).contains(&spec.width), "width must be in 1..=31, got {}", spec.width);
        if let CellAssignment::PerColumn(v) = &spec.cells {
            assert!(
                v.len() >= 2 * spec.width,
                "PerColumn assignment covers {} columns, need {}",
                v.len(),
                2 * spec.width
            );
        }
        let cols = 2 * spec.width;
        let mut runs: Vec<(CellOp, usize, usize)> = Vec::new();
        for j in 0..cols {
            let k = spec.cells.kind_at(j);
            let op = classify(k.sum_tt(), k.cout_tt(), spec.port_map);
            match runs.last_mut() {
                Some((last, _, end)) if *last == op && *end == j => *end = j + 1,
                _ => runs.push((op, j, j + 1)),
            }
        }
        // CPA ports are direct, so classification uses the identity wiring.
        let cpa_op =
            |k: crate::adders::AdderKind| classify(k.sum_tt(), k.cout_tt(), PortMap::PpSumCarry);
        let cpa = match spec.cpa {
            CpaKind::Exact => CpaSlices::Exact,
            CpaKind::Ripple { kind, swap } => CpaSlices::Ripple { op: cpa_op(kind), swap },
            CpaKind::RipplePerColumn => CpaSlices::PerColumn {
                ops: (0..cols).map(|k| cpa_op(spec.cells.kind_at(k))).collect(),
            },
        };
        BitslicedArray { width: spec.width, runs, cpa }
    }

    /// Operand bit width (products are `2 * width` bits).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Multiply 64 operand pairs through the simulated array at once.
    ///
    /// Lane `l` of the result is exactly
    /// `ArrayMultiplier::new(spec).multiply(a[l], b[l])`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any operand exceeds `width` bits.
    pub fn multiply_block(
        &self,
        a: &[u64; BITSLICE_LANES],
        b: &[u64; BITSLICE_LANES],
    ) -> [u64; BITSLICE_LANES] {
        let w = self.width;

        // Both operands fit below bit 32 (width <= 31), so one transposed
        // 64x64 matrix yields both plane sets: planes[0..w] are the bits of
        // `a`, planes[32..32 + w] the bits of `b`.
        let mut planes = [0u64; 64];
        for l in 0..BITSLICE_LANES {
            debug_assert!(a[l] >> w == 0, "operand a exceeds width in lane {l}");
            debug_assert!(b[l] >> w == 0, "operand b exceeds width in lane {l}");
            planes[l] = a[l] | (b[l] << 32);
        }
        transpose64(&mut planes);
        let mut ap = [[0u64; 1]; 32];
        let mut bp = [[0u64; 1]; 32];
        for p in 0..32 {
            ap[p] = [planes[p]];
            bp[p] = [planes[32 + p]];
        }
        let outp = self.sweep_planes(&ap, &bp);
        let mut out = [0u64; BITSLICE_LANES];
        for (o, p) in out.iter_mut().zip(&outp) {
            *o = p[0];
        }
        transpose64(&mut out);
        out
    }

    /// [`Self::multiply_block`] with one operand shared across all 64 lanes.
    ///
    /// The shared operand's bit-planes are pure broadcasts (`!0` or `0`), so
    /// only the varying side pays a transpose — this is the block the
    /// batched `axpy` paths run, where the multiplicand is constant over the
    /// whole row sweep.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any operand exceeds `width` bits.
    pub fn multiply_block_shared(
        &self,
        a: u64,
        b: &[u64; BITSLICE_LANES],
    ) -> [u64; BITSLICE_LANES] {
        let w = self.width;
        debug_assert!(a >> w == 0, "shared operand exceeds width");
        let mut tb = *b;
        for (l, y) in tb.iter().enumerate() {
            debug_assert!(y >> w == 0, "operand b exceeds width in lane {l}");
        }
        transpose64(&mut tb);
        let mut ap = [[0u64; 1]; 32];
        let mut bp = [[0u64; 1]; 32];
        for p in 0..32 {
            ap[p] = [0u64.wrapping_sub((a >> p) & 1)];
            bp[p] = [tb[p]];
        }
        let outp = self.sweep_planes(&ap, &bp);
        let mut out = [0u64; BITSLICE_LANES];
        for (o, p) in out.iter_mut().zip(&outp) {
            *o = p[0];
        }
        transpose64(&mut out);
        out
    }

    /// Eight [`Self::multiply_block_shared`] calls fused into one sweep:
    /// sub-block `t` multiplies its own shared operand `a[t]` against lanes
    /// `b[64 t..64 (t + 1)]`, and the boolean work runs on `[u64; 8]` plane
    /// vectors. The body is compiled three times — baseline, AVX2, AVX-512 —
    /// and runtime-dispatched like the [`crate::quantized`] gather kernels,
    /// so the plane vectors map onto the widest registers the CPU has. This
    /// is the GEMM inner loop's shape: eight consecutive reduction terms of
    /// one output row per call.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any operand exceeds `width` bits.
    pub fn multiply_block8_shared(
        &self,
        a: &[u64; BITSLICE_WIDE],
        b: &[u64; BITSLICE_WIDE_LANES],
    ) -> [u64; BITSLICE_WIDE_LANES] {
        #[cfg(target_arch = "x86_64")]
        {
            match sweep_level() {
                // SAFETY: `sweep_level` just probed the matching feature.
                SweepLevel::Avx512 => return unsafe { block8_avx512(self, a, b) },
                SweepLevel::Avx2 => return unsafe { block8_avx2(self, a, b) },
                SweepLevel::Scalar => {}
            }
        }
        self.block8_body(a, b)
    }

    /// The feature-agnostic body behind [`Self::multiply_block8_shared`]:
    /// `#[inline(always)]` so the `#[target_feature]` envelopes inline it and
    /// the autovectorizer sees the whole transpose + sweep under AVX2/AVX-512.
    #[inline(always)]
    fn block8_body(
        &self,
        a: &[u64; BITSLICE_WIDE],
        b: &[u64; BITSLICE_WIDE_LANES],
    ) -> [u64; BITSLICE_WIDE_LANES] {
        let w = self.width;
        let mut ap = [[0u64; BITSLICE_WIDE]; 32];
        for t in 0..BITSLICE_WIDE {
            debug_assert!(a[t] >> w == 0, "shared operand {t} exceeds width");
            for (p, plane) in ap.iter_mut().enumerate().take(w) {
                plane[t] = 0u64.wrapping_sub((a[t] >> p) & 1);
            }
        }
        let mut bp = [[0u64; BITSLICE_WIDE]; 32];
        for t in 0..BITSLICE_WIDE {
            let mut tb = [0u64; 64];
            tb.copy_from_slice(&b[t * BITSLICE_LANES..(t + 1) * BITSLICE_LANES]);
            transpose64(&mut tb);
            for (p, plane) in bp.iter_mut().enumerate() {
                plane[t] = tb[p];
            }
        }
        let outp = self.sweep_planes(&ap, &bp);
        let mut out = [0u64; BITSLICE_WIDE_LANES];
        for t in 0..BITSLICE_WIDE {
            let mut tb = [0u64; 64];
            for (x, p) in tb.iter_mut().zip(&outp) {
                *x = p[t];
            }
            transpose64(&mut tb);
            out[t * BITSLICE_LANES..(t + 1) * BITSLICE_LANES].copy_from_slice(&tb);
        }
        out
    }

    /// The plane-form array sweep: operand bit-planes in, product bit-planes
    /// out (plane `k` holds product bit `k` of every lane, `W` words per
    /// plane for `64 W` lanes).
    #[inline(always)]
    fn sweep_planes<const W: usize>(
        &self,
        ap: &[[u64; W]; 32],
        bp: &[[u64; W]; 32],
    ) -> [[u64; W]; 64] {
        let w = self.width;
        let cols = 2 * w;

        // Zero-padded partial-product source: row `i` reads a-plane `j - i`
        // at column `j` (`pp = a_{j-i} & b_i` inside the band `i <= j < i+w`,
        // zero outside). Padding 32 zero planes on either side makes that
        // read unconditional, so the sweeps carry no band-edge branches.
        let mut apad = [[0u64; W]; 96];
        apad[32..64].copy_from_slice(ap);

        // Sum planes cover columns 0..cols; carry planes 0..=cols because the
        // scalar array's `c = nc << 1` can push a bit to position `2w`.
        let mut s = [[0u64; W]; 62];
        let mut c = [[0u64; W]; 63];

        // Row 0 is the raw first partial product; no adder cells exist there.
        for j in 0..w {
            s[j] = vand(ap[j], bp[0]);
        }
        for i in 1..w {
            let bi = bp[i];
            let last = i == w - 1;
            // `base[j]` is the pp source for column j this row.
            let base = &apad[32 - i..32 - i + cols];
            // Carry out of column j - 1 this row becomes carry *into* column
            // j next row (the scalar `c = nc << 1`), threaded as `carry_next`.
            let mut carry_next = [0u64; W];
            for &(op, start, end) in &self.runs {
                if op == CellOp::PassThrough && !last {
                    // AMA5 columns drop incoming sum and carry entirely, and
                    // the run's own carry planes are only read by the final
                    // merge — so their writes are deferred to the last row
                    // and only the run's exit carry (pp of its last column)
                    // is threaded onward.
                    carry_next = vand(base[end - 1], bi);
                } else if op == CellOp::PassThrough {
                    for (cj, &aw) in c[start..end].iter_mut().zip(&base[start..end]) {
                        *cj = carry_next;
                        carry_next = vand(aw, bi);
                    }
                } else {
                    for ((cj, sj), &aw) in c[start..end]
                        .iter_mut()
                        .zip(s[start..end].iter_mut())
                        .zip(&base[start..end])
                    {
                        let pp = vand(aw, bi);
                        let old = *cj;
                        *cj = carry_next;
                        let (ns, nc) = cell_eval_w(op, pp, *sj, old);
                        *sj = ns;
                        carry_next = nc;
                    }
                }
            }
            c[cols] = carry_next;
        }

        let mut outp = [[0u64; W]; 64];
        match &self.cpa {
            CpaSlices::Exact => {
                // Behavioural `s + c`, rippled across planes; `c` reaches bit
                // `cols`, so the final carry lands at `cols + 1` (<= 63).
                let mut carry = [0u64; W];
                for k in 0..=cols {
                    let x = if k < cols { s[k] } else { [0u64; W] };
                    let y = c[k];
                    outp[k] = vxor3(x, y, carry);
                    carry = vmaj(x, y, carry);
                }
                outp[cols + 1] = carry;
            }
            CpaSlices::Ripple { op, swap } => {
                // Mirrors the scalar CpaKind::Ripple: 2w + 1 cells, the final
                // ripple carry is discarded.
                let mut carry = [0u64; W];
                for k in 0..=cols {
                    let x = if k < cols { s[k] } else { [0u64; W] };
                    let y = c[k];
                    let (pa, pb) = if *swap { (y, x) } else { (x, y) };
                    let (o, nc) = cell_eval_w(*op, pa, pb, carry);
                    outp[k] = o;
                    carry = nc;
                }
            }
            CpaSlices::PerColumn { ops } => {
                // Mirrors CpaKind::RipplePerColumn: 2w cells with direct
                // ports, carry-plane bit `2w` unused, final carry promoted to
                // bit `2w`.
                let mut carry = [0u64; W];
                for (((o, &op), &x), &y) in
                    outp[..cols].iter_mut().zip(ops).zip(&s[..cols]).zip(&c[..cols])
                {
                    let (bit, nc) = cell_eval_w(op, x, y, carry);
                    *o = bit;
                    carry = nc;
                }
                outp[cols] = carry;
            }
        }
        outp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayMultiplier, CpaKind};
    use crate::AdderKind;
    use rand::{Rng, SeedableRng};

    /// Exhaustively compare the fast path against the minterm fallback for
    /// every truth table used by any adder design, over random words.
    #[test]
    fn fast_paths_match_minterm_expansion() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut tables: Vec<u8> =
            AdderKind::ALL.iter().flat_map(|k| [k.sum_tt(), k.cout_tt()]).collect();
        tables.extend([0x00, 0xFF, 0xF0, 0x0F, 0x33, 0xCC, 0x69, 0x96, 0x17, 0x3A]);
        for tt in tables {
            for _ in 0..64 {
                let (a, b, c) = (rng.gen::<u64>(), rng.gen::<u64>(), rng.gen::<u64>());
                assert_eq!(
                    eval_tt(tt, a, b, c),
                    eval_tt_minterms(tt, a, b, c),
                    "table {tt:#010b} diverged"
                );
            }
        }
    }

    /// Bit-sliced evaluation must agree with per-bit [`AdderKind::eval`].
    #[test]
    fn bitslice_matches_scalar_eval() {
        for kind in AdderKind::ALL {
            for idx in 0u8..8 {
                let a = (idx & 1) as u64;
                let b = ((idx >> 1) & 1) as u64;
                let c = ((idx >> 2) & 1) as u64;
                let (sum, cout) = kind.eval(a as u8, b as u8, c as u8);
                assert_eq!(eval_tt(kind.sum_tt(), a, b, c) & 1, sum as u64);
                assert_eq!(eval_tt(kind.cout_tt(), a, b, c) & 1, cout as u64);
            }
        }
    }

    #[test]
    fn all_lanes_evaluated_independently() {
        // Alternating lanes exercise different truth-table rows simultaneously.
        let a = 0xAAAA_AAAA_AAAA_AAAA;
        let b = 0xCCCC_CCCC_CCCC_CCCC;
        let c = 0xF0F0_F0F0_F0F0_F0F0;
        let sum = eval_tt(crate::adders::EXACT_SUM_TT, a, b, c);
        for lane in 0..64 {
            let (la, lb, lc) = ((a >> lane) & 1, (b >> lane) & 1, (c >> lane) & 1);
            assert_eq!((sum >> lane) & 1, la ^ lb ^ lc, "lane {lane}");
        }
    }

    #[test]
    fn transpose_maps_every_bit_to_its_mirror() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let original: [u64; 64] = std::array::from_fn(|_| rng.gen());
        let mut t = original;
        transpose64(&mut t);
        for i in 0..64 {
            for j in 0..64 {
                assert_eq!((t[j] >> i) & 1, (original[i] >> j) & 1, "({i},{j})");
            }
        }
        // Involution: transposing again restores the input.
        transpose64(&mut t);
        assert_eq!(t, original);
    }

    /// `classify` + `cell_eval` must reproduce the raw truth-table pair for
    /// every table combination and wiring (the specialized ops are shortcuts,
    /// not approximations).
    #[test]
    fn cell_classification_matches_raw_tables() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let words: [u64; 4] = [0xAAAA_AAAA_AAAA_AAAA, 0xF0F0_F0F0_F0F0_F0F0, rng.gen(), rng.gen()];
        for pm in PortMap::ALL {
            for kind in AdderKind::ALL {
                let op = classify(kind.sum_tt(), kind.cout_tt(), pm);
                let (es, ec) = fold_port_map(kind.sum_tt(), kind.cout_tt(), pm);
                for &pp in &words {
                    for &sv in &words {
                        for &cv in &words {
                            let (ns, nc) = cell_eval(op, pp, sv, cv);
                            assert_eq!(ns, eval_tt_minterms(es, pp, sv, cv), "{kind:?} {pm} sum");
                            assert_eq!(nc, eval_tt_minterms(ec, pp, sv, cv), "{kind:?} {pm} cout");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn canonical_wiring_classifies_heap_cells_to_fast_ops() {
        let pm = PortMap::PpSumCarry;
        let op = |k: AdderKind| classify(k.sum_tt(), k.cout_tt(), pm);
        assert_eq!(op(AdderKind::Ama5), CellOp::PassThrough);
        assert_eq!(op(AdderKind::Ama4), CellOp::SumPassCarryMaj);
        assert_eq!(op(AdderKind::Ama2), CellOp::SumXorCarryPp);
        assert_eq!(op(AdderKind::Exact), CellOp::Exact);
    }

    fn assert_block_matches_scalar(spec: &ArrayMultiplierSpec, seed: u64) {
        let scalar = ArrayMultiplier::new(spec.clone());
        let sliced = BitslicedArray::new(spec);
        let mask = (1u64 << spec.width) - 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for round in 0..8 {
            let mut a = [0u64; 64];
            let mut b = [0u64; 64];
            for l in 0..64 {
                // Mix random lanes with adversarial corners.
                (a[l], b[l]) = match (round, l) {
                    (0, 0) => (0, 0),
                    (0, 1) => (mask, mask),
                    (0, 2) => (mask, 0),
                    (0, 3) => (0, mask),
                    (0, 4) => (1, mask),
                    (0, 5) => (mask, 1),
                    _ => (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask),
                };
            }
            let prod = sliced.multiply_block(&a, &b);
            for l in 0..64 {
                assert_eq!(
                    prod[l],
                    scalar.multiply(a[l], b[l]),
                    "lane {l}: a={} b={} spec={spec:?}",
                    a[l],
                    b[l]
                );
            }

            // The shared-operand and fused 4-block entries must agree too.
            let shared = sliced.multiply_block_shared(a[0], &b);
            for l in 0..64 {
                assert_eq!(shared[l], scalar.multiply(a[0], b[l]), "shared lane {l}");
            }
            let a8: [u64; BITSLICE_WIDE] = std::array::from_fn(|t| a[t]);
            let mut b8 = [0u64; BITSLICE_WIDE_LANES];
            for t in 0..BITSLICE_WIDE {
                for l in 0..64 {
                    b8[t * 64 + l] = b[(l + 17 * t) % 64];
                }
            }
            let wide = sliced.multiply_block8_shared(&a8, &b8);
            for t in 0..BITSLICE_WIDE {
                for l in 0..64 {
                    assert_eq!(
                        wide[t * 64 + l],
                        scalar.multiply(a8[t], b8[t * 64 + l]),
                        "wide block {t} lane {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitsliced_exact_matches_scalar_across_widths() {
        for width in [1usize, 2, 3, 8, 13, 24, 31] {
            assert_block_matches_scalar(&ArrayMultiplierSpec::exact(width), width as u64);
        }
    }

    #[test]
    fn bitsliced_ax_mantissa_matches_scalar() {
        for width in [8usize, 12, 24] {
            assert_block_matches_scalar(
                &ArrayMultiplierSpec::ax_mantissa(width),
                100 + width as u64,
            );
        }
    }

    #[test]
    fn bitsliced_heap_matches_scalar() {
        assert_block_matches_scalar(&crate::heap::heap_mantissa_spec(), 17);
    }

    #[test]
    fn bitsliced_matches_scalar_for_every_port_map_and_cell() {
        for pm in PortMap::ALL {
            for kind in AdderKind::ALL {
                let spec = ArrayMultiplierSpec {
                    width: 11,
                    cells: CellAssignment::Uniform(kind),
                    port_map: pm,
                    cpa: CpaKind::Exact,
                };
                assert_block_matches_scalar(&spec, 31);
            }
        }
    }

    #[test]
    fn bitsliced_matches_scalar_for_every_cpa() {
        let cells = CellAssignment::PerColumn(
            (0..24)
                .map(|j| match j % 7 {
                    0 => AdderKind::Ama1,
                    1 => AdderKind::Ama2,
                    2 => AdderKind::Ama3,
                    3 => AdderKind::Ama4,
                    4 => AdderKind::Ama5,
                    _ => AdderKind::Exact,
                })
                .collect(),
        );
        for cpa in [
            CpaKind::Exact,
            CpaKind::Ripple { kind: AdderKind::Ama5, swap: false },
            CpaKind::Ripple { kind: AdderKind::Ama2, swap: true },
            CpaKind::Ripple { kind: AdderKind::Exact, swap: false },
            CpaKind::RipplePerColumn,
        ] {
            let spec = ArrayMultiplierSpec {
                width: 12,
                cells: cells.clone(),
                port_map: PortMap::PpSumCarry,
                cpa,
            };
            assert_block_matches_scalar(&spec, 47);
        }
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=31")]
    fn rejects_zero_width() {
        let _ = BitslicedArray::new(&ArrayMultiplierSpec::exact(0));
    }

    /// Perf probe (not a correctness test): run with
    /// `cargo test -p da_arith --release timing_probe -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn timing_probe() {
        use std::time::Instant;
        let sliced = BitslicedArray::new(&crate::heap::heap_mantissa_spec());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: [u64; 64] = std::array::from_fn(|_| rng.gen::<u64>() & 0xFF_FFFF);
        let b: [u64; 64] = std::array::from_fn(|_| rng.gen::<u64>() & 0xFF_FFFF);
        let iters = 500_000u32;

        let mut t = a;
        let start = Instant::now();
        for _ in 0..iters {
            transpose64(std::hint::black_box(&mut t));
        }
        let per = start.elapsed().as_secs_f64() / iters as f64;
        println!("transpose64:    {:8.1} ns", per * 1e9);

        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            let p = sliced.multiply_block(std::hint::black_box(&a), std::hint::black_box(&b));
            acc ^= p[0];
        }
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        println!(
            "multiply_block: {:8.1} ns/block ({:.2} MMAC/s raw)",
            dt / iters as f64 * 1e9,
            iters as f64 * 64.0 / dt / 1e6
        );

        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            let p =
                sliced.multiply_block_shared(std::hint::black_box(a[0]), std::hint::black_box(&b));
            acc ^= p[0];
        }
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        println!(
            "block_shared:   {:8.1} ns/block ({:.2} MMAC/s raw)",
            dt / iters as f64 * 1e9,
            iters as f64 * 64.0 / dt / 1e6
        );

        let a8: [u64; BITSLICE_WIDE] = std::array::from_fn(|t| a[t]);
        let mut b8 = [0u64; BITSLICE_WIDE_LANES];
        for (t, chunk) in b8.chunks_mut(64).enumerate() {
            chunk.copy_from_slice(&b);
            chunk[0] = a[t];
        }
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            let p =
                sliced.multiply_block8_shared(std::hint::black_box(&a8), std::hint::black_box(&b8));
            acc ^= p[0];
        }
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        println!(
            "block8_shared:  {:8.1} ns/8blocks ({:.2} MMAC/s raw)",
            dt / iters as f64 * 1e9,
            iters as f64 * 512.0 / dt / 1e6
        );
    }
}
