//! Time-varying approximation — the paper's future-work item (2) (§9):
//! *"explore whether there is additional protection that results from
//! adapting the approximation function over time."*
//!
//! [`RotatingMultiplier`] cycles deterministically through a schedule of
//! multiplier designs, advancing once per inference epoch (driven by the
//! deployer via [`RotatingMultiplier::advance`]). An attacker who profiles
//! the classifier in one epoch faces a different effective network in the
//! next, while each individual epoch remains a fixed, deterministic
//! circuit — no RNG in the datapath, preserving DA's no-retraining story.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::multiplier::{Multiplier, MultiplierKind};

/// A multiplier that rotates through a fixed schedule of designs.
///
/// # Examples
///
/// ```
/// use da_arith::rotating::RotatingMultiplier;
/// use da_arith::{Multiplier, MultiplierKind};
///
/// let m = RotatingMultiplier::from_kinds(&[
///     MultiplierKind::AxFpm,
///     MultiplierKind::Heap,
/// ]);
/// let in_epoch_0 = m.multiply(0.5, 0.75);
/// m.advance();
/// let in_epoch_1 = m.multiply(0.5, 0.75);
/// m.advance();
/// // The schedule wraps: epoch 2 behaves like epoch 0 again.
/// assert_eq!(m.multiply(0.5, 0.75), in_epoch_0);
/// assert_ne!(in_epoch_0, in_epoch_1);
/// ```
pub struct RotatingMultiplier {
    schedule: Vec<Arc<dyn Multiplier>>,
    epoch: AtomicUsize,
}

impl RotatingMultiplier {
    /// A rotation over explicit multiplier instances.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty.
    pub fn new(schedule: Vec<Arc<dyn Multiplier>>) -> Self {
        assert!(!schedule.is_empty(), "rotation schedule cannot be empty");
        RotatingMultiplier { schedule, epoch: AtomicUsize::new(0) }
    }

    /// A rotation over [`MultiplierKind`]s.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    pub fn from_kinds(kinds: &[MultiplierKind]) -> Self {
        RotatingMultiplier::new(kinds.iter().map(|k| k.build()).collect())
    }

    /// The currently active epoch index (modulo the schedule length).
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed) % self.schedule.len()
    }

    /// The currently active design.
    pub fn current(&self) -> &Arc<dyn Multiplier> {
        &self.schedule[self.epoch()]
    }

    /// Advance to the next design in the schedule, returning the new epoch.
    pub fn advance(&self) -> usize {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.epoch()
    }

    /// Number of designs in the schedule.
    pub fn schedule_len(&self) -> usize {
        self.schedule.len()
    }
}

impl std::fmt::Debug for RotatingMultiplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RotatingMultiplier")
            .field("epoch", &self.epoch())
            .field("schedule", &self.schedule.iter().map(|m| m.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Multiplier for RotatingMultiplier {
    fn multiply(&self, a: f32, b: f32) -> f32 {
        self.current().multiply(a, b)
    }

    fn name(&self) -> &str {
        "rotating"
    }

    // The batched entry points delegate to the active epoch's design, so a
    // rotation over gate-level wirings rides each design's fastest backend —
    // in particular the table-free bit-sliced plane sweep, which is what
    // makes rotation viable at serving throughput (a per-design product
    // table would be invalidated on every advance).

    fn multiply_slice(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        self.current().multiply_slice(a, b, out);
    }

    fn dot_accumulate(&self, a: &[f32], b: &[f32]) -> f32 {
        self.current().dot_accumulate(a, b)
    }

    fn axpy_slice(&self, a: f32, b: &[f32], acc: &mut [f32]) {
        self.current().axpy_slice(a, b, acc);
    }

    fn axpy_fused(&self, a: &[f32], b: &[f32], acc: &mut [f32]) {
        self.current().axpy_fused(a, b, acc);
    }

    fn batch_kernel(&self) -> Box<dyn crate::batch::BatchKernel + Send + '_> {
        self.current().batch_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cycles_through_schedule() {
        let m = RotatingMultiplier::from_kinds(&[
            MultiplierKind::Exact,
            MultiplierKind::AxFpm,
            MultiplierKind::Heap,
        ]);
        assert_eq!(m.schedule_len(), 3);
        assert_eq!(m.current().name(), "exact");
        assert_eq!(m.advance(), 1);
        assert_eq!(m.current().name(), "ax-fpm");
        assert_eq!(m.advance(), 2);
        assert_eq!(m.current().name(), "heap");
        assert_eq!(m.advance(), 0, "wraps around");
        assert_eq!(m.current().name(), "exact");
    }

    #[test]
    fn each_epoch_is_deterministic() {
        let m = RotatingMultiplier::from_kinds(&[MultiplierKind::AxFpm, MultiplierKind::Heap]);
        let a = m.multiply(0.3, 0.9);
        assert_eq!(m.multiply(0.3, 0.9), a, "no intra-epoch randomness");
        m.advance();
        let b = m.multiply(0.3, 0.9);
        assert_ne!(a, b, "epochs differ");
    }

    #[test]
    fn matches_underlying_designs_exactly() {
        let m = RotatingMultiplier::from_kinds(&[MultiplierKind::AxFpm, MultiplierKind::Bfloat16]);
        let ax = MultiplierKind::AxFpm.build();
        let bf = MultiplierKind::Bfloat16.build();
        assert_eq!(m.multiply(0.42, 0.77), ax.multiply(0.42, 0.77));
        m.advance();
        assert_eq!(m.multiply(0.42, 0.77), bf.multiply(0.42, 0.77));
    }

    #[test]
    #[should_panic(expected = "schedule cannot be empty")]
    fn rejects_empty_schedule() {
        let _ = RotatingMultiplier::new(Vec::new());
    }

    /// The batched entry points must track the active epoch and stay
    /// bit-identical to the scalar loop — including for gate-level designs,
    /// which run the bit-sliced backend underneath.
    #[test]
    fn batched_entry_points_follow_the_active_epoch() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let m = RotatingMultiplier::from_kinds(&[MultiplierKind::Heap, MultiplierKind::AxFpm]);
        let n = 131;
        let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        for _epoch in 0..m.schedule_len() {
            let mut out = vec![0.0f32; n];
            m.multiply_slice(&a, &b, &mut out);
            let mut kern_out = vec![0.0f32; n];
            m.batch_kernel().mul(&a, &b, &mut kern_out);
            for i in 0..n {
                let want = m.multiply(a[i], b[i]);
                assert_eq!(out[i].to_bits(), want.to_bits(), "slice[{i}]");
                assert_eq!(kern_out[i].to_bits(), want.to_bits(), "kernel[{i}]");
            }

            let mut acc = vec![0.5f32; n];
            m.axpy_slice(a[0], &b, &mut acc);
            for i in 0..n {
                assert_eq!(acc[i], 0.5 + m.multiply(a[0], b[i]), "axpy[{i}]");
            }

            // Fused multi-term axpy must match sequential per-term axpy on
            // the active design, bit for bit.
            let terms = 9;
            let cols = 21;
            let rhs: Vec<f32> = (0..terms * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let mut fused = vec![0.25f32; cols];
            m.axpy_fused(&a[..terms], &rhs, &mut fused);
            let mut seq = vec![0.25f32; cols];
            for t in 0..terms {
                m.axpy_slice(a[t], &rhs[t * cols..(t + 1) * cols], &mut seq);
            }
            for i in 0..cols {
                assert_eq!(fused[i].to_bits(), seq[i].to_bits(), "fused[{i}]");
            }
            m.advance();
        }
    }
}
