//! IEEE-754 binary32 floating-point multipliers built around a mantissa
//! array core (paper §4.1, Figure 14).
//!
//! A floating-point multiplier (FPM) has three units: the mantissa
//! multiplier, the exponent adder, and the normalization/rounding unit. The
//! mantissa multiplier consumes ~81% of the power \[67\], so Defensive
//! Approximation replaces only it; sign, exponent, and normalization logic
//! stay exact hardware.
//!
//! Fidelity notes (documented deviations, see DESIGN.md):
//!
//! * **Normalization assumes the exact-core invariant.** For exact cores the
//!   48-bit significand product lies in `[2^46, 2^48)`, so the unit checks
//!   bit 47 only and re-packs with an implicit leading one. Approximate cores
//!   may violate the invariant; the unchanged normalization unit then
//!   *force-normalizes* — this is part of the hardware's behaviour, not a
//!   simulation artifact, and it is what produces the paper's inflation.
//! * **Rounding is truncation** (round toward zero), the common choice in
//!   approximate FPM designs.
//! * **Denormals are flushed to zero** on input and output.
//! * NaN/Inf follow IEEE semantics and bypass the approximate core.

use crate::array::{ArrayMultiplier, ArrayMultiplierSpec};
use crate::batch::{BatchKernel, SigProductCache};
use crate::bitslice::{BitslicedArray, BITSLICE_LANES, BITSLICE_WIDE, BITSLICE_WIDE_LANES};
use crate::multiplier::Multiplier;
use crate::simd::{self, RowClass};

/// Mantissa width including the implicit leading one.
pub const SIGNIFICAND_BITS: usize = 24;
/// Exponent bias of binary32.
pub const EXPONENT_BIAS: i32 = 127;

/// The raw fields of an IEEE-754 binary32 value (paper Figure 14).
///
/// # Examples
///
/// ```
/// use da_arith::fpm::Binary32Parts;
///
/// let p = Binary32Parts::from_f32(1.5);
/// assert_eq!(p.sign, 0);
/// assert_eq!(p.exponent, 127);          // unbiased exponent 0
/// assert_eq!(p.fraction, 1 << 22);      // 1.1₂
/// assert_eq!(p.significand(), (1 << 23) | (1 << 22));
/// assert_eq!(p.to_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binary32Parts {
    /// Sign bit (0 or 1).
    pub sign: u32,
    /// Biased 8-bit exponent field.
    pub exponent: u32,
    /// 23-bit fraction field (without the implicit one).
    pub fraction: u32,
}

impl Binary32Parts {
    /// Decompose an `f32` into its fields.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        Binary32Parts {
            sign: bits >> 31,
            exponent: (bits >> 23) & 0xFF,
            fraction: bits & 0x7F_FFFF,
        }
    }

    /// Reassemble the `f32`.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.sign << 31) | (self.exponent << 23) | self.fraction)
    }

    /// The 24-bit significand with the implicit leading one.
    ///
    /// Only meaningful for normal numbers (`exponent != 0`).
    pub fn significand(self) -> u32 {
        (1 << 23) | self.fraction
    }

    /// `true` for zero or denormal values (both flushed to zero here).
    pub fn is_zero_or_denormal(self) -> bool {
        self.exponent == 0
    }

    /// `true` for infinity or NaN.
    pub fn is_special(self) -> bool {
        self.exponent == 0xFF
    }
}

/// A binary32 multiplier whose 24×24 mantissa core is a configurable
/// gate-level [`ArrayMultiplier`].
///
/// # Examples
///
/// ```
/// use da_arith::{Multiplier, fpm::FloatMultiplier};
///
/// // The gate-level exact FPM equals native multiplication up to the
/// // truncating rounding mode (≤ 1 ulp below).
/// let exact = FloatMultiplier::exact();
/// let r = exact.multiply(1.25, 3.5);
/// assert_eq!(r, 1.25 * 3.5);
///
/// // The paper's Ax-FPM inflates products by a data-dependent factor.
/// let ax = FloatMultiplier::ax_fpm();
/// let approx = ax.multiply(0.6, 0.7);
/// assert!(approx >= 0.6 * 0.7 && approx <= 2.0 * 0.6 * 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct FloatMultiplier {
    core: ArrayMultiplier,
    name: String,
    fast_path: FastPath,
    /// Bit-sliced mirror of `core` for cores without a closed form, built on
    /// first use (64 significand products per plane sweep, see
    /// [`BitslicedArray`]).
    bitsliced: std::sync::OnceLock<BitslicedArray>,
}

/// Closed-form shortcuts for cores whose gate-level behaviour has been proven
/// equivalent (see `fast_path_matches_gate_level` test and DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FastPath {
    /// Simulate the core gate by gate.
    None,
    /// Canonical AMA5 array + AMA5 ripple CPA: the significand product
    /// collapses to `sa << 24`, so the result is `1.f_a · 2^(ea + eb - 126)`.
    CanonicalAma5,
    /// Exact core: the significand product is `sa * sb`.
    Exact,
}

impl FloatMultiplier {
    /// Build an FPM around the given mantissa-core configuration.
    ///
    /// # Panics
    ///
    /// Panics if the core width is not [`SIGNIFICAND_BITS`].
    pub fn with_core(name: impl Into<String>, spec: ArrayMultiplierSpec) -> Self {
        assert_eq!(
            spec.width, SIGNIFICAND_BITS,
            "binary32 mantissa core must be {SIGNIFICAND_BITS} bits wide"
        );
        let fast_path = if spec == ArrayMultiplierSpec::ax_mantissa(SIGNIFICAND_BITS) {
            FastPath::CanonicalAma5
        } else if spec == ArrayMultiplierSpec::exact(SIGNIFICAND_BITS) {
            FastPath::Exact
        } else {
            FastPath::None
        };
        FloatMultiplier {
            core: ArrayMultiplier::new(spec),
            name: name.into(),
            fast_path,
            bitsliced: std::sync::OnceLock::new(),
        }
    }

    /// The bit-sliced mirror of the mantissa core, built lazily (only cores
    /// without a closed-form fast path ever ask for it).
    fn bitsliced(&self) -> &BitslicedArray {
        self.bitsliced.get_or_init(|| BitslicedArray::new(self.core.spec()))
    }

    /// Gate-level exact FPM (reference; truncating rounding).
    pub fn exact() -> Self {
        FloatMultiplier::with_core("exact-fpm", ArrayMultiplierSpec::exact(SIGNIFICAND_BITS))
    }

    /// The paper's **Ax-FPM**: AMA5 array mantissa core.
    pub fn ax_fpm() -> Self {
        FloatMultiplier::with_core("ax-fpm", ArrayMultiplierSpec::ax_mantissa(SIGNIFICAND_BITS))
    }

    /// The mantissa core configuration.
    pub fn core_spec(&self) -> &ArrayMultiplierSpec {
        self.core.spec()
    }

    /// Multiply through the simulated datapath.
    pub fn multiply_f32(&self, a: f32, b: f32) -> f32 {
        self.multiply_inner(a, b, false)
    }

    /// Multiply forcing the gate-level core simulation even when a proven
    /// closed-form fast path exists (used to validate the fast paths).
    pub fn multiply_gate_level(&self, a: f32, b: f32) -> f32 {
        self.multiply_inner(a, b, true)
    }

    fn multiply_inner(&self, a: f32, b: f32, force_gate_level: bool) -> f32 {
        let pa = Binary32Parts::from_f32(a);
        let pb = Binary32Parts::from_f32(b);
        let sign = pa.sign ^ pb.sign;

        // Special values bypass the approximate core (exact hardware path).
        if a.is_nan() || b.is_nan() {
            return f32::NAN;
        }
        if pa.is_special() || pb.is_special() {
            // inf * 0 (or denormal, which we flush) is NaN.
            if pa.is_zero_or_denormal() || pb.is_zero_or_denormal() {
                return f32::NAN;
            }
            return pack(sign, 0xFF, 0);
        }
        if pa.is_zero_or_denormal() || pb.is_zero_or_denormal() {
            return pack(sign, 0, 0);
        }

        let prod = if force_gate_level {
            self.core.multiply(pa.significand() as u64, pb.significand() as u64)
        } else {
            match self.fast_path {
                FastPath::None => {
                    self.core.multiply(pa.significand() as u64, pb.significand() as u64)
                }
                FastPath::CanonicalAma5 => (pa.significand() as u64) << SIGNIFICAND_BITS,
                FastPath::Exact => pa.significand() as u64 * pb.significand() as u64,
            }
        };
        Self::finish(sign, pa.exponent, pb.exponent, prod)
    }

    /// The normalization/rounding unit: turn a 48-bit significand product and
    /// the operand exponents into a packed binary32. Shared verbatim by the
    /// scalar path and the batched kernel so the two cannot diverge.
    #[inline]
    fn finish(sign: u32, exp_a: u32, exp_b: u32, prod: u64) -> f32 {
        if prod == 0 {
            // Only reachable with aggressive cores under ablation wirings:
            // the normalization unit has nothing to normalize.
            return pack(sign, 0, 0);
        }

        let mut exp = exp_a as i32 + exp_b as i32 - EXPONENT_BIAS;
        // Exact-unit normalization: check bit 47 only, truncate low bits.
        let frac = if (prod >> 47) & 1 == 1 {
            exp += 1;
            ((prod >> 24) & 0x7F_FFFF) as u32
        } else {
            ((prod >> 23) & 0x7F_FFFF) as u32
        };

        pack_clamped(sign << 31, exp, frac)
    }
}

/// Saturating exponent clamp + field pack: overflow to infinity, underflow
/// flushed to zero. The single source of truth for the datapath's output
/// stage, shared by [`FloatMultiplier::finish`] and the batched kernel's
/// closed-form loops so they cannot diverge. `sign_bit` is already shifted
/// into bit 31.
#[inline]
fn pack_clamped(sign_bit: u32, exp: i32, frac: u32) -> f32 {
    let bits = if exp >= 0xFF {
        sign_bit | 0x7F80_0000 // overflow -> infinity
    } else if exp <= 0 {
        sign_bit // underflow -> flush to zero
    } else {
        sign_bit | ((exp as u32) << 23) | frac
    };
    f32::from_bits(bits)
}

/// Gate-level core multiplies a memo-enabled kernel performs before it
/// allocates its [`SigProductCache`]: a tiny GEMM (one Dense forward in an
/// attack loop, say) never pays the 1 MiB table allocation, while any
/// workload long enough to profit crosses the threshold almost immediately
/// (each gate-level product costs ~0.5 µs; the table costs ~50 µs once).
const MEMO_WARMUP_PRODUCTS: u32 = 512;

/// Memoization state of a batched FPM kernel for `FastPath::None` cores.
enum SigMemo {
    /// Never memoize (one-shot slice calls).
    Disabled,
    /// Memo-enabled but below [`MEMO_WARMUP_PRODUCTS`]; counts down.
    Warmup(u32),
    /// Allocated and serving.
    Active(SigProductCache),
}

/// The batched kernel behind [`FloatMultiplier::batch_kernel`]: decomposes
/// the shared operand once per slice call and, for cores without a proven
/// closed form (HEAP, ablation wirings), memoizes gate-level significand
/// products in a [`SigProductCache`] (allocated lazily after a warmup, so
/// small GEMMs skip it). Kernels *without* a memo cache — the one-shot slice
/// entry points — run those cores on the bit-sliced plane sweep instead
/// ([`BitslicedArray`], 64 products per block), which needs no table at all
/// and therefore also covers rotating wirings. Cores **with** a closed form (canonical AMA5, the
/// exact array) run on the lane-parallel kernels of [`crate::simd`]: each
/// right-hand row is classified once ([`RowClass`]) and swept by a
/// class-matched `LANES`-wide block pipeline; `Special` rows stay on the
/// shared per-element slow path.
///
/// Bit-exactness with the scalar path holds by construction: the special
/// value / zero / denormal branch structure mirrors `multiply_inner`, the
/// normalization tail re-expresses the shared [`FloatMultiplier::finish`]
/// (asserted equivalent in `crate::simd`'s unit tests), and cache hits are
/// validated against the full significand pair.
struct FpmBatchKernel<'a> {
    m: &'a FloatMultiplier,
    memo: SigMemo,
    /// Per-patch-row classes for the tile-level GEMM entry point, computed
    /// once per tile and reused by every output-row sweep.
    row_class: Vec<RowClass>,
}

impl<'a> FpmBatchKernel<'a> {
    fn new(m: &'a FloatMultiplier, with_cache: bool) -> Self {
        let memo = if with_cache && m.fast_path == FastPath::None {
            SigMemo::Warmup(MEMO_WARMUP_PRODUCTS)
        } else {
            SigMemo::Disabled
        };
        FpmBatchKernel { m, memo, row_class: Vec::new() }
    }

    #[inline]
    fn sig_product(&mut self, sa: u64, sb: u64) -> u64 {
        match self.m.fast_path {
            FastPath::CanonicalAma5 => sa << SIGNIFICAND_BITS,
            FastPath::Exact => sa * sb,
            FastPath::None => {
                let core = &self.m.core;
                match &mut self.memo {
                    SigMemo::Active(cache) => cache.product(sa, sb, |x, y| core.multiply(x, y)),
                    SigMemo::Disabled => core.multiply(sa, sb),
                    SigMemo::Warmup(left) => {
                        *left -= 1;
                        if *left == 0 {
                            self.memo = SigMemo::Active(SigProductCache::default());
                        }
                        core.multiply(sa, sb)
                    }
                }
            }
        }
    }

    /// One product against a predecomposed left operand; mirrors
    /// `multiply_inner` branch for branch.
    #[inline]
    fn mul_one(&mut self, pa: Binary32Parts, a_nan: bool, b: f32) -> f32 {
        let pb = Binary32Parts::from_f32(b);
        let sign = pa.sign ^ pb.sign;

        if a_nan || b.is_nan() {
            return f32::NAN;
        }
        if pa.is_special() || pb.is_special() {
            if pa.is_zero_or_denormal() || pb.is_zero_or_denormal() {
                return f32::NAN;
            }
            return pack(sign, 0xFF, 0);
        }
        if pa.is_zero_or_denormal() || pb.is_zero_or_denormal() {
            return pack(sign, 0, 0);
        }

        let prod = self.sig_product(pa.significand() as u64, pb.significand() as u64);
        FloatMultiplier::finish(sign, pa.exponent, pb.exponent, prod)
    }
}

impl FpmBatchKernel<'_> {
    /// The AMA5 closed form (`prod = s_a << 24`) makes the product of two
    /// normals a pure function of `a` and `b`'s sign/exponent fields:
    /// `1.f_a · 2^(e_a + e_b - 126)` (derivation in DESIGN.md §4). `Normal`
    /// and `Zeros` rows run the lane-parallel block kernels of
    /// [`crate::simd`]; `Special` rows take the per-element sweep so Inf/NaN
    /// semantics come from the one shared slow path.
    fn ama5_axpy_classified(
        &mut self,
        pa: Binary32Parts,
        class: RowClass,
        b: &[f32],
        acc: &mut [f32],
    ) {
        match class {
            RowClass::Normal => simd::ama5_axpy_normal(pa, b, acc),
            RowClass::Zeros => simd::ama5_axpy_zeros(pa, b, acc),
            RowClass::Special => self.ama5_sweep_special(pa, b, acc),
        }
    }

    /// Exact-core fast path with the shared operand's significand hoisted:
    /// one widened `u64` multiply plus a branch-free re-expression of
    /// [`FloatMultiplier::finish`] per element, on the same class-matched
    /// lane kernels as the AMA5 path.
    fn exact_axpy_classified(
        &mut self,
        pa: Binary32Parts,
        class: RowClass,
        b: &[f32],
        acc: &mut [f32],
    ) {
        match class {
            RowClass::Normal => simd::exact_axpy_normal(pa, b, acc),
            RowClass::Zeros => simd::exact_axpy_zeros(pa, b, acc),
            RowClass::Special => self.exact_sweep_special(pa, b, acc),
        }
    }

    /// AMA5 sweep of a row containing Inf/NaN: specials go through the
    /// shared [`FpmBatchKernel::mul_one`] slow path, everything else runs
    /// the scalar lane closed form (with its flush-to-zero select).
    fn ama5_sweep_special(&mut self, pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
        let (sign_a, fa, ea) = simd::ama5_fields(pa);
        for (o, &y) in acc.iter_mut().zip(b) {
            let bbits = y.to_bits();
            if (bbits >> 23) & 0xFF == 0xFF {
                *o = simd::nan_stable_add(*o, self.mul_one(pa, false, y));
            } else {
                *o += f32::from_bits(simd::ama5_lane_zeros(sign_a, fa, ea, bbits));
            }
        }
    }

    /// Exact-core sweep of a row containing Inf/NaN (see
    /// [`FpmBatchKernel::ama5_sweep_special`]).
    fn exact_sweep_special(&mut self, pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
        let (sa, sign_a, ea) = simd::exact_fields(pa);
        for (o, &y) in acc.iter_mut().zip(b) {
            let bbits = y.to_bits();
            if (bbits >> 23) & 0xFF == 0xFF {
                *o = simd::nan_stable_add(*o, self.mul_one(pa, false, y));
            } else {
                *o += f32::from_bits(simd::exact_lane_zeros(sa, sign_a, ea, bbits));
            }
        }
    }
}

impl FpmBatchKernel<'_> {
    /// Whether gate-level products should run on the bit-sliced plane sweep:
    /// only cores without a closed form, and only on kernels without a memo
    /// cache (memoized kernels keep their validated per-element hit path —
    /// their cache statistics are part of the observable contract).
    #[inline]
    fn uses_bitslice(&self) -> bool {
        self.m.fast_path == FastPath::None && matches!(self.memo, SigMemo::Disabled)
    }

    /// The shared `axpy` body over an already-decomposed left operand: the
    /// single implementation behind both [`BatchKernel::axpy`] and
    /// [`BatchKernel::axpy_prepared`], so the two entry points cannot
    /// diverge.
    fn axpy_parts(&mut self, pa: Binary32Parts, a_nan: bool, b: &[f32], acc: &mut [f32]) {
        assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
        if !pa.is_special() && !pa.is_zero_or_denormal() {
            match self.m.fast_path {
                FastPath::CanonicalAma5 => {
                    return self.ama5_axpy_classified(pa, simd::classify_row(b), b, acc);
                }
                FastPath::Exact => {
                    return self.exact_axpy_classified(pa, simd::classify_row(b), b, acc);
                }
                FastPath::None => {
                    if self.uses_bitslice() {
                        return self.axpy_parts_bitsliced(pa, b, acc);
                    }
                }
            }
        }
        for (o, &y) in acc.iter_mut().zip(b) {
            *o = simd::nan_stable_add(*o, self.mul_one(pa, a_nan, y));
        }
    }

    /// Gate-level axpy on the bit-sliced core: 64 normal right-hand elements
    /// are transposed into significand planes and multiplied per block; zero,
    /// denormal, and Inf/NaN elements take the shared [`FpmBatchKernel::mul_one`]
    /// slow path in place. Each accumulator element receives exactly one
    /// [`simd::nan_stable_add`], so the result is bit-identical to the
    /// per-element sweep.
    fn axpy_parts_bitsliced(&mut self, pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
        let m = self.m;
        let sliced = m.bitsliced();
        let sa = pa.significand() as u64;
        let mut sb_block = [sa; BITSLICE_LANES];
        // `(element index, raw b bits)` per occupied lane.
        let mut lanes: [(usize, u32); BITSLICE_LANES] = [(0, 0); BITSLICE_LANES];
        let mut n = 0usize;
        for (i, &y) in b.iter().enumerate() {
            let bbits = y.to_bits();
            let exp_b = (bbits >> 23) & 0xFF;
            if exp_b == 0 || exp_b == 0xFF {
                acc[i] = simd::nan_stable_add(acc[i], self.mul_one(pa, false, y));
                continue;
            }
            sb_block[n] = ((1u32 << 23) | (bbits & 0x7F_FFFF)) as u64;
            lanes[n] = (i, bbits);
            n += 1;
            if n == BITSLICE_LANES {
                Self::finish_axpy_block(sliced, sa, &sb_block, &lanes, n, pa, acc);
                n = 0;
            }
        }
        if n > 0 {
            // Residual lanes keep the `sa * sa` padding; their products are
            // computed and discarded.
            for slot in sb_block.iter_mut().skip(n) {
                *slot = sa;
            }
            Self::finish_axpy_block(sliced, sa, &sb_block, &lanes, n, pa, acc);
        }
    }

    fn finish_axpy_block(
        sliced: &BitslicedArray,
        sa: u64,
        sb_block: &[u64; BITSLICE_LANES],
        lanes: &[(usize, u32); BITSLICE_LANES],
        n: usize,
        pa: Binary32Parts,
        acc: &mut [f32],
    ) {
        // The left significand is constant across the call, so its planes are
        // broadcasts — only the right-hand block pays a transpose.
        let prods = sliced.multiply_block_shared(sa, sb_block);
        for lane in 0..n {
            let (i, bbits) = lanes[lane];
            let sign = pa.sign ^ (bbits >> 31);
            let exp_b = (bbits >> 23) & 0xFF;
            let p = FloatMultiplier::finish(sign, pa.exponent, exp_b, prods[lane]);
            acc[i] = simd::nan_stable_add(acc[i], p);
        }
    }

    /// Fused multi-term axpy (see [`Multiplier::axpy_fused`]): walk the `a`
    /// terms in order, batching every run of [`BITSLICE_WIDE`] normal terms
    /// through one wide plane sweep; zero/denormal/Inf/NaN terms (and the
    /// ragged tail) take the single-term path in place, so accumulation
    /// order — ascending `t` per element — is preserved exactly.
    fn axpy_fused(&mut self, a: &[f32], b: &[f32], acc: &mut [f32]) {
        assert_eq!(b.len(), a.len() * acc.len(), "axpy_fused length mismatch");
        let n = acc.len();
        let mut t = 0usize;
        while t < a.len() {
            let wide = self.uses_bitslice()
                && n > 0
                && a.len() - t >= BITSLICE_WIDE
                && a[t..t + BITSLICE_WIDE].iter().all(|&x| {
                    let e = (x.to_bits() >> 23) & 0xFF;
                    e != 0 && e != 0xFF
                });
            if wide {
                let a8: [f32; BITSLICE_WIDE] = a[t..t + BITSLICE_WIDE].try_into().unwrap();
                self.axpy8_bitsliced(a8, &b[t * n..(t + BITSLICE_WIDE) * n], acc);
                t += BITSLICE_WIDE;
            } else {
                self.axpy(a[t], &b[t * n..(t + 1) * n], acc);
                t += 1;
            }
        }
    }

    /// Eight shared left operands (all normal) against eight right-hand rows,
    /// on one [`BITSLICE_WIDE`]-block plane sweep per 64 output columns. Per
    /// output element the eight products are accumulated in ascending term
    /// order with one [`simd::nan_stable_add`] each — bit-identical to eight
    /// sequential [`BatchKernel::axpy`] calls. Right-hand specials take the
    /// shared [`FpmBatchKernel::mul_one`] slow path in place.
    fn axpy8_bitsliced(&mut self, a: [f32; BITSLICE_WIDE], b: &[f32], acc: &mut [f32]) {
        let m = self.m;
        let sliced = m.bitsliced();
        let n = acc.len();
        let pas: [Binary32Parts; BITSLICE_WIDE] =
            std::array::from_fn(|t| Binary32Parts::from_f32(a[t]));
        let sa8: [u64; BITSLICE_WIDE] = std::array::from_fn(|t| pas[t].significand() as u64);
        let mut sb = [1u64 << 23; BITSLICE_WIDE_LANES];
        // Per-term bitmask of lanes whose right operand is zero / denormal /
        // Inf / NaN (those lanes carry `1.0` padding through the sweep and
        // their products are discarded).
        let mut special = [0u64; BITSLICE_WIDE];
        for j0 in (0..n).step_by(BITSLICE_LANES) {
            let cols = (n - j0).min(BITSLICE_LANES);
            for t in 0..BITSLICE_WIDE {
                special[t] = 0;
                let brow = &b[t * n + j0..t * n + j0 + cols];
                for (l, &y) in brow.iter().enumerate() {
                    let bbits = y.to_bits();
                    let exp_b = (bbits >> 23) & 0xFF;
                    if exp_b == 0 || exp_b == 0xFF {
                        special[t] |= 1u64 << l;
                        sb[t * BITSLICE_LANES + l] = 1 << 23;
                    } else {
                        sb[t * BITSLICE_LANES + l] = ((1u32 << 23) | (bbits & 0x7F_FFFF)) as u64;
                    }
                }
                for slot in sb[t * BITSLICE_LANES..(t + 1) * BITSLICE_LANES].iter_mut().skip(cols) {
                    *slot = 1 << 23;
                }
            }
            let prods = sliced.multiply_block8_shared(&sa8, &sb);
            for l in 0..cols {
                let o = &mut acc[j0 + l];
                for t in 0..BITSLICE_WIDE {
                    let y = b[t * n + j0 + l];
                    let p = if (special[t] >> l) & 1 == 1 {
                        self.mul_one(pas[t], false, y)
                    } else {
                        let bbits = y.to_bits();
                        FloatMultiplier::finish(
                            pas[t].sign ^ (bbits >> 31),
                            pas[t].exponent,
                            (bbits >> 23) & 0xFF,
                            prods[t * BITSLICE_LANES + l],
                        )
                    };
                    *o = simd::nan_stable_add(*o, p);
                }
            }
        }
    }

    /// Block-compute element-wise products of two slices on the bit-sliced
    /// core. Lanes where either operand is zero/denormal/Inf/NaN fall back to
    /// [`FpmBatchKernel::mul_one`] in place; everything else runs 64 products
    /// per plane sweep. `out` receives one product per element.
    fn mul_pair_bitsliced(&mut self, a: &[f32], b: &[f32], out: &mut [f32]) {
        let m = self.m;
        let sliced = m.bitsliced();
        let mut sa_block = [1u64 << 23; BITSLICE_LANES];
        let mut sb_block = [1u64 << 23; BITSLICE_LANES];
        let mut lane_pos = [0usize; BITSLICE_LANES];
        for ((ac, bc), oc) in a
            .chunks(BITSLICE_LANES)
            .zip(b.chunks(BITSLICE_LANES))
            .zip(out.chunks_mut(BITSLICE_LANES))
        {
            let mut n = 0usize;
            for (i, (&x, &y)) in ac.iter().zip(bc).enumerate() {
                let xb = x.to_bits();
                let yb = y.to_bits();
                let ex = (xb >> 23) & 0xFF;
                let ey = (yb >> 23) & 0xFF;
                if ex == 0 || ex == 0xFF || ey == 0 || ey == 0xFF {
                    oc[i] = self.mul_one(Binary32Parts::from_f32(x), x.is_nan(), y);
                    continue;
                }
                sa_block[n] = ((1u32 << 23) | (xb & 0x7F_FFFF)) as u64;
                sb_block[n] = ((1u32 << 23) | (yb & 0x7F_FFFF)) as u64;
                lane_pos[n] = i;
                n += 1;
            }
            if n > 0 {
                for lane in n..BITSLICE_LANES {
                    sa_block[lane] = 1 << 23;
                    sb_block[lane] = 1 << 23;
                }
                let prods = sliced.multiply_block(&sa_block, &sb_block);
                for lane in 0..n {
                    let i = lane_pos[lane];
                    let xb = ac[i].to_bits();
                    let yb = bc[i].to_bits();
                    oc[i] = FloatMultiplier::finish(
                        (xb >> 31) ^ (yb >> 31),
                        (xb >> 23) & 0xFF,
                        (yb >> 23) & 0xFF,
                        prods[lane],
                    );
                }
            }
        }
    }
}

impl FpmBatchKernel<'_> {
    /// The class-matched tile sweep shared by [`BatchKernel::gemm_tile`]
    /// (per-row classes scanned by the kernel) and
    /// [`BatchKernel::gemm_tile_classed`] (one caller-supplied covering
    /// class): per element the arithmetic and accumulation order are
    /// identical to row-by-row `axpy_prepared`.
    fn gemm_tile_sweep(
        &mut self,
        ops: &crate::batch::PreparedOperands,
        b: &[f32],
        tile: usize,
        acc: &mut [f32],
        acc_stride: usize,
        class_at: &dyn Fn(usize) -> RowClass,
    ) {
        for r in 0..ops.rows() {
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
            for (k, op) in ops.row(r).iter().enumerate() {
                let pa = op.parts();
                let brow = &b[k * tile..(k + 1) * tile];
                if pa.is_special() || pa.is_zero_or_denormal() {
                    // Shared slow path, exactly as `axpy_parts` would take.
                    let nan = op.is_nan();
                    for (o, &y) in acc_row.iter_mut().zip(brow) {
                        *o = simd::nan_stable_add(*o, self.mul_one(pa, nan, y));
                    }
                    continue;
                }
                match self.m.fast_path {
                    FastPath::CanonicalAma5 => {
                        self.ama5_axpy_classified(pa, class_at(k), brow, acc_row);
                    }
                    FastPath::Exact => {
                        self.exact_axpy_classified(pa, class_at(k), brow, acc_row);
                    }
                    FastPath::None => unreachable!("closed-form sweeps only"),
                }
            }
        }
    }
}

/// Elements per stack block of the fused dot product: lane-compute this many
/// products at a time, then accumulate them in slice order (the reduction
/// order is part of the bit-exactness contract, so only the products — never
/// the summation — are parallelized across lanes).
const DOT_BLOCK: usize = 8 * simd::LANES;

impl BatchKernel for FpmBatchKernel<'_> {
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]) {
        self.axpy_parts(Binary32Parts::from_f32(a), a.is_nan(), b, acc);
    }

    fn axpy_prepared(&mut self, a: &crate::batch::PreparedOperand, b: &[f32], acc: &mut [f32]) {
        self.axpy_parts(a.parts(), a.is_nan(), b, acc);
    }

    fn axpy_classified(&mut self, a: f32, b: &[f32], class: RowClass, acc: &mut [f32]) {
        debug_assert!(class.covers(simd::classify_row(b)), "stale row class");
        assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
        let pa = Binary32Parts::from_f32(a);
        if !pa.is_special() && !pa.is_zero_or_denormal() {
            match self.m.fast_path {
                FastPath::CanonicalAma5 => return self.ama5_axpy_classified(pa, class, b, acc),
                FastPath::Exact => return self.exact_axpy_classified(pa, class, b, acc),
                FastPath::None => {}
            }
        }
        let a_nan = a.is_nan();
        for (o, &y) in acc.iter_mut().zip(b) {
            *o = simd::nan_stable_add(*o, self.mul_one(pa, a_nan, y));
        }
    }

    /// Multi-row sweep of one shared right-hand row: classify the row
    /// **once**, then run every shared operand's class-matched lane sweep
    /// (the blocked GEMM calls this with its resident output-row block, so
    /// the per-`axpy` classification scan is amortized across the block).
    fn axpy_rows(&mut self, a: &[f32], b: &[f32], acc: &mut [f32], acc_stride: usize) {
        assert!(a.len() <= 1 || acc_stride >= b.len(), "axpy_rows rows overlap");
        if self.m.fast_path == FastPath::None {
            for (r, &av) in a.iter().enumerate() {
                self.axpy(av, b, &mut acc[r * acc_stride..r * acc_stride + b.len()]);
            }
            return;
        }
        let class = simd::classify_row(b);
        for (r, &av) in a.iter().enumerate() {
            self.axpy_classified(av, b, class, &mut acc[r * acc_stride..r * acc_stride + b.len()]);
        }
    }

    /// Tile-level GEMM. For closed-form cores (canonical AMA5 and the exact
    /// array) the shared patch tile is classified **once** per row (normal /
    /// zero-bearing / special) and then swept by every output row with the
    /// class-matched lane kernel — per element the arithmetic and
    /// accumulation order are identical to row-by-row `axpy_prepared`
    /// (enforced by the batch tests and the engine equivalence property
    /// tests). Gate-level cores pay per-element costs anyway, so they keep
    /// row-by-row delegation (and their memo cache).
    fn gemm_tile(
        &mut self,
        ops: &crate::batch::PreparedOperands,
        b: &[f32],
        tile: usize,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        let k_rows = ops.cols();
        assert_eq!(b.len(), k_rows * tile, "gemm_tile b length mismatch");
        assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
        if self.m.fast_path == FastPath::None {
            for r in 0..ops.rows() {
                let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
                for (k, op) in ops.row(r).iter().enumerate() {
                    self.axpy_parts(op.parts(), op.is_nan(), &b[k * tile..(k + 1) * tile], acc_row);
                }
            }
            return;
        }

        let mut row_class = std::mem::take(&mut self.row_class);
        row_class.clear();
        for k in 0..k_rows {
            row_class.push(simd::classify_row(&b[k * tile..(k + 1) * tile]));
        }
        self.gemm_tile_sweep(ops, b, tile, acc, acc_stride, &|k| row_class[k]);
        self.row_class = row_class;
    }

    /// One class [covering](RowClass::covers) every patch row (a serving
    /// engine derives it from the conv input plane): same sweeps as
    /// [`BatchKernel::gemm_tile`], zero classification scans.
    fn gemm_tile_classed(
        &mut self,
        ops: &crate::batch::PreparedOperands,
        b: &[f32],
        tile: usize,
        class: RowClass,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        assert_eq!(b.len(), ops.cols() * tile, "gemm_tile b length mismatch");
        assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
        if self.m.fast_path == FastPath::None {
            for r in 0..ops.rows() {
                let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
                for (k, op) in ops.row(r).iter().enumerate() {
                    self.axpy_parts(op.parts(), op.is_nan(), &b[k * tile..(k + 1) * tile], acc_row);
                }
            }
            return;
        }
        self.gemm_tile_sweep(ops, b, tile, acc, acc_stride, &|_| class);
    }

    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_accumulate length mismatch");
        // Closed-form cores lane-compute the products block by block and
        // accumulate them in slice order; one Inf/NaN anywhere falls back to
        // the shared scalar loop (specials are vanishingly rare in
        // activations, and the slow path is the semantic ground truth).
        if self.m.fast_path != FastPath::None && !simd::pair_has_special(a, b) {
            let mut acc = 0.0f32;
            let mut buf = [0.0f32; DOT_BLOCK];
            for (ac, bc) in a.chunks(DOT_BLOCK).zip(b.chunks(DOT_BLOCK)) {
                let prods = &mut buf[..ac.len()];
                match self.m.fast_path {
                    FastPath::CanonicalAma5 => simd::ama5_mul_pair(ac, bc, prods),
                    _ => simd::exact_mul_pair(ac, bc, prods),
                }
                for &p in prods.iter() {
                    acc = simd::nan_stable_add(acc, p);
                }
            }
            return acc;
        }
        if self.uses_bitslice() {
            // Gate-level products run 64 per plane sweep; the reduction stays
            // in slice order (the order is part of the bit-exactness
            // contract), so only the products are parallelized.
            let mut acc = 0.0f32;
            let mut buf = [0.0f32; BITSLICE_LANES];
            for (ac, bc) in a.chunks(BITSLICE_LANES).zip(b.chunks(BITSLICE_LANES)) {
                let prods = &mut buf[..ac.len()];
                self.mul_pair_bitsliced(ac, bc, prods);
                for &p in prods.iter() {
                    acc = simd::nan_stable_add(acc, p);
                }
            }
            return acc;
        }
        let mut acc = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            acc =
                simd::nan_stable_add(acc, self.mul_one(Binary32Parts::from_f32(x), x.is_nan(), y));
        }
        acc
    }

    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
        assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
        if self.m.fast_path != FastPath::None && !simd::pair_has_special(a, b) {
            match self.m.fast_path {
                FastPath::CanonicalAma5 => simd::ama5_mul_pair(a, b, out),
                _ => simd::exact_mul_pair(a, b, out),
            }
            return;
        }
        if self.uses_bitslice() {
            return self.mul_pair_bitsliced(a, b, out);
        }
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = self.mul_one(Binary32Parts::from_f32(x), x.is_nan(), y);
        }
    }

    fn cache_stats(&self) -> Option<(u64, u64)> {
        match &self.memo {
            SigMemo::Active(cache) => Some(cache.stats()),
            SigMemo::Disabled | SigMemo::Warmup(_) => None,
        }
    }
}

impl Multiplier for FloatMultiplier {
    fn multiply(&self, a: f32, b: f32) -> f32 {
        self.multiply_f32(a, b)
    }

    fn name(&self) -> &str {
        &self.name
    }

    // One-shot slice calls amortize operand decomposition but skip the memo
    // cache (a 1 MiB table is not worth allocating per call); long-lived
    // kernels from `batch_kernel` get the cache.

    fn multiply_slice(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        FpmBatchKernel::new(self, false).mul(a, b, out);
    }

    fn dot_accumulate(&self, a: &[f32], b: &[f32]) -> f32 {
        FpmBatchKernel::new(self, false).dot(a, b)
    }

    fn axpy_slice(&self, a: f32, b: &[f32], acc: &mut [f32]) {
        FpmBatchKernel::new(self, false).axpy(a, b, acc);
    }

    fn axpy_fused(&self, a: &[f32], b: &[f32], acc: &mut [f32]) {
        FpmBatchKernel::new(self, false).axpy_fused(a, b, acc);
    }

    fn batch_kernel(&self) -> Box<dyn BatchKernel + Send + '_> {
        Box::new(FpmBatchKernel::new(self, true))
    }
}

fn pack(sign: u32, exponent: u32, fraction: u32) -> f32 {
    Binary32Parts { sign, exponent, fraction }.to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    /// Reference: binary32 multiply with round-toward-zero via integer math.
    fn f32_mul_truncated(a: f32, b: f32) -> f32 {
        let r = (a as f64) * (b as f64);
        if r == 0.0 || !r.is_finite() {
            return r as f32;
        }
        let sign = if r < 0.0 { -1.0 } else { 1.0 };
        let mag = r.abs();
        let towards_zero = f32::from_bits({
            let up = mag as f32;
            if (up as f64) > mag {
                up.to_bits() - 1
            } else {
                up.to_bits()
            }
        });
        sign as f32 * towards_zero
    }

    #[test]
    fn exact_fpm_matches_truncated_native_multiply() {
        let m = FloatMultiplier::exact();
        let mut rng = rng();
        for _ in 0..5000 {
            let a = rng.gen_range(-4.0f32..4.0);
            let b = rng.gen_range(-4.0f32..4.0);
            if a == 0.0 || b == 0.0 || ((a as f64) * (b as f64)).abs() < f32::MIN_POSITIVE as f64 {
                continue; // the simulated FPM flushes denormal results
            }
            let got = m.multiply(a, b);
            let want = f32_mul_truncated(a, b);
            assert_eq!(got.to_bits(), want.to_bits(), "a={a} b={b}");
        }
    }

    #[test]
    fn exact_fpm_handles_special_values() {
        let m = FloatMultiplier::exact();
        assert!(m.multiply(f32::NAN, 1.0).is_nan());
        assert!(m.multiply(1.0, f32::NAN).is_nan());
        assert!(m.multiply(f32::INFINITY, 0.0).is_nan());
        assert_eq!(m.multiply(f32::INFINITY, 2.0), f32::INFINITY);
        assert_eq!(m.multiply(f32::NEG_INFINITY, 2.0), f32::NEG_INFINITY);
        assert_eq!(m.multiply(f32::INFINITY, -2.0), f32::NEG_INFINITY);
        assert_eq!(m.multiply(0.0, 5.0), 0.0);
        assert_eq!(m.multiply(-0.0, 5.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn ax_fpm_inflation_is_bounded_by_two() {
        let m = FloatMultiplier::ax_fpm();
        let mut rng = rng();
        for _ in 0..5000 {
            let a = rng.gen_range(0.01f32..1.0);
            let b = rng.gen_range(0.01f32..1.0);
            let exact = (a as f64) * (b as f64);
            let approx = m.multiply(a, b) as f64;
            assert!(approx >= exact * (1.0 - 1e-6), "deflated: {a} * {b}");
            assert!(approx <= exact * 2.0 * (1.0 + 1e-6), "over-inflated: {a} * {b}");
        }
    }

    #[test]
    fn ax_fpm_closed_form_is_exact_over_one_point_fb() {
        // DESIGN.md §4: approx = exact * 2 / (1.f_b) up to the truncated
        // low partial product.
        let m = FloatMultiplier::ax_fpm();
        let mut rng = rng();
        for _ in 0..2000 {
            let a = rng.gen_range(0.01f32..2.0);
            let b = rng.gen_range(0.01f32..2.0);
            let fb = 1.0 + (Binary32Parts::from_f32(b).fraction as f64) / (1u64 << 23) as f64;
            let predicted = (a as f64) * (b as f64) * 2.0 / fb;
            let got = m.multiply(a, b) as f64;
            let rel = (got - predicted).abs() / predicted;
            assert!(rel < 1e-6, "a={a} b={b} got={got} predicted={predicted}");
        }
    }

    #[test]
    fn ax_fpm_preserves_sign() {
        let m = FloatMultiplier::ax_fpm();
        let mut rng = rng();
        for _ in 0..1000 {
            let a = rng.gen_range(-2.0f32..2.0);
            let b = rng.gen_range(-2.0f32..2.0);
            if a == 0.0 || b == 0.0 {
                continue;
            }
            let approx = m.multiply(a, b);
            let exact = a * b;
            assert_eq!(
                approx.is_sign_negative(),
                exact.is_sign_negative(),
                "sign flipped for {a} * {b}"
            );
        }
    }

    #[test]
    fn ax_fpm_zero_annihilates() {
        let m = FloatMultiplier::ax_fpm();
        assert_eq!(m.multiply(0.0, 0.73), 0.0);
        assert_eq!(m.multiply(0.73, 0.0), 0.0);
        assert_eq!(m.multiply(-0.0, 0.73), -0.0);
    }

    #[test]
    fn denormals_flush_to_zero() {
        let m = FloatMultiplier::ax_fpm();
        let denormal = f32::from_bits(1); // smallest positive denormal
        assert_eq!(m.multiply(denormal, 1.0), 0.0);
        assert_eq!(m.multiply(1.0, denormal), 0.0);
    }

    #[test]
    fn overflow_saturates_to_infinity_and_underflow_flushes() {
        let exact = FloatMultiplier::exact();
        assert_eq!(exact.multiply(f32::MAX, 2.0), f32::INFINITY);
        assert_eq!(exact.multiply(f32::MAX, -2.0), f32::NEG_INFINITY);
        assert_eq!(exact.multiply(f32::MIN_POSITIVE, f32::MIN_POSITIVE), 0.0);
    }

    #[test]
    fn parts_round_trip() {
        let mut rng = rng();
        for _ in 0..1000 {
            let x = f32::from_bits(rng.gen::<u32>());
            if x.is_nan() {
                continue;
            }
            assert_eq!(Binary32Parts::from_f32(x).to_f32().to_bits(), x.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "mantissa core must be 24 bits")]
    fn rejects_wrong_core_width() {
        let _ = FloatMultiplier::with_core("bad", ArrayMultiplierSpec::exact(16));
    }

    /// The closed-form fast paths must be bit-identical to the gate-level
    /// simulation they shortcut.
    #[test]
    fn fast_path_matches_gate_level() {
        let mut rng = rng();
        for m in [FloatMultiplier::ax_fpm(), FloatMultiplier::exact()] {
            for _ in 0..20_000 {
                let a = f32::from_bits(rng.gen::<u32>() & 0x7FFF_FFFF);
                let b = f32::from_bits(rng.gen::<u32>());
                if a.is_nan() || b.is_nan() {
                    continue;
                }
                let fast = m.multiply(a, b);
                let gate = m.multiply_gate_level(a, b);
                assert_eq!(fast.to_bits(), gate.to_bits(), "{}: a={a:e} b={b:e}", m.name());
            }
        }
    }

    /// The bit-sliced block paths behind the one-shot slice entry points must
    /// be bit-identical to the scalar gate-level datapath for every core
    /// without a closed form — including blocks littered with zeros,
    /// denormals, and Inf/NaN, and slices long enough to cross block seams.
    #[test]
    fn bitsliced_one_shot_paths_match_scalar_gate_level() {
        use crate::array::{CellAssignment, CpaKind, PortMap};
        use crate::AdderKind;

        let ablation = FloatMultiplier::with_core(
            "ablate-swap",
            ArrayMultiplierSpec {
                width: SIGNIFICAND_BITS,
                cells: CellAssignment::Uniform(AdderKind::Ama5),
                port_map: PortMap::SumCarryPp,
                cpa: CpaKind::Ripple { kind: AdderKind::Ama5, swap: true },
            },
        );
        let mut rng = rng();
        for m in [crate::heap::heap_multiplier(), ablation] {
            let n = 197; // crosses three 64-lane blocks with a ragged tail
            let mut a: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            let mut b: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            for (i, v) in [
                (3, f32::NAN),
                (64, f32::INFINITY),
                (65, 0.0),
                (66, -0.0),
                (100, f32::from_bits(1)), // denormal
                (196, f32::NEG_INFINITY),
            ] {
                if i % 2 == 1 {
                    a[i] = v;
                } else {
                    b[i] = v;
                }
            }

            let mut out = vec![0.0f32; n];
            m.multiply_slice(&a, &b, &mut out);
            for i in 0..n {
                let want = m.multiply(a[i], b[i]);
                assert_eq!(out[i].to_bits(), want.to_bits(), "{} mul[{i}]", m.name());
            }

            let got_dot = m.dot_accumulate(&a, &b);
            let mut want_dot = 0.0f32;
            for i in 0..n {
                want_dot = simd::nan_stable_add(want_dot, m.multiply(a[i], b[i]));
            }
            assert_eq!(got_dot.to_bits(), want_dot.to_bits(), "{} dot", m.name());

            for shared in [0.77f32, -1.5, 0.0, f32::INFINITY] {
                let mut acc = vec![0.25f32; n];
                let mut want = acc.clone();
                m.axpy_slice(shared, &b, &mut acc);
                for i in 0..n {
                    want[i] = simd::nan_stable_add(want[i], m.multiply(shared, b[i]));
                }
                for i in 0..n {
                    assert_eq!(
                        acc[i].to_bits(),
                        want[i].to_bits(),
                        "{} axpy[{i}] shared={shared}",
                        m.name()
                    );
                }
            }

            // axpy_fused: k not a multiple of the wide width, columns
            // crossing a block boundary with a ragged tail, special left
            // terms breaking up the wide runs mid-stream, and specials in
            // the right-hand rows — all must stay bit-identical to
            // sequential per-term axpy.
            let (terms, cols) = (21, 79);
            let mut ta: Vec<f32> = (0..terms).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            ta[4] = 0.0;
            ta[5] = f32::NAN;
            ta[13] = f32::from_bits(2); // denormal splits a would-be wide run
            let mut tb: Vec<f32> = (0..terms * cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
            tb[7] = f32::INFINITY;
            tb[cols + 64] = 0.0;
            tb[3 * cols + 11] = f32::NAN;
            tb[terms * cols - 1] = f32::from_bits(1);
            let mut fused = vec![0.125f32; cols];
            m.axpy_fused(&ta, &tb, &mut fused);
            let mut seq = vec![0.125f32; cols];
            for t in 0..terms {
                m.axpy_slice(ta[t], &tb[t * cols..(t + 1) * cols], &mut seq);
            }
            for i in 0..cols {
                assert_eq!(fused[i].to_bits(), seq[i].to_bits(), "{} fused[{i}]", m.name());
            }
        }
    }

    /// HEAP has no fast path; both entry points run the same gates.
    #[test]
    fn heap_has_no_fast_path_divergence() {
        let m = crate::heap::heap_multiplier();
        let mut rng = rng();
        for _ in 0..2_000 {
            let a = rng.gen_range(-2.0f32..2.0);
            let b = rng.gen_range(-2.0f32..2.0);
            assert_eq!(m.multiply(a, b).to_bits(), m.multiply_gate_level(a, b).to_bits());
        }
    }
}
