//! The batched arithmetic backend: slice-level kernels and memoized
//! significand-product caches.
//!
//! The paper's deployment story routes every convolution/dense multiply
//! through the approximate FPM (§4.1). Simulating that one scalar at a time —
//! a virtual call per MAC into a gate-level bit-sliced multiplier — dominates
//! the runtime of every experiment. This module is the slice-level
//! counterpart: [`Multiplier`] gains `multiply_slice` / `dot_accumulate` /
//! `axpy_slice` with scalar fallbacks, and [`Multiplier::batch_kernel`] hands
//! callers a stateful per-worker [`BatchKernel`] that may amortize work
//! across an entire GEMM (operand decomposition done once per slice,
//! gate-level significand products memoized in a [`SigProductCache`]).
//!
//! Contract: **every batched path is bit-identical to the scalar
//! [`Multiplier::multiply`] loop it replaces**, for all inputs including
//! NaN/Inf/denormal/negative zero. The GEMM layers above rely on this (see
//! `da_nn::layers::gemm_with` and its property tests).

use crate::fpm::Binary32Parts;
use crate::multiplier::Multiplier;
use crate::simd::RowClass;

/// One operand of a binary32 multiply with its field decomposition done
/// ahead of time.
///
/// Serving engines (see `da_nn::engine`) decompose every weight once at
/// plan-compile time and replay the cached sign/exponent/significand on every
/// request through [`BatchKernel::axpy_prepared`], instead of re-running
/// `Binary32Parts::from_f32` and the NaN classification per kernel call.
/// The cached fields are pure functions of `value`, so prepared and
/// unprepared paths are bit-identical by construction.
///
/// # Examples
///
/// ```
/// use da_arith::PreparedOperand;
///
/// let op = PreparedOperand::new(1.5);
/// assert_eq!(op.value(), 1.5);
/// assert_eq!(op.parts().exponent, 127);
/// assert!(!op.is_nan());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedOperand {
    value: f32,
    parts: Binary32Parts,
    nan: bool,
}

impl PreparedOperand {
    /// Decompose `value` into its cached fields.
    #[inline]
    pub fn new(value: f32) -> Self {
        PreparedOperand { value, parts: Binary32Parts::from_f32(value), nan: value.is_nan() }
    }

    /// The original `f32` value.
    #[inline]
    pub fn value(&self) -> f32 {
        self.value
    }

    /// The cached IEEE-754 field decomposition.
    #[inline]
    pub fn parts(&self) -> Binary32Parts {
        self.parts
    }

    /// The cached NaN classification.
    #[inline]
    pub fn is_nan(&self) -> bool {
        self.nan
    }
}

/// A row-major matrix of [`PreparedOperand`]s: the pre-decomposed weight
/// representation consumed by [`BatchKernel::axpy_prepared`].
///
/// # Examples
///
/// ```
/// use da_arith::PreparedOperands;
///
/// let w = PreparedOperands::from_matrix(&[1.0, 2.0, 3.0, 4.0], 2, 2);
/// assert_eq!(w.get(1, 0).value(), 3.0);
/// assert_eq!(w.row(0).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PreparedOperands {
    ops: Vec<PreparedOperand>,
    rows: usize,
    cols: usize,
}

impl PreparedOperands {
    /// Decompose a row-major `[rows, cols]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_matrix(data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        PreparedOperands {
            ops: data.iter().map(|&v| PreparedOperand::new(v)).collect(),
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The operand at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &PreparedOperand {
        debug_assert!(row < self.rows && col < self.cols, "prepared operand index out of bounds");
        &self.ops[row * self.cols + col]
    }

    /// One row of operands.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: usize) -> &[PreparedOperand] {
        &self.ops[row * self.cols..(row + 1) * self.cols]
    }
}

/// A stateful, single-threaded slice kernel obtained from
/// [`Multiplier::batch_kernel`].
///
/// One kernel per worker thread: kernels may carry mutable memoization state
/// (see [`SigProductCache`]) and are deliberately `&mut self` so that state
/// needs no synchronization. Results must be bit-identical to the scalar
/// `multiply` loop regardless of kernel reuse, because caches key on exact
/// operand bits.
pub trait BatchKernel {
    /// `acc[i] += multiply(a, b[i])` for every `i` (exact accumulation, as
    /// in the paper: only the multiplier is approximate).
    ///
    /// # Panics
    ///
    /// Panics if `b` and `acc` lengths differ.
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]);

    /// Fused dot product: `Σ_i multiply(a[i], b[i])`, accumulated left to
    /// right in `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` lengths differ.
    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32;

    /// Elementwise products: `out[i] = multiply(a[i], b[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the three lengths differ.
    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]);

    /// [`axpy`](BatchKernel::axpy) against a pre-decomposed shared operand:
    /// `acc[i] += multiply(a.value(), b[i])`, reusing the cached
    /// sign/exponent/significand instead of re-decomposing per call.
    ///
    /// Bit-identical to `axpy(a.value(), b, acc)` for every kernel; the
    /// default simply delegates. FPM kernels override it to feed the cached
    /// [`Binary32Parts`] straight into the datapath.
    ///
    /// # Panics
    ///
    /// Panics if `b` and `acc` lengths differ.
    fn axpy_prepared(&mut self, a: &PreparedOperand, b: &[f32], acc: &mut [f32]) {
        self.axpy(a.value(), b, acc);
    }

    /// [`axpy`](BatchKernel::axpy) with the right-hand row's [`RowClass`]
    /// supplied by the caller, for contexts that classify a row once and
    /// sweep it many times (a serving plan classifies each pre-transposed
    /// dense weight row at compile time; the blocked GEMM classifies each B
    /// tile once per row block).
    ///
    /// Contract: `class` must [cover](RowClass::covers) the class this
    /// kernel's own [`classify_rhs`](BatchKernel::classify_rhs) would
    /// assign to `b` — kernels may trust it without re-scanning (debug
    /// builds assert it). A conservative (higher) class is always valid
    /// and bit-identical, merely slower. Results are bit-identical to
    /// `axpy(a, b, acc)`; the default ignores the class and delegates.
    ///
    /// # Panics
    ///
    /// Panics if `b` and `acc` lengths differ.
    fn axpy_classified(&mut self, a: f32, b: &[f32], class: RowClass, acc: &mut [f32]) {
        let _ = class;
        self.axpy(a, b, acc);
    }

    /// Sweep one shared right-hand row with several scalar operands:
    /// `acc[r·acc_stride + i] += multiply(a[r], b[i])` for every row `r`,
    /// rows ascending — exactly `a.len()` successive
    /// [`axpy`](BatchKernel::axpy) calls, which is what the default does.
    ///
    /// FPM kernels override this to classify `b` once and run every row's
    /// class-matched lane sweep (see `crate::simd`), amortizing the
    /// classification scan the per-call `axpy` would repeat.
    ///
    /// # Panics
    ///
    /// Panics if an output row would exceed `acc`, or if
    /// `acc_stride < b.len()` with more than one row.
    fn axpy_rows(&mut self, a: &[f32], b: &[f32], acc: &mut [f32], acc_stride: usize) {
        assert!(a.len() <= 1 || acc_stride >= b.len(), "axpy_rows rows overlap");
        for (r, &av) in a.iter().enumerate() {
            self.axpy(av, b, &mut acc[r * acc_stride..r * acc_stride + b.len()]);
        }
    }

    /// Fused output-tile GEMM against pre-decomposed weights: for every
    /// output row `r` of `ops` (`[rows, K]`) and patch tile `b`
    /// (`[K, tile]`, row-major),
    /// `acc[r·acc_stride + j] += Σ_k multiply(ops[r,k], b[k·tile + j])`,
    /// accumulated with `k` ascending per element — the GEMM order.
    ///
    /// Output rows live at stride `acc_stride ≥ tile` inside `acc` (a
    /// serving engine accumulates directly into strided conv output planes);
    /// bytes between rows are untouched.
    ///
    /// Bit-identical to row-by-row
    /// [`axpy_prepared`](BatchKernel::axpy_prepared) calls — the default
    /// does exactly that.
    /// Overrides may amortize right-hand-side classification and field
    /// extraction across all `rows` sweeps of the shared tile (see the FPM
    /// kernel's AMA5 fast path).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != ops.cols() · tile`, if an output row would
    /// exceed `acc`, or if `acc_stride < tile` with more than one row.
    fn gemm_tile(
        &mut self,
        ops: &PreparedOperands,
        b: &[f32],
        tile: usize,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        assert_eq!(b.len(), ops.cols() * tile, "gemm_tile b length mismatch");
        assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
        for r in 0..ops.rows() {
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
            for (k, op) in ops.row(r).iter().enumerate() {
                self.axpy_prepared(op, &b[k * tile..(k + 1) * tile], acc_row);
            }
        }
    }

    /// [`gemm_tile`](BatchKernel::gemm_tile) with one caller-supplied class
    /// [covering](RowClass::covers) **every** row of `b`, instead of the
    /// kernel scanning each row itself. Serving engines derive one class
    /// per convolution from the input plane (plus `Zeros` when padding can
    /// inject them), which removes all per-tile classification scans from
    /// the hot path; a conservative cover is bit-identical to precise
    /// classification by the [`RowClass::covers`] contract.
    ///
    /// # Panics
    ///
    /// Panics as [`gemm_tile`](BatchKernel::gemm_tile) does.
    fn gemm_tile_classed(
        &mut self,
        ops: &PreparedOperands,
        b: &[f32],
        tile: usize,
        class: RowClass,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        assert_eq!(b.len(), ops.cols() * tile, "gemm_tile b length mismatch");
        assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
        for r in 0..ops.rows() {
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
            for (k, op) in ops.row(r).iter().enumerate() {
                self.axpy_classified(op.value(), &b[k * tile..(k + 1) * tile], class, acc_row);
            }
        }
    }

    /// Classify one right-hand row the way this kernel's class-matched
    /// sweeps need it. Defaults to the full three-way
    /// [`crate::simd::classify_row`]; kernels whose fast sweeps treat zeros
    /// like any normal value (native exact, Bfloat16) override it with the
    /// cheaper special-only scan, which reports `Normal` for zero-bearing
    /// rows. Callers that classify on a kernel's behalf (the blocked GEMM)
    /// must use this method, not `classify_row`, so the class always means
    /// what the kernel expects.
    fn classify_rhs(&self, b: &[f32]) -> RowClass {
        crate::simd::classify_row(b)
    }

    /// `(hits, misses)` of the kernel's significand cache, if it has one.
    fn cache_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// The default [`BatchKernel`]: stateless delegation to the multiplier's
/// slice methods (which themselves default to scalar loops).
///
/// Generic over the concrete multiplier so that a monomorphized GEMM calling
/// through this kernel statically dispatches the inner loop — for
/// [`crate::ExactMultiplier`] the `axpy` body compiles to the native
/// multiply-add loop.
pub struct FallbackKernel<'a, M: Multiplier + ?Sized> {
    multiplier: &'a M,
}

impl<'a, M: Multiplier + ?Sized> FallbackKernel<'a, M> {
    /// Wrap a multiplier.
    pub fn new(multiplier: &'a M) -> Self {
        FallbackKernel { multiplier }
    }
}

impl<M: Multiplier + ?Sized> BatchKernel for FallbackKernel<'_, M> {
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]) {
        self.multiplier.axpy_slice(a, b, acc);
    }

    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32 {
        self.multiplier.dot_accumulate(a, b)
    }

    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]) {
        self.multiplier.multiply_slice(a, b, out);
    }
}

/// Shared skeleton for classified tile GEMMs over value-type multipliers
/// (native exact, Bfloat16): classify each of the tile's `K` rows **once**,
/// then sweep every output row with the kernel's class-aware axpy. The FPM
/// kernel has its own variant (it consumes pre-decomposed operand fields and
/// a memoizing slow path).
pub(crate) fn gemm_tile_classified(
    ops: &PreparedOperands,
    b: &[f32],
    tile: usize,
    acc: &mut [f32],
    acc_stride: usize,
    row_class: &mut Vec<RowClass>,
    classify: impl Fn(&[f32]) -> RowClass,
    mut axpy: impl FnMut(f32, &[f32], RowClass, &mut [f32]),
) {
    let k_rows = ops.cols();
    assert_eq!(b.len(), k_rows * tile, "gemm_tile b length mismatch");
    assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
    row_class.clear();
    for k in 0..k_rows {
        row_class.push(classify(&b[k * tile..(k + 1) * tile]));
    }
    for r in 0..ops.rows() {
        let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
        for (k, op) in ops.row(r).iter().enumerate() {
            axpy(op.value(), &b[k * tile..(k + 1) * tile], row_class[k], acc_row);
        }
    }
}

/// Default cache size: 2¹⁶ entries ⇒ 1 MiB per worker.
pub const DEFAULT_CACHE_BITS: u32 = 16;

const EMPTY_KEY: u64 = u64::MAX;

/// A direct-mapped memo cache for gate-level significand products.
///
/// Keys are the two 24-bit significands packed into one word; the slot index
/// mixes the pair's bits (multiply-shift) so clustered mantissas spread
/// across the table. Every slot stores the **full** key alongside the
/// product, so a hit is exact by construction — collisions simply evict, and
/// a miss falls back to composing the exact gate-level core. Repeated
/// weight×activation mantissa pairs (ubiquitous in a GEMM, where `im2col`
/// replicates activations and weight rows sweep many columns) then cost one
/// table probe instead of a full array-multiplier simulation.
#[derive(Debug, Clone)]
pub struct SigProductCache {
    slots: Vec<(u64, u64)>,
    shift: u32,
    hits: u64,
    misses: u64,
}

impl Default for SigProductCache {
    fn default() -> Self {
        SigProductCache::new(DEFAULT_CACHE_BITS)
    }
}

impl SigProductCache {
    /// A cache with `2^bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 28 (4 GiB of slots is a config bug).
    pub fn new(bits: u32) -> Self {
        assert!((1..=28).contains(&bits), "cache bits {bits} out of range 1..=28");
        SigProductCache {
            slots: vec![(EMPTY_KEY, 0); 1usize << bits],
            shift: 64 - bits,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci multiply-shift over the packed pair: cheap, and far
        // better distributed than indexing by the raw top bits when weights
        // or activations cluster in a narrow mantissa band.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// The product for significand pair `(sa, sb)`, computing it with `core`
    /// on a miss.
    #[inline]
    pub fn product(&mut self, sa: u64, sb: u64, core: impl FnOnce(u64, u64) -> u64) -> u64 {
        debug_assert!(sa < (1 << 24) && sb < (1 << 24), "significands exceed 24 bits");
        let key = (sa << 24) | sb;
        let slot = self.slot_of(key);
        let (stored_key, stored_val) = self.slots[slot];
        if stored_key == key {
            self.hits += 1;
            return stored_val;
        }
        self.misses += 1;
        let val = core(sa, sb);
        self.slots[slot] = (key, val);
        val
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpm::FloatMultiplier;
    use crate::{ExactMultiplier, Multiplier, MultiplierKind};
    use rand::{Rng, SeedableRng};

    #[test]
    fn cache_is_exact_under_collisions() {
        // A tiny 2-slot cache forces constant eviction; results must still
        // be exactly what the core computes.
        let mut cache = SigProductCache::new(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let sa = rng.gen_range(0u64..1 << 24);
            let sb = rng.gen_range(0u64..1 << 24);
            assert_eq!(cache.product(sa, sb, |x, y| x * y), sa * sb);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 10_000);
    }

    #[test]
    fn cache_hits_on_repeats() {
        let mut cache = SigProductCache::default();
        let core_calls = std::cell::Cell::new(0u32);
        for _ in 0..5 {
            let p = cache.product(0x80_0001, 0xC0_0000, |x, y| {
                core_calls.set(core_calls.get() + 1);
                x * y
            });
            assert_eq!(p, 0x80_0001 * 0xC0_0000);
        }
        assert_eq!(core_calls.get(), 1, "repeat pairs must not re-run the core");
        assert_eq!(cache.stats(), (4, 1));
    }

    #[test]
    fn default_slice_methods_match_scalar_loops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            let a: Vec<f32> = (0..33).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let b: Vec<f32> = (0..33).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let mut out = vec![0.0f32; 33];
            m.multiply_slice(&a, &b, &mut out);
            for i in 0..33 {
                assert_eq!(out[i].to_bits(), m.multiply(a[i], b[i]).to_bits(), "{kind} at {i}");
            }
            let dot = m.dot_accumulate(&a, &b);
            let mut want = 0.0f32;
            for i in 0..33 {
                want += m.multiply(a[i], b[i]);
            }
            assert_eq!(dot.to_bits(), want.to_bits(), "{kind} dot");
            let mut acc = vec![0.5f32; 33];
            let mut acc_want = acc.clone();
            m.axpy_slice(0.7, &b, &mut acc);
            for (i, v) in acc_want.iter_mut().enumerate() {
                *v += m.multiply(0.7, b[i]);
            }
            assert_eq!(acc, acc_want, "{kind} axpy");
        }
    }

    #[test]
    fn fallback_kernel_delegates() {
        let m = ExactMultiplier;
        let mut kernel = FallbackKernel::new(&m);
        let mut acc = [1.0f32, 2.0];
        kernel.axpy(2.0, &[3.0, 4.0], &mut acc);
        assert_eq!(acc, [7.0, 10.0]);
        assert_eq!(kernel.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut out = [0.0f32; 2];
        kernel.mul(&[2.0, 3.0], &[5.0, 7.0], &mut out);
        assert_eq!(out, [10.0, 21.0]);
        assert_eq!(kernel.cache_stats(), None);
    }

    #[test]
    fn memoized_kernel_is_bit_exact_for_gate_level_cores() {
        // HEAP has no closed-form fast path, so its kernel memoizes; a
        // repeated-operand workload must still match scalar multiply exactly.
        let m = crate::heap::heap_multiplier();
        let mut kernel = m.batch_kernel();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vals: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let b: Vec<f32> = (0..256).map(|i| vals[i % 8]).collect();
        for &a in &vals {
            let mut acc = vec![0.0f32; 256];
            let mut want = vec![0.0f32; 256];
            kernel.axpy(a, &b, &mut acc);
            for (w, &x) in want.iter_mut().zip(&b) {
                *w += m.multiply(a, x);
            }
            assert_eq!(acc, want);
        }
        let (hits, misses) = kernel.cache_stats().expect("heap kernel memoizes");
        assert!(hits > misses, "repeated operands must mostly hit: {hits} vs {misses}");
    }

    #[test]
    fn fpm_fast_path_kernels_have_no_cache() {
        for m in [FloatMultiplier::ax_fpm(), FloatMultiplier::exact()] {
            assert_eq!(m.batch_kernel().cache_stats(), None, "{}", m.name());
        }
    }

    #[test]
    fn prepared_operand_caches_the_decomposition() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE, 1e-40] {
            let op = PreparedOperand::new(v);
            assert_eq!(op.value().to_bits(), v.to_bits());
            assert_eq!(op.parts(), Binary32Parts::from_f32(v));
            assert_eq!(op.is_nan(), v.is_nan());
        }
    }

    #[test]
    fn prepared_matrix_indexing_is_row_major() {
        let w = PreparedOperands::from_matrix(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!((w.rows(), w.cols()), (2, 3));
        assert_eq!(w.get(0, 2).value(), 3.0);
        assert_eq!(w.get(1, 1).value(), 5.0);
        assert_eq!(w.row(1).iter().map(|o| o.value()).collect::<Vec<_>>(), [4.0, 5.0, 6.0]);
    }

    /// `gemm_tile` must be bit-identical to row-by-row `axpy_prepared` for
    /// every kernel (the AMA5 override amortizes tile classification and
    /// must not change a single bit), including adversarial operands and a
    /// strided output layout.
    #[test]
    fn gemm_tile_matches_rowwise_axpy_prepared() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let specials = [0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e-40, f32::MAX];
        let (rows, k, tile, stride) = (3usize, 4usize, 9usize, 13usize);
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            for special_rate in [0usize, 4] {
                let gen = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<f32> {
                    (0..n)
                        .map(|_i| {
                            if special_rate != 0 && rng.gen_range(0..special_rate) == 0 {
                                specials[rng.gen_range(0..specials.len())]
                            } else {
                                rng.gen_range(-2.0f32..2.0)
                            }
                        })
                        .collect()
                };
                let w = gen(&mut rng, rows * k);
                let b = gen(&mut rng, k * tile);
                let ops = PreparedOperands::from_matrix(&w, rows, k);
                let mut acc_tile = vec![0.25f32; rows * stride];
                let mut acc_ref = acc_tile.clone();
                m.batch_kernel().gemm_tile(&ops, &b, tile, &mut acc_tile, stride);
                {
                    let mut kern = m.batch_kernel();
                    for r in 0..rows {
                        let acc_row = &mut acc_ref[r * stride..r * stride + tile];
                        for kk in 0..k {
                            kern.axpy_prepared(
                                ops.get(r, kk),
                                &b[kk * tile..(kk + 1) * tile],
                                acc_row,
                            );
                        }
                    }
                }
                for (i, (x, y)) in acc_tile.iter().zip(&acc_ref).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{kind} rate={special_rate} at {i}: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    /// `axpy_prepared` must be bit-identical to `axpy` for every kernel and
    /// every operand class (normal, zero, denormal, NaN, Inf).
    #[test]
    fn prepared_axpy_matches_unprepared_for_all_kinds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let specials =
            [0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e-40, f32::MAX, 0.7];
        let mut b: Vec<f32> = (0..64).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        b.extend_from_slice(&specials);
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            for &a in specials.iter().chain(&[0.37f32, -1.25]) {
                let op = PreparedOperand::new(a);
                let mut acc_prepared = vec![0.5f32; b.len()];
                let mut acc_plain = acc_prepared.clone();
                m.batch_kernel().axpy_prepared(&op, &b, &mut acc_prepared);
                m.batch_kernel().axpy(a, &b, &mut acc_plain);
                for (i, (x, y)) in acc_prepared.iter().zip(&acc_plain).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kind} a={a} at {i}: {x:?} vs {y:?}");
                }
            }
        }
    }
}
