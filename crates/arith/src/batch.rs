//! The batched arithmetic backend: slice-level kernels and memoized
//! significand-product caches.
//!
//! The paper's deployment story routes every convolution/dense multiply
//! through the approximate FPM (§4.1). Simulating that one scalar at a time —
//! a virtual call per MAC into a gate-level bit-sliced multiplier — dominates
//! the runtime of every experiment. This module is the slice-level
//! counterpart: [`Multiplier`] gains `multiply_slice` / `dot_accumulate` /
//! `axpy_slice` with scalar fallbacks, and [`Multiplier::batch_kernel`] hands
//! callers a stateful per-worker [`BatchKernel`] that may amortize work
//! across an entire GEMM (operand decomposition done once per slice,
//! gate-level significand products memoized in a [`SigProductCache`]).
//!
//! Contract: **every batched path is bit-identical to the scalar
//! [`Multiplier::multiply`] loop it replaces**, for all inputs including
//! NaN/Inf/denormal/negative zero. The GEMM layers above rely on this (see
//! `da_nn::layers::gemm_with` and its property tests).

use crate::multiplier::Multiplier;

/// A stateful, single-threaded slice kernel obtained from
/// [`Multiplier::batch_kernel`].
///
/// One kernel per worker thread: kernels may carry mutable memoization state
/// (see [`SigProductCache`]) and are deliberately `&mut self` so that state
/// needs no synchronization. Results must be bit-identical to the scalar
/// `multiply` loop regardless of kernel reuse, because caches key on exact
/// operand bits.
pub trait BatchKernel {
    /// `acc[i] += multiply(a, b[i])` for every `i` (exact accumulation, as
    /// in the paper: only the multiplier is approximate).
    ///
    /// # Panics
    ///
    /// Panics if `b` and `acc` lengths differ.
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]);

    /// Fused dot product: `Σ_i multiply(a[i], b[i])`, accumulated left to
    /// right in `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` lengths differ.
    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32;

    /// Elementwise products: `out[i] = multiply(a[i], b[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the three lengths differ.
    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]);

    /// `(hits, misses)` of the kernel's significand cache, if it has one.
    fn cache_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// The default [`BatchKernel`]: stateless delegation to the multiplier's
/// slice methods (which themselves default to scalar loops).
///
/// Generic over the concrete multiplier so that a monomorphized GEMM calling
/// through this kernel statically dispatches the inner loop — for
/// [`crate::ExactMultiplier`] the `axpy` body compiles to the native
/// multiply-add loop.
pub struct FallbackKernel<'a, M: Multiplier + ?Sized> {
    multiplier: &'a M,
}

impl<'a, M: Multiplier + ?Sized> FallbackKernel<'a, M> {
    /// Wrap a multiplier.
    pub fn new(multiplier: &'a M) -> Self {
        FallbackKernel { multiplier }
    }
}

impl<M: Multiplier + ?Sized> BatchKernel for FallbackKernel<'_, M> {
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]) {
        self.multiplier.axpy_slice(a, b, acc);
    }

    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32 {
        self.multiplier.dot_accumulate(a, b)
    }

    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]) {
        self.multiplier.multiply_slice(a, b, out);
    }
}

/// Default cache size: 2¹⁶ entries ⇒ 1 MiB per worker.
pub const DEFAULT_CACHE_BITS: u32 = 16;

const EMPTY_KEY: u64 = u64::MAX;

/// A direct-mapped memo cache for gate-level significand products.
///
/// Keys are the two 24-bit significands packed into one word; the slot index
/// mixes the pair's bits (multiply-shift) so clustered mantissas spread
/// across the table. Every slot stores the **full** key alongside the
/// product, so a hit is exact by construction — collisions simply evict, and
/// a miss falls back to composing the exact gate-level core. Repeated
/// weight×activation mantissa pairs (ubiquitous in a GEMM, where `im2col`
/// replicates activations and weight rows sweep many columns) then cost one
/// table probe instead of a full array-multiplier simulation.
#[derive(Debug, Clone)]
pub struct SigProductCache {
    slots: Vec<(u64, u64)>,
    shift: u32,
    hits: u64,
    misses: u64,
}

impl Default for SigProductCache {
    fn default() -> Self {
        SigProductCache::new(DEFAULT_CACHE_BITS)
    }
}

impl SigProductCache {
    /// A cache with `2^bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 28 (4 GiB of slots is a config bug).
    pub fn new(bits: u32) -> Self {
        assert!((1..=28).contains(&bits), "cache bits {bits} out of range 1..=28");
        SigProductCache {
            slots: vec![(EMPTY_KEY, 0); 1usize << bits],
            shift: 64 - bits,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci multiply-shift over the packed pair: cheap, and far
        // better distributed than indexing by the raw top bits when weights
        // or activations cluster in a narrow mantissa band.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// The product for significand pair `(sa, sb)`, computing it with `core`
    /// on a miss.
    #[inline]
    pub fn product(&mut self, sa: u64, sb: u64, core: impl FnOnce(u64, u64) -> u64) -> u64 {
        debug_assert!(sa < (1 << 24) && sb < (1 << 24), "significands exceed 24 bits");
        let key = (sa << 24) | sb;
        let slot = self.slot_of(key);
        let (stored_key, stored_val) = self.slots[slot];
        if stored_key == key {
            self.hits += 1;
            return stored_val;
        }
        self.misses += 1;
        let val = core(sa, sb);
        self.slots[slot] = (key, val);
        val
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpm::FloatMultiplier;
    use crate::{ExactMultiplier, Multiplier, MultiplierKind};
    use rand::{Rng, SeedableRng};

    #[test]
    fn cache_is_exact_under_collisions() {
        // A tiny 2-slot cache forces constant eviction; results must still
        // be exactly what the core computes.
        let mut cache = SigProductCache::new(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let sa = rng.gen_range(0u64..1 << 24);
            let sb = rng.gen_range(0u64..1 << 24);
            assert_eq!(cache.product(sa, sb, |x, y| x * y), sa * sb);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 10_000);
    }

    #[test]
    fn cache_hits_on_repeats() {
        let mut cache = SigProductCache::default();
        let core_calls = std::cell::Cell::new(0u32);
        for _ in 0..5 {
            let p = cache.product(0x80_0001, 0xC0_0000, |x, y| {
                core_calls.set(core_calls.get() + 1);
                x * y
            });
            assert_eq!(p, 0x80_0001 * 0xC0_0000);
        }
        assert_eq!(core_calls.get(), 1, "repeat pairs must not re-run the core");
        assert_eq!(cache.stats(), (4, 1));
    }

    #[test]
    fn default_slice_methods_match_scalar_loops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            let a: Vec<f32> = (0..33).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let b: Vec<f32> = (0..33).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let mut out = vec![0.0f32; 33];
            m.multiply_slice(&a, &b, &mut out);
            for i in 0..33 {
                assert_eq!(out[i].to_bits(), m.multiply(a[i], b[i]).to_bits(), "{kind} at {i}");
            }
            let dot = m.dot_accumulate(&a, &b);
            let mut want = 0.0f32;
            for i in 0..33 {
                want += m.multiply(a[i], b[i]);
            }
            assert_eq!(dot.to_bits(), want.to_bits(), "{kind} dot");
            let mut acc = vec![0.5f32; 33];
            let mut acc_want = acc.clone();
            m.axpy_slice(0.7, &b, &mut acc);
            for (i, v) in acc_want.iter_mut().enumerate() {
                *v += m.multiply(0.7, b[i]);
            }
            assert_eq!(acc, acc_want, "{kind} axpy");
        }
    }

    #[test]
    fn fallback_kernel_delegates() {
        let m = ExactMultiplier;
        let mut kernel = FallbackKernel::new(&m);
        let mut acc = [1.0f32, 2.0];
        kernel.axpy(2.0, &[3.0, 4.0], &mut acc);
        assert_eq!(acc, [7.0, 10.0]);
        assert_eq!(kernel.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut out = [0.0f32; 2];
        kernel.mul(&[2.0, 3.0], &[5.0, 7.0], &mut out);
        assert_eq!(out, [10.0, 21.0]);
        assert_eq!(kernel.cache_stats(), None);
    }

    #[test]
    fn memoized_kernel_is_bit_exact_for_gate_level_cores() {
        // HEAP has no closed-form fast path, so its kernel memoizes; a
        // repeated-operand workload must still match scalar multiply exactly.
        let m = crate::heap::heap_multiplier();
        let mut kernel = m.batch_kernel();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vals: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let b: Vec<f32> = (0..256).map(|i| vals[i % 8]).collect();
        for &a in &vals {
            let mut acc = vec![0.0f32; 256];
            let mut want = vec![0.0f32; 256];
            kernel.axpy(a, &b, &mut acc);
            for (w, &x) in want.iter_mut().zip(&b) {
                *w += m.multiply(a, x);
            }
            assert_eq!(acc, want);
        }
        let (hits, misses) = kernel.cache_stats().expect("heap kernel memoizes");
        assert!(hits > misses, "repeated operands must mostly hit: {hits} vs {misses}");
    }

    #[test]
    fn fpm_fast_path_kernels_have_no_cache() {
        for m in [FloatMultiplier::ax_fpm(), FloatMultiplier::exact()] {
            assert_eq!(m.batch_kernel().cache_stats(), None, "{}", m.name());
        }
    }
}
