//! Lane-parallel kernels for the closed-form FPM hot paths.
//!
//! The three multiplier cores with proven closed forms — the canonical AMA5
//! array (`prod = s_a << 24`), the exact array (`prod = s_a · s_b`), and the
//! Bfloat16 truncating multiplier — reduce each product to a handful of
//! integer bit-field operations. This module executes those closed forms over
//! `LANES`-wide blocks as **whole-block bit-field pipelines**: batch
//! decompose, lane-wise sign/exponent arithmetic, and a branchless
//! clamp/flush-to-zero select, written so the stable autovectorizer lowers
//! each block to SIMD.
//!
//! # Architecture
//!
//! * **One scalar lane function per core and row class** (`ama5_lane`,
//!   `exact_lane`, …) is the single source of truth: the block loops, the
//!   scalar tails, and the hand-written AVX2 kernels all compute exactly the
//!   expression the lane function defines, so the paths cannot diverge.
//! * **Row classification drives dispatch.** A slice is scanned once into a
//!   [`RowClass`]: `Normal` rows run the pure closed-form pipeline, `Zeros`
//!   rows run the same pipeline with a flush-to-zero exponent select (a
//!   normal × zero/denormal product is exactly `±0.0`, which the shared
//!   clamp produces on a non-positive exponent), and `Special` rows (any
//!   Inf/NaN) stay on the caller's per-element slow path so IEEE
//!   special-value semantics are decided by the one shared implementation
//!   (`FloatMultiplier`'s datapath), never re-derived in lane code.
//! * **`LANES` = 8**: one AVX2 register of `f32`/`u32` lanes, and a block
//!   width the autovectorizer reliably unrolls on 128-bit targets too.
//! * **Runtime dispatch** (`simd-intrinsics` feature, x86-64 only): each
//!   public kernel probes AVX2 once via `is_x86_feature_detected!` and then
//!   jumps to a `core::arch::x86_64` implementation; non-AVX2 hosts and all
//!   other builds take the autovectorized block loops. Tails shorter than a
//!   block always run the scalar lane function.
//!
//! Every kernel is **bit-identical** to the scalar datapath it shortcuts
//! (`FloatMultiplier::multiply` / `BfloatMultiplier::multiply`): enforced by
//! unit tests here, the property suites in `crates/arith/tests` and
//! `crates/nn/tests`, and the checked-in golden vectors.

use crate::fpm::Binary32Parts;

/// Lanes per block: one AVX2 register of `f32`/`u32`.
pub const LANES: usize = 8;

/// Classification of one right-hand-side row for the closed-form kernels.
///
/// Produced by [`classify_row`]; consumed by the class-matched sweeps of the
/// FPM batch kernel (and by callers that amortize one classification across
/// several sweeps of a shared row, e.g. a GEMM sweeping one B tile with many
/// A operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RowClass {
    /// Every element is a normal number: the branchless closed-form pipeline.
    Normal,
    /// Zeros/denormals present but no Inf/NaN: the closed-form pipeline with
    /// a flush-to-zero exponent select.
    Zeros,
    /// Inf/NaN present: per-element classification via the shared slow path.
    Special,
}

impl RowClass {
    /// `true` if a row of class `actual` may be swept with this class's
    /// loop. Classes are ordered `Normal < Zeros < Special` and every class
    /// covers the ones below it: the zeros sweep runs a flush select that
    /// simply never fires on an all-normal row, and the special sweep
    /// re-classifies per element — so sweeping with a *higher* class than
    /// necessary is bit-identical, merely slower. Callers may therefore pass
    /// conservative classes (e.g. one plane-level class for every patch row
    /// of a convolution).
    #[inline]
    pub fn covers(self, actual: RowClass) -> bool {
        self >= actual
    }
}

/// Scan a row once and classify it for the closed-form kernels.
///
/// # Examples
///
/// ```
/// use da_arith::simd::{classify_row, RowClass};
///
/// assert_eq!(classify_row(&[1.0, -2.5]), RowClass::Normal);
/// assert_eq!(classify_row(&[1.0, 0.0]), RowClass::Zeros);
/// assert_eq!(classify_row(&[1.0, f32::NAN]), RowClass::Special);
/// assert_eq!(classify_row(&[]), RowClass::Normal);
/// ```
#[inline]
pub fn classify_row(b: &[f32]) -> RowClass {
    // Branchless flag accumulation: a single pass the autovectorizer lowers
    // to SIMD compares + ORs.
    let mut zeros = 0u32;
    let mut special = 0u32;
    for &y in b {
        let e = y.to_bits() & EXP_FIELD;
        zeros |= u32::from(e == 0);
        special |= u32::from(e == EXP_FIELD);
    }
    if special != 0 {
        RowClass::Special
    } else if zeros != 0 {
        RowClass::Zeros
    } else {
        RowClass::Normal
    }
}

/// `true` if any element of the row is Inf/NaN: the single-flag scan behind
/// the kernels whose fast sweeps only care about specials (native exact,
/// Bfloat16 — zeros need no special handling there). Roughly half the cost
/// of the three-way [`classify_row`].
#[inline]
pub fn row_has_special(b: &[f32]) -> bool {
    let mut special = 0u32;
    for &y in b {
        special |= u32::from(y.to_bits() & EXP_FIELD == EXP_FIELD);
    }
    special != 0
}

/// `true` if any element of `a` or `b` is Inf/NaN (pairwise-kernel guard).
#[inline]
pub fn pair_has_special(a: &[f32], b: &[f32]) -> bool {
    let mut special = 0u32;
    for &x in a {
        special |= u32::from(x.to_bits() & EXP_FIELD == EXP_FIELD);
    }
    for &y in b {
        special |= u32::from(y.to_bits() & EXP_FIELD == EXP_FIELD);
    }
    special != 0
}

/// The biased-exponent field mask of a packed binary32.
const EXP_FIELD: u32 = 0x7F80_0000;
/// The fraction field mask.
const FRAC_MASK: u32 = 0x7F_FFFF;
/// The sign bit.
const SIGN_BIT: u32 = 0x8000_0000;
/// Packed positive infinity (the overflow saturation value, sans sign).
const INF_BITS: u32 = 0x7F80_0000;

// ---------------------------------------------------------------------------
// Scalar lane functions: the single source of truth for every block kernel,
// scalar tail, and AVX2 body below.
// ---------------------------------------------------------------------------

/// Clamp-specialization modes for [`pack_lane_m`]: which of the output
/// stage's two clamps can actually fire given what the caller knows about
/// the exponent range. The shared operand's exponent bounds the product
/// exponent (see the dispatch in the axpy kernels), so most sweeps need at
/// most one packed compare + select instead of two.
const CLAMP_LO: u8 = 0b01;
const CLAMP_HI: u8 = 0b10;
const CLAMP_BOTH: u8 = 0b11;
/// No clamp reachable (AMA5 with `e_a = 126`: `exp = e_b ∈ [1, 254]`).
const CLAMP_NONE: u8 = 0b00;

/// Branch-free re-expression of the datapath's output stage
/// (`fpm::pack_clamped`): overflow (`exp >= 0xFF`) saturates to signed
/// infinity, underflow (`exp <= 0`) flushes to signed zero. Select-shaped
/// (every arm a plain value) so the autovectorizer lowers it to packed
/// compares + selects; bit-identical to the branching form (unit-tested
/// below). `MODE` statically drops clamps the caller has proven
/// unreachable — the caller must uphold that proof, or results diverge
/// from [`pack_lane`].
#[inline(always)]
fn pack_lane_m<const MODE: u8>(sign_bit: u32, exp: i32, frac: u32) -> u32 {
    let body = sign_bit | ((exp as u32) << 23) | frac;
    let r = if MODE & CLAMP_LO != 0 && exp <= 0 { sign_bit } else { body };
    if MODE & CLAMP_HI != 0 && exp >= 0xFF {
        sign_bit | INF_BITS
    } else {
        r
    }
}

/// [`pack_lane_m`] with both clamps armed: the unconditional form, used by
/// scalar tails, slow paths, and as the reference the specializations are
/// tested against.
#[inline(always)]
fn pack_lane(sign_bit: u32, exp: i32, frac: u32) -> u32 {
    pack_lane_m::<CLAMP_BOTH>(sign_bit, exp, frac)
}

/// One canonical-AMA5 product of a fixed normal `a` (fields pre-extracted):
/// `1.f_a · 2^(e_a + e_b - 126)` (DESIGN.md §4 — the `s_a << 24`
/// significand product always normalizes). `MODE` arms only the reachable
/// clamps; `ZSEL` adds the flush-to-zero select for zero/denormal `b`
/// (forcing a non-positive exponent makes the clamp produce exactly the
/// `±0.0` the scalar slow path packs).
#[inline(always)]
fn ama5_lane_m<const MODE: u8, const ZSEL: bool>(
    sign_a: u32,
    fa: u32,
    ea_m126: i32,
    bbits: u32,
) -> u32 {
    let bexp = ((bbits >> 23) & 0xFF) as i32;
    let sign = (sign_a ^ bbits) & SIGN_BIT;
    let exp = if ZSEL && bexp == 0 { 0 } else { ea_m126 + bexp };
    pack_lane_m::<MODE>(sign, exp, fa)
}

/// [`ama5_lane_m`] with every clamp armed and no zero select: the
/// unconditional normal-row form (AVX2 scalar tails; also the reference the
/// clamp specializations are tested against).
#[cfg_attr(not(all(feature = "simd-intrinsics", target_arch = "x86_64")), allow(dead_code))]
#[inline(always)]
pub(crate) fn ama5_lane(sign_a: u32, fa: u32, ea_m126: i32, bbits: u32) -> u32 {
    ama5_lane_m::<CLAMP_BOTH, false>(sign_a, fa, ea_m126, bbits)
}

/// [`ama5_lane`] with the flush-to-zero select (zero-bearing rows).
#[inline(always)]
pub(crate) fn ama5_lane_zeros(sign_a: u32, fa: u32, ea_m126: i32, bbits: u32) -> u32 {
    ama5_lane_m::<CLAMP_BOTH, true>(sign_a, fa, ea_m126, bbits)
}

/// One exact-core product of a fixed normal `a` (significand pre-widened):
/// the 48-bit product `s_a · s_b`, with the normalization bit (bit 47) as a
/// select — the same two cases `FloatMultiplier::finish` branches on,
/// expressed branch-free with constant shifts (per-lane variable shifts do
/// not vectorize on baseline x86-64). `MODE`/`ZSEL` as in [`ama5_lane_m`].
#[inline(always)]
fn exact_lane_m<const MODE: u8, const ZSEL: bool>(
    sa: u64,
    sign_a: u32,
    ea_m127: i32,
    bbits: u32,
) -> u32 {
    let sb = ((1u32 << 23) | (bbits & FRAC_MASK)) as u64;
    let prod = sa * sb;
    let norm = (prod >> 47) != 0;
    let sign = (sign_a ^ bbits) & SIGN_BIT;
    let bexp = ((bbits >> 23) & 0xFF) as i32;
    let exp = if ZSEL && bexp == 0 { 0 } else { ea_m127 + bexp + i32::from(norm) };
    let f_lo = ((prod >> 23) & FRAC_MASK as u64) as u32;
    let f_hi = ((prod >> 24) & FRAC_MASK as u64) as u32;
    let frac = if norm { f_hi } else { f_lo };
    pack_lane_m::<MODE>(sign, exp, frac)
}

/// [`exact_lane_m`] with every clamp armed and no zero select (AVX2 scalar
/// tails; also the reference the clamp specializations are tested against).
#[cfg_attr(not(all(feature = "simd-intrinsics", target_arch = "x86_64")), allow(dead_code))]
#[inline(always)]
pub(crate) fn exact_lane(sa: u64, sign_a: u32, ea_m127: i32, bbits: u32) -> u32 {
    exact_lane_m::<CLAMP_BOTH, false>(sa, sign_a, ea_m127, bbits)
}

/// [`exact_lane`] with the flush-to-zero select (zero-bearing rows).
#[inline(always)]
pub(crate) fn exact_lane_zeros(sa: u64, sign_a: u32, ea_m127: i32, bbits: u32) -> u32 {
    exact_lane_m::<CLAMP_BOTH, true>(sa, sign_a, ea_m127, bbits)
}

/// One elementwise canonical-AMA5 product of two finite operands (either may
/// be zero/denormal; neither Inf/NaN): the fraction comes from `a`, the
/// normalization always fires, and a zero/denormal on either side flushes.
#[inline(always)]
pub(crate) fn ama5_pair_lane(abits: u32, bbits: u32) -> u32 {
    let aexp = ((abits >> 23) & 0xFF) as i32;
    let bexp = ((bbits >> 23) & 0xFF) as i32;
    let sign = (abits ^ bbits) & SIGN_BIT;
    let exp = if aexp == 0 || bexp == 0 { 0 } else { aexp + bexp - 126 };
    pack_lane(sign, exp, abits & FRAC_MASK)
}

/// One elementwise exact-core product of two finite operands (either may be
/// zero/denormal; neither Inf/NaN).
#[inline(always)]
pub(crate) fn exact_pair_lane(abits: u32, bbits: u32) -> u32 {
    let sa = ((1u32 << 23) | (abits & FRAC_MASK)) as u64;
    let sb = ((1u32 << 23) | (bbits & FRAC_MASK)) as u64;
    let prod = sa * sb;
    let norm = (prod >> 47) != 0;
    let aexp = ((abits >> 23) & 0xFF) as i32;
    let bexp = ((bbits >> 23) & 0xFF) as i32;
    let sign = (abits ^ bbits) & SIGN_BIT;
    let exp = if aexp == 0 || bexp == 0 { 0 } else { aexp + bexp - 127 + i32::from(norm) };
    let f_lo = ((prod >> 23) & FRAC_MASK as u64) as u32;
    let f_hi = ((prod >> 24) & FRAC_MASK as u64) as u32;
    let frac = if norm { f_hi } else { f_lo };
    pack_lane(sign, exp, frac)
}

/// Truncate to bfloat16 precision (bit mask; shared with `crate::bfloat`).
#[inline(always)]
fn bf16_lane(x: f32) -> f32 {
    f32::from_bits(x.to_bits() & 0xFFFF_0000)
}

/// Operand-order-stable accumulate: `acc + x` with both-NaN payload
/// propagation pinned to **the incoming term `x`**.
///
/// IEEE-754 addition is bitwise commutative except for one case — **both**
/// operands NaN, where x86 hardware returns the *first* `addss` operand's
/// payload — and neither LLVM IR's `fadd` nor Rust's `+` specifies the
/// operand order the backend must emit. Two compilations of the *same*
/// accumulate loop can then disagree: observed under rustc 1.95, where the
/// autovectorizer's `addps` keeps the accumulator's NaN while the scalar
/// loop's `addss xmm_product, [acc]` (the natural lowering when the fresh
/// product is hot in a register) keeps the product's. This helper pins the
/// choice in source — the incoming product's payload wins, matching the
/// scalar reference loops' observed lowering in every profile — so the
/// batched kernels cannot drift from the references however either side is
/// compiled. (A one-NaN or no-NaN add is bitwise order-independent, and the
/// short-circuit never sees signaling NaNs: nothing in the datapath emits
/// them.)
#[inline(always)]
pub fn nan_stable_add(acc: f32, x: f32) -> f32 {
    // Written select-shaped (sum computed unconditionally) so the compiler
    // lowers it to compare + blend and the loops around it still vectorize.
    let sum = acc + x;
    if x.is_nan() {
        x
    } else {
        sum
    }
}

// ---------------------------------------------------------------------------
// Block kernels: LANES-wide loops over fixed-size arrays (autovectorized),
// with runtime dispatch to the AVX2 bodies when the feature is enabled.
// ---------------------------------------------------------------------------

/// Expand a shared normal operand into the fields the AMA5 lanes consume.
#[inline(always)]
pub(crate) fn ama5_fields(pa: Binary32Parts) -> (u32, u32, i32) {
    (pa.sign << 31, pa.fraction, pa.exponent as i32 - 126)
}

/// Expand a shared normal operand into the fields the exact lanes consume.
#[inline(always)]
pub(crate) fn exact_fields(pa: Binary32Parts) -> (u64, u32, i32) {
    (pa.significand() as u64, pa.sign << 31, pa.exponent as i32 - 127)
}

/// `acc[i] += ama5(a, b[i])` for an all-normal row `b` and normal `a`.
///
/// # Panics
///
/// Panics if `b` and `acc` lengths differ.
pub fn ama5_axpy_normal(pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
    assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx2::available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { avx2::ama5_axpy(pa, b, acc, false) };
        return;
    }
    let (sign_a, fa, ea) = ama5_fields(pa);
    // With `a` and the row both normal, `exp = (e_a - 126) + e_b` with
    // `e_b ∈ [1, 254]`: for `e_a ≤ 125` overflow is unreachable
    // (`exp ≤ 253`), for `e_a ≥ 127` underflow is unreachable (`exp ≥ 2`),
    // and for `e_a = 126` neither clamp can fire (`exp ∈ [1, 254]`) — so
    // each sweep arms only the clamp its operand can actually hit.
    match pa.exponent {
        126 => lane_axpy(b, acc, |bb| ama5_lane_m::<CLAMP_NONE, false>(sign_a, fa, ea, bb)),
        0..=125 => lane_axpy(b, acc, |bb| ama5_lane_m::<CLAMP_LO, false>(sign_a, fa, ea, bb)),
        _ => lane_axpy(b, acc, |bb| ama5_lane_m::<CLAMP_HI, false>(sign_a, fa, ea, bb)),
    }
}

/// `acc[i] += ama5(a, b[i])` for a zero-bearing (no Inf/NaN) row `b` and
/// normal `a` — the one shared flush-to-zero sweep (see [`RowClass::Zeros`]).
///
/// # Panics
///
/// Panics if `b` and `acc` lengths differ.
pub fn ama5_axpy_zeros(pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
    assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx2::available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { avx2::ama5_axpy(pa, b, acc, true) };
        return;
    }
    let (sign_a, fa, ea) = ama5_fields(pa);
    if pa.exponent <= 126 {
        // A zero/denormal element has `e_b = 0`, so `exp = e_a - 126 ≤ 0`
        // already lands in the underflow clamp — the plain underflow-armed
        // sweep flushes it to the same signed zero, no explicit select
        // needed (and overflow stays unreachable, `exp ≤ 254`).
        lane_axpy(b, acc, |bb| ama5_lane_m::<CLAMP_LO, false>(sign_a, fa, ea, bb));
    } else {
        // `e_a ≥ 127`: a zero element's `exp = e_a - 126 ≥ 1` would pack a
        // finite value, so the explicit flush select is required (and it
        // feeds the underflow clamp, so both clamps stay armed).
        lane_axpy(b, acc, |bb| ama5_lane_m::<CLAMP_BOTH, true>(sign_a, fa, ea, bb));
    }
}

/// `acc[i] += exact_fpm(a, b[i])` for an all-normal row `b` and normal `a`.
///
/// # Panics
///
/// Panics if `b` and `acc` lengths differ.
pub fn exact_axpy_normal(pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
    assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx2::available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { avx2::exact_axpy(pa, b, acc, false) };
        return;
    }
    let (sa, sign_a, ea) = exact_fields(pa);
    // `exp = (e_a - 127) + e_b + h` with `e_b ∈ [1, 254]`, `h ∈ {0, 1}`:
    // overflow needs `e_a ≥ 127`, underflow needs `e_a ≤ 126` — each sweep
    // arms exactly one clamp.
    if pa.exponent <= 126 {
        lane_axpy(b, acc, |bb| exact_lane_m::<CLAMP_LO, false>(sa, sign_a, ea, bb));
    } else {
        lane_axpy(b, acc, |bb| exact_lane_m::<CLAMP_HI, false>(sa, sign_a, ea, bb));
    }
}

/// `acc[i] += exact_fpm(a, b[i])` for a zero-bearing (no Inf/NaN) row `b`
/// and normal `a`.
///
/// # Panics
///
/// Panics if `b` and `acc` lengths differ.
pub fn exact_axpy_zeros(pa: Binary32Parts, b: &[f32], acc: &mut [f32]) {
    assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx2::available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { avx2::exact_axpy(pa, b, acc, true) };
        return;
    }
    let (sa, sign_a, ea) = exact_fields(pa);
    if pa.exponent <= 126 {
        // A zero/denormal element has `e_b = 0`, so
        // `exp = e_a - 127 + h ≤ 0` for either normalization bit — the
        // underflow clamp already flushes it to the same signed zero (the
        // junk fraction of the garbage product is discarded by that arm).
        lane_axpy(b, acc, |bb| exact_lane_m::<CLAMP_LO, false>(sa, sign_a, ea, bb));
    } else {
        lane_axpy(b, acc, |bb| exact_lane_m::<CLAMP_BOTH, true>(sa, sign_a, ea, bb));
    }
}

/// `out[i] = ama5(a[i], b[i])` for rows with no Inf/NaN on either side
/// (zeros/denormals allowed — guard with [`pair_has_special`]).
///
/// # Panics
///
/// Panics if the three lengths differ.
pub fn ama5_mul_pair(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
    assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
    lane_pair(a, b, out, ama5_pair_lane);
}

/// `out[i] = exact_fpm(a[i], b[i])` for rows with no Inf/NaN on either side
/// (zeros/denormals allowed — guard with [`pair_has_special`]).
///
/// # Panics
///
/// Panics if the three lengths differ.
pub fn exact_mul_pair(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
    assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
    lane_pair(a, b, out, exact_pair_lane);
}

/// `acc[i] += bf16(ta · bf16(b[i]))` with the shared operand pre-truncated
/// (bit-identical to truncating it per element).
///
/// `clean` asserts the caller classified the row: `ta` finite and `b` free
/// of Inf/NaN (zeros are fine — a bfloat product of finite operands is never
/// NaN), enabling the plain accumulate loop. Without it, products can be NaN
/// and every accumulate is payload-order pinned by [`nan_stable_add`].
///
/// # Panics
///
/// Panics if `b` and `acc` lengths differ.
pub fn bf16_axpy(ta: f32, b: &[f32], acc: &mut [f32], clean: bool) {
    assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx2::available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { avx2::bf16_axpy(ta, b, acc, clean) };
        return;
    }
    if clean {
        for (o, &y) in acc.iter_mut().zip(b) {
            *o += bf16_lane(ta * bf16_lane(y));
        }
    } else {
        for (o, &y) in acc.iter_mut().zip(b) {
            *o = nan_stable_add(*o, bf16_lane(ta * bf16_lane(y)));
        }
    }
}

/// `true` if a shared operand and a classified row rule out NaN products:
/// the row carries no Inf/NaN and the operand is finite. The guard behind
/// every `clean` fast accumulate (a NaN-free product stream makes the plain
/// `+=` loop bitwise order-independent, so no payload pinning is needed).
#[inline(always)]
pub fn clean_axpy(a: f32, class: RowClass) -> bool {
    class != RowClass::Special && a.to_bits() & EXP_FIELD != EXP_FIELD
}

/// `acc[i] += a · b[i]` on native IEEE multiplication (the `exact` kind).
///
/// `clean` as in [`bf16_axpy`]: with it the loop is the native fused form
/// the compiler vectorizes freely; without it accumulates are pinned by
/// [`nan_stable_add`].
///
/// # Panics
///
/// Panics if `b` and `acc` lengths differ.
pub fn native_axpy(a: f32, b: &[f32], acc: &mut [f32], clean: bool) {
    assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
    if clean {
        for (o, &y) in acc.iter_mut().zip(b) {
            *o += a * y;
        }
    } else {
        for (o, &y) in acc.iter_mut().zip(b) {
            *o = nan_stable_add(*o, a * y);
        }
    }
}

/// `out[i] = bf16(bf16(a[i]) · bf16(b[i]))` (the Bfloat16 multiplier's
/// elementwise product; special values flow through the native ops).
///
/// # Panics
///
/// Panics if the three lengths differ.
pub fn bf16_mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
    assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx2::available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { avx2::bf16_mul(a, b, out) };
        return;
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = bf16_lane(bf16_lane(x) * bf16_lane(y));
    }
}

/// Shared loop driver for the axpy kernels: a straight-line zip over the row
/// with the (select-shaped, call-free) lane function inlined — the form the
/// autovectorizer reliably lowers to `LANES`-wide packed blocks plus its own
/// scalar tail. (An explicit `[u32; LANES]` chunked formulation was measured
/// ~60% slower than this shape under rustc 1.95: the chunk bookkeeping
/// outweighed the bounds-check elimination.)
#[inline(always)]
fn lane_axpy(b: &[f32], acc: &mut [f32], lane: impl Fn(u32) -> u32) {
    for (o, &y) in acc.iter_mut().zip(b) {
        *o += f32::from_bits(lane(y.to_bits()));
    }
}

/// Shared loop driver for the pairwise kernels (see [`lane_axpy`] on the
/// loop shape).
#[inline(always)]
fn lane_pair(a: &[f32], b: &[f32], out: &mut [f32], lane: impl Fn(u32, u32) -> u32) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f32::from_bits(lane(x.to_bits(), y.to_bits()));
    }
}

/// Whether the hand-written AVX2 kernels are compiled in **and** selected by
/// the runtime probe on this host (always `false` without the
/// `simd-intrinsics` feature). Exposed for diagnostics and tests.
pub fn intrinsics_active() -> bool {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        avx2::available()
    }
    #[cfg(not(all(feature = "simd-intrinsics", target_arch = "x86_64")))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// AVX2 bodies (simd-intrinsics feature, x86-64): each mirrors the lane
// function op for op — integer field arithmetic and compare/select only, so
// results are bit-identical to the autovectorized blocks by construction
// (and asserted by the `avx2_matches_autovectorized_blocks` test).
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// One-time AVX2 probe (`is_x86_feature_detected!` behind a cached flag).
    pub(super) fn available() -> bool {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// [`pack_lane`] over 8 lanes: `sign`/`exp`/`frac` packed with the
    /// overflow/underflow selects.
    #[inline(always)]
    unsafe fn pack_lanes(sign: __m256i, exp: __m256i, frac: __m256i) -> __m256i {
        let body = _mm256_or_si256(sign, _mm256_or_si256(_mm256_slli_epi32::<23>(exp), frac));
        let hi = _mm256_cmpgt_epi32(exp, _mm256_set1_epi32(0xFE));
        let lo = _mm256_cmpgt_epi32(_mm256_set1_epi32(1), exp);
        let inf = _mm256_or_si256(sign, _mm256_set1_epi32(INF_BITS as i32));
        // hi and lo are mutually exclusive, so blend order is irrelevant.
        let r = _mm256_blendv_epi8(body, sign, lo);
        _mm256_blendv_epi8(r, inf, hi)
    }

    /// AMA5 axpy over full blocks; `zeros` selects the flush-to-zero
    /// exponent (the [`ama5_lane_zeros`] variant). Scalar-lane tail.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ama5_axpy(pa: Binary32Parts, b: &[f32], acc: &mut [f32], zeros: bool) {
        let (sign_a, fa, ea) = ama5_fields(pa);
        let vsign_a = _mm256_set1_epi32(sign_a as i32);
        let vfa = _mm256_set1_epi32(fa as i32);
        let vea = _mm256_set1_epi32(ea);
        let vsignbit = _mm256_set1_epi32(SIGN_BIT as i32);
        let vexpmask = _mm256_set1_epi32(0xFF);
        let n = b.len() / LANES * LANES;
        let mut i = 0;
        while i < n {
            let bb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let sign = _mm256_and_si256(_mm256_xor_si256(vsign_a, bb), vsignbit);
            let bexp = _mm256_and_si256(_mm256_srli_epi32::<23>(bb), vexpmask);
            let mut exp = _mm256_add_epi32(vea, bexp);
            if zeros {
                // Zero/denormal b (bexp == 0) selects exponent 0.
                let bz = _mm256_cmpeq_epi32(bexp, _mm256_setzero_si256());
                exp = _mm256_andnot_si256(bz, exp);
            }
            let r = pack_lanes(sign, exp, vfa);
            let o = _mm256_loadu_ps(acc.as_ptr().add(i));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(o, _mm256_castsi256_ps(r)));
            i += LANES;
        }
        for j in n..b.len() {
            let bbits = b[j].to_bits();
            let r = if zeros {
                ama5_lane_zeros(sign_a, fa, ea, bbits)
            } else {
                ama5_lane(sign_a, fa, ea, bbits)
            };
            acc[j] += f32::from_bits(r);
        }
    }

    /// The exact-core 48-bit significand product over 8 lanes: widen the
    /// even/odd 32-bit lanes through `_mm256_mul_epu32`, extract the
    /// normalization bit and truncated fraction per 64-bit lane, and
    /// recombine into 32-bit lanes. Returns `(h, frac)`.
    #[inline(always)]
    unsafe fn exact_prod_lanes(sb32: __m256i, vsa: __m256i) -> (__m256i, __m256i) {
        let pe = _mm256_mul_epu32(sb32, vsa);
        let po = _mm256_mul_epu32(_mm256_srli_epi64::<32>(sb32), vsa);
        let one64 = _mm256_set1_epi64x(1);
        let he = _mm256_and_si256(_mm256_srli_epi64::<47>(pe), one64);
        let ho = _mm256_and_si256(_mm256_srli_epi64::<47>(po), one64);
        let sh23 = _mm256_set1_epi64x(23);
        let fmask = _mm256_set1_epi64x(FRAC_MASK as i64);
        let fe = _mm256_and_si256(_mm256_srlv_epi64(pe, _mm256_add_epi64(sh23, he)), fmask);
        let fo = _mm256_and_si256(_mm256_srlv_epi64(po, _mm256_add_epi64(sh23, ho)), fmask);
        let h = _mm256_or_si256(he, _mm256_slli_epi64::<32>(ho));
        let frac = _mm256_or_si256(fe, _mm256_slli_epi64::<32>(fo));
        (h, frac)
    }

    /// Exact-core axpy over full blocks; `zeros` selects the flush-to-zero
    /// exponent (the [`exact_lane_zeros`] variant). Scalar-lane tail.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn exact_axpy(pa: Binary32Parts, b: &[f32], acc: &mut [f32], zeros: bool) {
        let (sa, sign_a, ea) = exact_fields(pa);
        let vsa = _mm256_set1_epi64x(sa as i64);
        let vsign_a = _mm256_set1_epi32(sign_a as i32);
        let vea = _mm256_set1_epi32(ea);
        let vsignbit = _mm256_set1_epi32(SIGN_BIT as i32);
        let vexpmask = _mm256_set1_epi32(0xFF);
        let vfrac = _mm256_set1_epi32(FRAC_MASK as i32);
        let vimplicit = _mm256_set1_epi32(1 << 23);
        let n = b.len() / LANES * LANES;
        let mut i = 0;
        while i < n {
            let bb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let sb32 = _mm256_or_si256(_mm256_and_si256(bb, vfrac), vimplicit);
            let (h, frac) = exact_prod_lanes(sb32, vsa);
            let sign = _mm256_and_si256(_mm256_xor_si256(vsign_a, bb), vsignbit);
            let bexp = _mm256_and_si256(_mm256_srli_epi32::<23>(bb), vexpmask);
            let mut exp = _mm256_add_epi32(_mm256_add_epi32(vea, bexp), h);
            if zeros {
                let bz = _mm256_cmpeq_epi32(bexp, _mm256_setzero_si256());
                exp = _mm256_andnot_si256(bz, exp);
            }
            let r = pack_lanes(sign, exp, frac);
            let o = _mm256_loadu_ps(acc.as_ptr().add(i));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(o, _mm256_castsi256_ps(r)));
            i += LANES;
        }
        for j in n..b.len() {
            let bbits = b[j].to_bits();
            let r = if zeros {
                exact_lane_zeros(sa, sign_a, ea, bbits)
            } else {
                exact_lane(sa, sign_a, ea, bbits)
            };
            acc[j] += f32::from_bits(r);
        }
    }

    /// Bfloat16 axpy: truncate, multiply, truncate, accumulate — the same
    /// IEEE ops per lane as the scalar loop. Without `clean`, a NaN
    /// product's payload wins over the accumulator's, lane for lane as
    /// [`nan_stable_add`] (`addps` alone would keep the accumulator's).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bf16_axpy(ta: f32, b: &[f32], acc: &mut [f32], clean: bool) {
        let vta = _mm256_set1_ps(ta);
        let vmask = _mm256_castsi256_ps(_mm256_set1_epi32(0xFFFF_0000u32 as i32));
        let n = b.len() / LANES * LANES;
        let mut i = 0;
        while i < n {
            let bb = _mm256_and_ps(_mm256_loadu_ps(b.as_ptr().add(i)), vmask);
            let p = _mm256_and_ps(_mm256_mul_ps(vta, bb), vmask);
            let o = _mm256_loadu_ps(acc.as_ptr().add(i));
            let sum = _mm256_add_ps(o, p);
            let r = if clean {
                sum
            } else {
                let p_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(p, p);
                _mm256_blendv_ps(sum, p, p_nan)
            };
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), r);
            i += LANES;
        }
        for j in n..b.len() {
            let p = bf16_lane(ta * bf16_lane(b[j]));
            acc[j] = if clean { acc[j] + p } else { nan_stable_add(acc[j], p) };
        }
    }

    /// Bfloat16 elementwise products.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bf16_mul(a: &[f32], b: &[f32], out: &mut [f32]) {
        let vmask = _mm256_castsi256_ps(_mm256_set1_epi32(0xFFFF_0000u32 as i32));
        let n = a.len() / LANES * LANES;
        let mut i = 0;
        while i < n {
            let aa = _mm256_and_ps(_mm256_loadu_ps(a.as_ptr().add(i)), vmask);
            let bb = _mm256_and_ps(_mm256_loadu_ps(b.as_ptr().add(i)), vmask);
            let p = _mm256_and_ps(_mm256_mul_ps(aa, bb), vmask);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), p);
            i += LANES;
        }
        for j in n..a.len() {
            out[j] = bf16_lane(bf16_lane(a[j]) * bf16_lane(b[j]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    /// The branching reference `pack_lane` re-expresses (mirrors
    /// `fpm::pack_clamped`, which is private to keep the datapath sealed).
    fn pack_branchy(sign_bit: u32, exp: i32, frac: u32) -> u32 {
        if exp >= 0xFF {
            sign_bit | INF_BITS
        } else if exp <= 0 {
            sign_bit
        } else {
            sign_bit | ((exp as u32) << 23) | frac
        }
    }

    #[test]
    fn pack_lane_matches_branching_clamp() {
        let mut rng = rng();
        for _ in 0..20_000 {
            let sign = if rng.gen::<bool>() { SIGN_BIT } else { 0 };
            let exp = rng.gen_range(-300i32..600);
            let frac = rng.gen::<u32>() & FRAC_MASK;
            assert_eq!(
                pack_lane(sign, exp, frac),
                pack_branchy(sign, exp, frac),
                "sign={sign:#x} exp={exp} frac={frac:#x}"
            );
        }
        for exp in [-1, 0, 1, 0xFE, 0xFF, 0x100] {
            assert_eq!(pack_lane(0, exp, 1), pack_branchy(0, exp, 1), "exp={exp}");
        }
    }

    /// The clamp-specialized sweeps the axpy dispatch selects must equal
    /// the full-clamp lane functions for **every** (shared exponent, row
    /// exponent) combination — exhaustive over both 8-bit exponent fields,
    /// with fraction corners and both signs.
    #[test]
    fn clamp_specializations_match_full_pack_exhaustively() {
        for ea in 1u32..=254 {
            for &fa in &[0u32, 0x35_5555, FRAC_MASK] {
                let pa = Binary32Parts { sign: (ea + fa) % 2, exponent: ea, fraction: fa };
                let (sign_a, pfa, em126) = ama5_fields(pa);
                let (sa, _, em127) = exact_fields(pa);
                for bexp in 0u32..=254 {
                    for &bfrac in &[0u32, 1, FRAC_MASK] {
                        let bbits = (u32::from(bexp % 2 == 1) << 31) | (bexp << 23) | bfrac;
                        let b = [f32::from_bits(bbits)];

                        if bexp != 0 {
                            let mut acc = [0.5f32];
                            ama5_axpy_normal(pa, &b, &mut acc);
                            let want = 0.5 + f32::from_bits(ama5_lane(sign_a, pfa, em126, bbits));
                            assert_eq!(acc[0].to_bits(), want.to_bits(), "ama5 {ea} {bexp}");

                            let mut acc = [0.5f32];
                            exact_axpy_normal(pa, &b, &mut acc);
                            let want = 0.5 + f32::from_bits(exact_lane(sa, sign_a, em127, bbits));
                            assert_eq!(acc[0].to_bits(), want.to_bits(), "exact {ea} {bexp}");
                        }

                        let mut acc = [0.5f32];
                        ama5_axpy_zeros(pa, &b, &mut acc);
                        let want = 0.5 + f32::from_bits(ama5_lane_zeros(sign_a, pfa, em126, bbits));
                        assert_eq!(acc[0].to_bits(), want.to_bits(), "ama5-z {ea} {bexp}");

                        let mut acc = [0.5f32];
                        exact_axpy_zeros(pa, &b, &mut acc);
                        let want = 0.5 + f32::from_bits(exact_lane_zeros(sa, sign_a, em127, bbits));
                        assert_eq!(acc[0].to_bits(), want.to_bits(), "exact-z {ea} {bexp}");
                    }
                }
            }
        }
    }

    #[test]
    fn classify_row_flags_zeros_and_specials() {
        assert_eq!(classify_row(&[]), RowClass::Normal);
        assert_eq!(classify_row(&[0.5, -3.0, f32::MAX]), RowClass::Normal);
        assert_eq!(classify_row(&[0.5, -0.0]), RowClass::Zeros);
        assert_eq!(classify_row(&[1e-40]), RowClass::Zeros);
        assert_eq!(classify_row(&[0.0, f32::INFINITY]), RowClass::Special);
        assert_eq!(classify_row(&[f32::NAN]), RowClass::Special);
        assert!(pair_has_special(&[1.0], &[f32::NEG_INFINITY]));
        assert!(pair_has_special(&[f32::NAN], &[1.0]));
        assert!(!pair_has_special(&[0.0, 1.0], &[-2.0, 1e-40]));
    }

    /// Whichever implementation the runtime dispatch selects (AVX2 when the
    /// feature is on and the host supports it, the autovectorized blocks
    /// otherwise), the public kernels must equal the scalar lane functions
    /// on every element, including block boundaries and ragged tails.
    #[test]
    fn dispatched_kernels_match_scalar_lanes() {
        let mut rng = rng();
        for len in [0usize, 1, LANES - 1, LANES, LANES + 1, 4 * LANES + 3] {
            let pa = Binary32Parts::from_f32(rng.gen_range(0.01f32..4.0) - 2.0);
            let pa = if pa.exponent == 0 { Binary32Parts::from_f32(1.5) } else { pa };
            let normal: Vec<f32> = (0..len).map(|_| rng.gen_range(0.25f32..4.0) - 2.1).collect();
            let normal: Vec<f32> =
                normal.iter().map(|&v| if v.abs() < 1e-20 { 0.7 } else { v }).collect();
            let mut zeroed = normal.clone();
            if len > 1 {
                zeroed[len / 2] = 0.0;
                zeroed[len - 1] = -0.0;
            }
            let (sign_a, fa, ea) = ama5_fields(pa);
            let (sa, _, ea127) = exact_fields(pa);

            let mut acc = vec![0.5f32; len];
            ama5_axpy_normal(pa, &normal, &mut acc);
            for (i, o) in acc.iter().enumerate() {
                let want = 0.5 + f32::from_bits(ama5_lane(sign_a, fa, ea, normal[i].to_bits()));
                assert_eq!(o.to_bits(), want.to_bits(), "ama5 normal len={len} i={i}");
            }

            let mut acc = vec![0.25f32; len];
            ama5_axpy_zeros(pa, &zeroed, &mut acc);
            for (i, o) in acc.iter().enumerate() {
                let want =
                    0.25 + f32::from_bits(ama5_lane_zeros(sign_a, fa, ea, zeroed[i].to_bits()));
                assert_eq!(o.to_bits(), want.to_bits(), "ama5 zeros len={len} i={i}");
            }

            let mut acc = vec![1.0f32; len];
            exact_axpy_normal(pa, &normal, &mut acc);
            for (i, o) in acc.iter().enumerate() {
                let want = 1.0 + f32::from_bits(exact_lane(sa, sign_a, ea127, normal[i].to_bits()));
                assert_eq!(o.to_bits(), want.to_bits(), "exact normal len={len} i={i}");
            }

            let mut acc = vec![-0.75f32; len];
            exact_axpy_zeros(pa, &zeroed, &mut acc);
            for (i, o) in acc.iter().enumerate() {
                let want = -0.75
                    + f32::from_bits(exact_lane_zeros(sa, sign_a, ea127, zeroed[i].to_bits()));
                assert_eq!(o.to_bits(), want.to_bits(), "exact zeros len={len} i={i}");
            }

            let mut out = vec![0.0f32; len];
            ama5_mul_pair(&zeroed, &normal, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = ama5_pair_lane(zeroed[i].to_bits(), normal[i].to_bits());
                assert_eq!(o.to_bits(), want, "ama5 pair len={len} i={i}");
            }

            let mut out = vec![0.0f32; len];
            exact_mul_pair(&normal, &zeroed, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = exact_pair_lane(normal[i].to_bits(), zeroed[i].to_bits());
                assert_eq!(o.to_bits(), want, "exact pair len={len} i={i}");
            }

            for clean in [false, true] {
                let mut acc = vec![0.125f32; len];
                bf16_axpy(0.7, &zeroed, &mut acc, clean);
                for (i, o) in acc.iter().enumerate() {
                    let want = 0.125 + bf16_lane(0.7 * bf16_lane(zeroed[i]));
                    assert_eq!(o.to_bits(), want.to_bits(), "bf16 axpy len={len} i={i}");
                }

                let mut acc = vec![0.5f32; len];
                native_axpy(0.7, &zeroed, &mut acc, clean);
                for (i, o) in acc.iter().enumerate() {
                    let want = 0.5 + 0.7 * zeroed[i];
                    assert_eq!(o.to_bits(), want.to_bits(), "native axpy len={len} i={i}");
                }
            }

            let mut out = vec![0.0f32; len];
            bf16_mul(&normal, &zeroed, &mut out);
            for (i, o) in out.iter().enumerate() {
                let want = bf16_lane(bf16_lane(normal[i]) * bf16_lane(zeroed[i]));
                assert_eq!(o.to_bits(), want.to_bits(), "bf16 mul len={len} i={i}");
            }
        }
    }

    /// With the feature enabled on an AVX2 host, both implementations are
    /// compiled — compare them directly on adversarial operands (overflow,
    /// underflow, denormals, signed zeros at block boundaries and tails).
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    #[test]
    fn avx2_matches_autovectorized_blocks() {
        if !intrinsics_active() {
            eprintln!("AVX2 unavailable on this host; dispatch test degenerate");
            return;
        }
        let mut rng = rng();
        let shared = [1.5f32, -0.7, f32::MAX, f32::MIN_POSITIVE * 2.0, 1e38, 1e-38];
        for &a in &shared {
            let pa = Binary32Parts::from_f32(a);
            for len in [1usize, LANES - 1, LANES, 3 * LANES + 5] {
                let mut b: Vec<f32> = (0..len)
                    .map(|_| {
                        let v = f32::from_bits(rng.gen::<u32>());
                        if v.is_nan() || v.is_infinite() {
                            0.5
                        } else {
                            v
                        }
                    })
                    .collect();
                if len >= LANES {
                    b[LANES - 1] = 0.0;
                    b[len - 1] = -0.0;
                }
                let (sign_a, fa, ea) = ama5_fields(pa);
                let (sa, _, ea127) = exact_fields(pa);

                let mut got = vec![0.5f32; len];
                // SAFETY: gated on `intrinsics_active` above.
                unsafe { avx2::ama5_axpy(pa, &b, &mut got, true) };
                let mut want = vec![0.5f32; len];
                lane_axpy(&b, &mut want, |bb| ama5_lane_zeros(sign_a, fa, ea, bb));
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "ama5 a={a} len={len}"
                );

                let mut got = vec![0.5f32; len];
                // SAFETY: gated on `intrinsics_active` above.
                unsafe { avx2::exact_axpy(pa, &b, &mut got, true) };
                let mut want = vec![0.5f32; len];
                lane_axpy(&b, &mut want, |bb| exact_lane_zeros(sa, sign_a, ea127, bb));
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "exact a={a} len={len}"
                );
            }
        }
    }
}
