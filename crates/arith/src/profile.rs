//! Noise-profile sampling behind Figures 3, 13, and 15: the distribution of
//! `approx − exact` as a function of the exact product.

use rand::{Rng, SeedableRng};

use crate::multiplier::Multiplier;

/// One sampled multiplication: the exact product and the approximation error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePoint {
    /// Exact product `a · b` (computed in `f64`).
    pub exact: f64,
    /// Signed error `approx − exact`.
    pub error: f64,
}

/// Error envelope within one product-magnitude bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnitudeBin {
    /// Center of the |product| bin.
    pub center: f64,
    /// Mean |error| within the bin.
    pub mean_abs_error: f64,
    /// Largest |error| within the bin.
    pub max_abs_error: f64,
    /// Samples falling in the bin.
    pub count: usize,
}

/// Summary of a noise profile, the quantities the paper reads off Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Fraction of samples with `|approx| >= |exact|`.
    pub inflation_rate: f64,
    /// Fraction of samples with strictly negative error.
    pub negative_fraction: f64,
    /// Mean |error|.
    pub mean_abs_error: f64,
    /// Error envelope vs product magnitude (trend iii of §4.1).
    pub bins: Vec<MagnitudeBin>,
}

impl ProfileSummary {
    /// `true` if mean |error| grows (weakly) from the smallest-|product| bin
    /// to the largest — the paper's "larger numbers, larger error" trend.
    pub fn error_grows_with_magnitude(&self) -> bool {
        let populated: Vec<&MagnitudeBin> = self.bins.iter().filter(|b| b.count > 0).collect();
        match (populated.first(), populated.last()) {
            (Some(first), Some(last)) if populated.len() >= 2 => {
                last.mean_abs_error >= first.mean_abs_error
            }
            _ => false,
        }
    }
}

/// Sample `n` multiplications with operands uniform in `[lo, hi)`.
///
/// Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use da_arith::{MultiplierKind, profile};
///
/// let pts = profile::noise_profile(&*MultiplierKind::AxFpm.build(), 1_000, 3, -1.0, 1.0);
/// let summary = profile::summarize(&pts, 8);
/// // Figure 3's three trends:
/// assert!(summary.inflation_rate > 0.9);          // (ii) ~96% inflated
/// assert!(summary.error_grows_with_magnitude());  // (iii)
/// ```
pub fn noise_profile(
    multiplier: &dyn Multiplier,
    n: usize,
    seed: u64,
    lo: f32,
    hi: f32,
) -> Vec<NoisePoint> {
    assert!(lo < hi, "empty operand range");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Draw operands in the historical order (a then b per sample), then run
    // one batched multiply over the whole sample set.
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    for _ in 0..n {
        a.push(rng.gen_range(lo..hi));
        b.push(rng.gen_range(lo..hi));
    }
    let mut approx = vec![0.0f32; n];
    multiplier.multiply_slice(&a, &b, &mut approx);
    a.iter()
        .zip(&b)
        .zip(&approx)
        .map(|((&a, &b), &r)| {
            // Reference is the exact multiplier (native f32), as in Figure 3.
            let exact = (a * b) as f64;
            NoisePoint { exact, error: r as f64 - exact }
        })
        .collect()
}

/// Summarize a profile into the Figure-3 statistics with `bins` magnitude
/// bins.
///
/// # Panics
///
/// Panics if `points` is empty or `bins` is zero.
pub fn summarize(points: &[NoisePoint], bins: usize) -> ProfileSummary {
    assert!(!points.is_empty(), "cannot summarize an empty profile");
    assert!(bins > 0, "need at least one bin");

    let max_mag =
        points.iter().map(|p| p.exact.abs()).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);

    let mut bin_abs = vec![0.0f64; bins];
    let mut bin_max = vec![0.0f64; bins];
    let mut bin_count = vec![0usize; bins];
    let mut inflated = 0usize;
    let mut negative = 0usize;
    let mut abs_sum = 0.0;

    for p in points {
        let approx = p.exact + p.error;
        if approx.abs() >= p.exact.abs() {
            inflated += 1;
        }
        if p.error < 0.0 {
            negative += 1;
        }
        abs_sum += p.error.abs();
        let idx = ((p.exact.abs() / max_mag) * bins as f64).min(bins as f64 - 1.0) as usize;
        bin_abs[idx] += p.error.abs();
        bin_max[idx] = bin_max[idx].max(p.error.abs());
        bin_count[idx] += 1;
    }

    let bin_width = max_mag / bins as f64;
    let bins = (0..bins)
        .map(|i| MagnitudeBin {
            center: (i as f64 + 0.5) * bin_width,
            mean_abs_error: if bin_count[i] > 0 { bin_abs[i] / bin_count[i] as f64 } else { 0.0 },
            max_abs_error: bin_max[i],
            count: bin_count[i],
        })
        .collect();

    ProfileSummary {
        inflation_rate: inflated as f64 / points.len() as f64,
        negative_fraction: negative as f64 / points.len() as f64,
        mean_abs_error: abs_sum / points.len() as f64,
        bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiplierKind;

    #[test]
    fn fig3_trends_hold_for_ax_fpm() {
        let pts = noise_profile(&*MultiplierKind::AxFpm.build(), 20_000, 1, -1.0, 1.0);
        let s = summarize(&pts, 10);
        assert!(s.inflation_rate > 0.9, "trend (ii): {}", s.inflation_rate);
        assert!(s.error_grows_with_magnitude(), "trend (iii)");
        // Figure 3's envelope: errors up to ~0.1+ for operands in [-1, 1].
        let max_err = pts.iter().map(|p| p.error.abs()).fold(0.0f64, f64::max);
        assert!(max_err > 0.05 && max_err < 1.5, "envelope {max_err}");
    }

    #[test]
    fn fig13_trends_hold_for_bfloat16() {
        let pts = noise_profile(&*MultiplierKind::Bfloat16.build(), 20_000, 2, 0.0, 1.0);
        let s = summarize(&pts, 10);
        // "mostly negative noise with orders of magnitude lower" (§7.2).
        assert!(s.negative_fraction > 0.5, "negative {}", s.negative_fraction);
        let ax =
            summarize(&noise_profile(&*MultiplierKind::AxFpm.build(), 20_000, 2, 0.0, 1.0), 10);
        assert!(s.mean_abs_error * 10.0 < ax.mean_abs_error);
    }

    #[test]
    fn exact_multiplier_profile_is_silent() {
        let pts = noise_profile(&*MultiplierKind::Exact.build(), 1000, 3, -1.0, 1.0);
        assert!(pts.iter().all(|p| p.error == 0.0));
        let s = summarize(&pts, 4);
        assert_eq!(s.mean_abs_error, 0.0);
        assert_eq!(s.negative_fraction, 0.0);
    }

    #[test]
    fn profiles_are_deterministic() {
        let m = MultiplierKind::Heap.build();
        let a = noise_profile(&*m, 500, 9, -1.0, 1.0);
        let b = noise_profile(&*m, 500, 9, -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn bins_cover_all_samples() {
        let pts = noise_profile(&*MultiplierKind::AxFpm.build(), 5000, 4, -1.0, 1.0);
        let s = summarize(&pts, 7);
        assert_eq!(s.bins.iter().map(|b| b.count).sum::<usize>(), pts.len());
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn summarize_rejects_empty_input() {
        let _ = summarize(&[], 4);
    }
}
