//! The multiplier abstraction every CNN layer plugs into: a scalar
//! `multiply` plus the batched slice-level API of the arithmetic backend
//! (see [`crate::batch`]).

use std::fmt;
use std::sync::Arc;

use crate::array::ArrayMultiplierSpec;
use crate::batch::{BatchKernel, FallbackKernel, PreparedOperands};
use crate::bfloat::BfloatMultiplier;
use crate::fpm::FloatMultiplier;
use crate::heap;
use crate::simd::{clean_axpy, nan_stable_add, native_axpy, pair_has_special, row_has_special};
use crate::RowClass;

/// An `f32 × f32` multiplier — exact hardware, an approximate FPM, or a
/// reduced-precision unit.
///
/// Implementors must be deterministic: the paper's defense relies on
/// *data-dependent*, not random, noise.
///
/// Beyond the scalar [`multiply`](Multiplier::multiply), the trait carries
/// the slice-level batched API. The defaults are scalar loops, so a new
/// multiplier only has to implement `multiply`; performance-critical
/// implementations override the slice methods (and
/// [`batch_kernel`](Multiplier::batch_kernel)) with vectorizable or
/// memoizing versions. **Every override must stay bit-identical to the
/// scalar loop** — the GEMM property tests enforce this per kind.
pub trait Multiplier: Send + Sync {
    /// Multiply two values through the simulated datapath.
    fn multiply(&self, a: f32, b: f32) -> f32;

    /// Short stable identifier (used in reports and cache keys).
    fn name(&self) -> &str;

    /// Elementwise products: `out[i] = multiply(a[i], b[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the three slice lengths differ.
    fn multiply_slice(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
        assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = self.multiply(x, y);
        }
    }

    /// Fused dot product: `Σ_i multiply(a[i], b[i])`, accumulated left to
    /// right in `f32` (additions stay exact, as in the paper's datapath;
    /// NaN payload propagation is pinned by
    /// [`crate::simd::nan_stable_add`]).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    fn dot_accumulate(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_accumulate length mismatch");
        let mut acc = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            acc = nan_stable_add(acc, self.multiply(x, y));
        }
        acc
    }

    /// Scaled accumulation: `acc[i] += multiply(a, b[i])` — the GEMM
    /// workhorse (one weight against a row of activations).
    ///
    /// # Panics
    ///
    /// Panics if `b` and `acc` lengths differ.
    fn axpy_slice(&self, a: f32, b: &[f32], acc: &mut [f32]) {
        assert_eq!(b.len(), acc.len(), "axpy_slice length mismatch");
        for (o, &y) in acc.iter_mut().zip(b) {
            *o = nan_stable_add(*o, self.multiply(a, y));
        }
    }

    /// Fused multi-term axpy: `acc[j] += Σ_t multiply(a[t], b[t*acc.len()+j])`,
    /// accumulated per element in ascending `t` — bit-identical to calling
    /// [`Multiplier::axpy_slice`] once per `a[t]` in order. `b` is the
    /// row-major `a.len() × acc.len()` block of right-hand operands.
    ///
    /// Gate-level designs override this to batch the `a[t]` terms through
    /// the bit-sliced plane sweep, filling all sub-blocks of a wide sweep
    /// even when `acc.len()` alone is too short to.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != a.len() * acc.len()`.
    fn axpy_fused(&self, a: &[f32], b: &[f32], acc: &mut [f32]) {
        assert_eq!(b.len(), a.len() * acc.len(), "axpy_fused length mismatch");
        let n = acc.len();
        for (t, &x) in a.iter().enumerate() {
            self.axpy_slice(x, &b[t * n..(t + 1) * n], acc);
        }
    }

    /// A stateful per-worker kernel for batched inner loops.
    ///
    /// The default delegates to the slice methods above. Gate-level
    /// multipliers return memoizing kernels (see
    /// [`crate::batch::SigProductCache`]); callers create one kernel per
    /// worker thread and reuse it across an entire GEMM.
    fn batch_kernel(&self) -> Box<dyn BatchKernel + Send + '_> {
        Box::new(FallbackKernel::new(self))
    }
}

impl fmt::Debug for dyn Multiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Multiplier({})", self.name())
    }
}

/// The exact multiplier: native IEEE-754 `f32` multiplication.
///
/// # Examples
///
/// ```
/// use da_arith::{ExactMultiplier, Multiplier};
/// assert_eq!(ExactMultiplier.multiply(3.0, 4.0), 12.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMultiplier;

impl Multiplier for ExactMultiplier {
    #[inline]
    fn multiply(&self, a: f32, b: f32) -> f32 {
        a * b
    }

    fn name(&self) -> &str {
        "exact"
    }

    // Native loops: with the defaults these would still be correct, but the
    // explicit bodies contain no calls at all, so the compiler vectorizes
    // them like hand-written f32 kernels. Rows are classified first: a
    // NaN-free product stream keeps the plain fused loop (bitwise
    // order-independent), while rows carrying Inf/NaN pin payload
    // propagation through `nan_stable_add` (see `crate::simd`).

    fn multiply_slice(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), b.len(), "multiply_slice length mismatch");
        assert_eq!(a.len(), out.len(), "multiply_slice output length mismatch");
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }

    fn dot_accumulate(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_accumulate length mismatch");
        let mut acc = 0.0f32;
        if pair_has_special(a, b) {
            for (&x, &y) in a.iter().zip(b) {
                acc = nan_stable_add(acc, x * y);
            }
        } else {
            for (&x, &y) in a.iter().zip(b) {
                acc += x * y;
            }
        }
        acc
    }

    fn axpy_slice(&self, a: f32, b: &[f32], acc: &mut [f32]) {
        native_axpy(a, b, acc, clean_axpy(a, native_class(b)));
    }

    fn batch_kernel(&self) -> Box<dyn BatchKernel + Send + '_> {
        Box::new(NativeBatchKernel { row_class: Vec::new() })
    }
}

/// The special-only row scan for native/value-type kernels: zeros need no
/// special handling in the fused loops, so zero-bearing rows report
/// `Normal` (half the scan cost of the three-way classification).
fn native_class(b: &[f32]) -> RowClass {
    if row_has_special(b) {
        RowClass::Special
    } else {
        RowClass::Normal
    }
}

/// The batched kernel behind [`ExactMultiplier::batch_kernel`]: the native
/// fused loops of the slice methods, with row classification amortized
/// across multi-row sweeps ([`BatchKernel::axpy_rows`]) and whole tiles
/// ([`BatchKernel::gemm_tile`]) instead of re-scanned per `axpy` call.
struct NativeBatchKernel {
    row_class: Vec<RowClass>,
}

impl BatchKernel for NativeBatchKernel {
    fn axpy(&mut self, a: f32, b: &[f32], acc: &mut [f32]) {
        ExactMultiplier.axpy_slice(a, b, acc);
    }

    fn axpy_classified(&mut self, a: f32, b: &[f32], class: RowClass, acc: &mut [f32]) {
        debug_assert!(class == RowClass::Special || !row_has_special(b), "stale row class");
        native_axpy(a, b, acc, clean_axpy(a, class));
    }

    fn axpy_rows(&mut self, a: &[f32], b: &[f32], acc: &mut [f32], acc_stride: usize) {
        assert!(a.len() <= 1 || acc_stride >= b.len(), "axpy_rows rows overlap");
        let class = native_class(b);
        for (r, &av) in a.iter().enumerate() {
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + b.len()];
            native_axpy(av, b, acc_row, clean_axpy(av, class));
        }
    }

    fn gemm_tile(
        &mut self,
        ops: &PreparedOperands,
        b: &[f32],
        tile: usize,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        let mut row_class = std::mem::take(&mut self.row_class);
        crate::batch::gemm_tile_classified(
            ops,
            b,
            tile,
            acc,
            acc_stride,
            &mut row_class,
            native_class,
            |a, brow, class, acc_row| native_axpy(a, brow, acc_row, clean_axpy(a, class)),
        );
        self.row_class = row_class;
    }

    fn gemm_tile_classed(
        &mut self,
        ops: &PreparedOperands,
        b: &[f32],
        tile: usize,
        class: RowClass,
        acc: &mut [f32],
        acc_stride: usize,
    ) {
        // One covering class for every row: a direct sweep, no per-row
        // classification state at all.
        assert_eq!(b.len(), ops.cols() * tile, "gemm_tile b length mismatch");
        assert!(ops.rows() <= 1 || acc_stride >= tile, "gemm_tile rows overlap");
        for r in 0..ops.rows() {
            let acc_row = &mut acc[r * acc_stride..r * acc_stride + tile];
            for (k, op) in ops.row(r).iter().enumerate() {
                let a = op.value();
                let brow = &b[k * tile..(k + 1) * tile];
                native_axpy(a, brow, acc_row, clean_axpy(a, class));
            }
        }
    }

    fn classify_rhs(&self, b: &[f32]) -> RowClass {
        native_class(b)
    }

    fn dot(&mut self, a: &[f32], b: &[f32]) -> f32 {
        ExactMultiplier.dot_accumulate(a, b)
    }

    fn mul(&mut self, a: &[f32], b: &[f32], out: &mut [f32]) {
        ExactMultiplier.multiply_slice(a, b, out);
    }
}

/// The multiplier designs evaluated in the paper, as a value type usable in
/// configs, caches, and report rows.
///
/// # Examples
///
/// ```
/// use da_arith::MultiplierKind;
///
/// let m = MultiplierKind::AxFpm.build();
/// assert_eq!(m.name(), "ax-fpm");
/// assert!(m.multiply(0.5, 0.5) >= 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MultiplierKind {
    /// Native `f32` multiplication (the paper's "Float32" baseline).
    Exact,
    /// Gate-level exact FPM with truncating rounding (sanity reference).
    ExactFpm,
    /// The paper's defense: AMA5 array mantissa core (§4.1).
    AxFpm,
    /// The HEAP heterogeneous approximate multiplier (Appendix A).
    Heap,
    /// Bfloat16 truncating multiplier (§7.2).
    Bfloat16,
}

impl MultiplierKind {
    /// All kinds, in the order the paper's tables list them.
    pub const ALL: [MultiplierKind; 5] = [
        MultiplierKind::Exact,
        MultiplierKind::ExactFpm,
        MultiplierKind::AxFpm,
        MultiplierKind::Heap,
        MultiplierKind::Bfloat16,
    ];

    /// Instantiate the multiplier.
    pub fn build(self) -> Arc<dyn Multiplier> {
        match self {
            MultiplierKind::Exact => Arc::new(ExactMultiplier),
            MultiplierKind::ExactFpm => Arc::new(FloatMultiplier::exact()),
            MultiplierKind::AxFpm => Arc::new(FloatMultiplier::ax_fpm()),
            MultiplierKind::Heap => Arc::new(heap::heap_multiplier()),
            MultiplierKind::Bfloat16 => Arc::new(BfloatMultiplier),
        }
    }

    /// Stable identifier matching [`Multiplier::name`].
    pub fn as_str(self) -> &'static str {
        match self {
            MultiplierKind::Exact => "exact",
            MultiplierKind::ExactFpm => "exact-fpm",
            MultiplierKind::AxFpm => "ax-fpm",
            MultiplierKind::Heap => "heap",
            MultiplierKind::Bfloat16 => "bfloat16",
        }
    }

    /// The mantissa-core spec for gate-level kinds, `None` for behavioural
    /// ones (used by the energy model).
    pub fn core_spec(self) -> Option<ArrayMultiplierSpec> {
        match self {
            MultiplierKind::ExactFpm => Some(ArrayMultiplierSpec::exact(24)),
            MultiplierKind::AxFpm => Some(ArrayMultiplierSpec::ax_mantissa(24)),
            MultiplierKind::Heap => Some(heap::heap_mantissa_spec()),
            MultiplierKind::Exact | MultiplierKind::Bfloat16 => None,
        }
    }
}

impl fmt::Display for MultiplierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiplier_is_native() {
        let m = ExactMultiplier;
        assert_eq!(m.multiply(1.5, -2.0), -3.0);
        assert_eq!(m.name(), "exact");
    }

    #[test]
    fn kinds_build_and_names_agree() {
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            assert_eq!(m.name(), kind.as_str());
            let r = m.multiply(0.5, 0.5);
            assert!(r.is_finite() && r > 0.0, "{kind} produced {r}");
        }
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        let m: Arc<dyn Multiplier> = MultiplierKind::AxFpm.build();
        assert_eq!(format!("{:?}", &*m), "Multiplier(ax-fpm)");
    }
}
