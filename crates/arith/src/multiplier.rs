//! The scalar-multiplier abstraction every CNN layer plugs into.

use std::fmt;
use std::sync::Arc;

use crate::array::ArrayMultiplierSpec;
use crate::bfloat::BfloatMultiplier;
use crate::fpm::FloatMultiplier;
use crate::heap;

/// A scalar `f32 × f32` multiplier — exact hardware, an approximate FPM, or
/// a reduced-precision unit.
///
/// Implementors must be deterministic: the paper's defense relies on
/// *data-dependent*, not random, noise.
pub trait Multiplier: Send + Sync {
    /// Multiply two values through the simulated datapath.
    fn multiply(&self, a: f32, b: f32) -> f32;

    /// Short stable identifier (used in reports and cache keys).
    fn name(&self) -> &str;
}

impl fmt::Debug for dyn Multiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Multiplier({})", self.name())
    }
}

/// The exact multiplier: native IEEE-754 `f32` multiplication.
///
/// # Examples
///
/// ```
/// use da_arith::{ExactMultiplier, Multiplier};
/// assert_eq!(ExactMultiplier.multiply(3.0, 4.0), 12.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMultiplier;

impl Multiplier for ExactMultiplier {
    #[inline]
    fn multiply(&self, a: f32, b: f32) -> f32 {
        a * b
    }

    fn name(&self) -> &str {
        "exact"
    }
}

/// The multiplier designs evaluated in the paper, as a value type usable in
/// configs, caches, and report rows.
///
/// # Examples
///
/// ```
/// use da_arith::MultiplierKind;
///
/// let m = MultiplierKind::AxFpm.build();
/// assert_eq!(m.name(), "ax-fpm");
/// assert!(m.multiply(0.5, 0.5) >= 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MultiplierKind {
    /// Native `f32` multiplication (the paper's "Float32" baseline).
    Exact,
    /// Gate-level exact FPM with truncating rounding (sanity reference).
    ExactFpm,
    /// The paper's defense: AMA5 array mantissa core (§4.1).
    AxFpm,
    /// The HEAP heterogeneous approximate multiplier (Appendix A).
    Heap,
    /// Bfloat16 truncating multiplier (§7.2).
    Bfloat16,
}

impl MultiplierKind {
    /// All kinds, in the order the paper's tables list them.
    pub const ALL: [MultiplierKind; 5] = [
        MultiplierKind::Exact,
        MultiplierKind::ExactFpm,
        MultiplierKind::AxFpm,
        MultiplierKind::Heap,
        MultiplierKind::Bfloat16,
    ];

    /// Instantiate the multiplier.
    pub fn build(self) -> Arc<dyn Multiplier> {
        match self {
            MultiplierKind::Exact => Arc::new(ExactMultiplier),
            MultiplierKind::ExactFpm => Arc::new(FloatMultiplier::exact()),
            MultiplierKind::AxFpm => Arc::new(FloatMultiplier::ax_fpm()),
            MultiplierKind::Heap => Arc::new(heap::heap_multiplier()),
            MultiplierKind::Bfloat16 => Arc::new(BfloatMultiplier),
        }
    }

    /// Stable identifier matching [`Multiplier::name`].
    pub fn as_str(self) -> &'static str {
        match self {
            MultiplierKind::Exact => "exact",
            MultiplierKind::ExactFpm => "exact-fpm",
            MultiplierKind::AxFpm => "ax-fpm",
            MultiplierKind::Heap => "heap",
            MultiplierKind::Bfloat16 => "bfloat16",
        }
    }

    /// The mantissa-core spec for gate-level kinds, `None` for behavioural
    /// ones (used by the energy model).
    pub fn core_spec(self) -> Option<ArrayMultiplierSpec> {
        match self {
            MultiplierKind::ExactFpm => Some(ArrayMultiplierSpec::exact(24)),
            MultiplierKind::AxFpm => Some(ArrayMultiplierSpec::ax_mantissa(24)),
            MultiplierKind::Heap => Some(heap::heap_mantissa_spec()),
            MultiplierKind::Exact | MultiplierKind::Bfloat16 => None,
        }
    }
}

impl fmt::Display for MultiplierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiplier_is_native() {
        let m = ExactMultiplier;
        assert_eq!(m.multiply(1.5, -2.0), -3.0);
        assert_eq!(m.name(), "exact");
    }

    #[test]
    fn kinds_build_and_names_agree() {
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            assert_eq!(m.name(), kind.as_str());
            let r = m.multiply(0.5, 0.5);
            assert!(r.is_finite() && r > 0.0, "{kind} produced {r}");
        }
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        let m: Arc<dyn Multiplier> = MultiplierKind::AxFpm.build();
        assert_eq!(format!("{:?}", &*m), "Multiplier(ax-fpm)");
    }
}
