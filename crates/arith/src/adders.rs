//! The mirror-adder family: one exact and five approximate full adders.
//!
//! A full adder maps `(A, B, Cin)` to `(Sum, Cout)`. The approximate mirror
//! adders (AMA1–AMA5) of Gupta et al. \[23\] progressively remove transistors
//! from the conventional 24-transistor mirror adder (MA), trading truth-table
//! errors for power and delay.
//!
//! The paper defines AMA5 precisely (§4.1): `Sum = B`, `Cout = A` — two
//! buffers. AMA1–AMA4 are reconstructed from the published progression:
//!
//! | Design | `Sum`            | `Cout`        | Sum errors | Cout errors |
//! |--------|------------------|---------------|-----------:|------------:|
//! | Exact  | `A ^ B ^ Cin`    | majority      | 0 / 8      | 0 / 8       |
//! | AMA1   | `!Cout_exact`    | exact         | 2 / 8      | 0 / 8       |
//! | AMA2   | exact            | `A`           | 0 / 8      | 2 / 8       |
//! | AMA3   | `!A`             | `A`           | 4 / 8      | 2 / 8       |
//! | AMA4   | `B`              | exact         | 4 / 8      | 0 / 8       |
//! | AMA5   | `B`              | `A`           | 4 / 8      | 2 / 8       |
//!
//! Truth tables are stored as 8-bit vectors indexed by
//! `(Cin << 2) | (B << 1) | A`.

/// One of the full-adder designs usable as an array-multiplier cell.
///
/// # Examples
///
/// ```
/// use da_arith::AdderKind;
///
/// // AMA5 ignores its carry input entirely: Sum = B, Cout = A.
/// let (sum, cout) = AdderKind::Ama5.eval(1, 0, 1);
/// assert_eq!((sum, cout), (0, 1));
/// // The exact adder computes 1 + 0 + 1 = 0b10.
/// let (sum, cout) = AdderKind::Exact.eval(1, 0, 1);
/// assert_eq!((sum, cout), (0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdderKind {
    /// Conventional 24-transistor mirror adder (no errors).
    Exact,
    /// `Sum = !Cout`, `Cout` exact — 2/8 sum errors.
    Ama1,
    /// `Sum` exact, `Cout = A` — 2/8 carry errors.
    Ama2,
    /// `Sum = !A`, `Cout = A` — 4/8 sum and 2/8 carry errors.
    Ama3,
    /// `Sum = B`, `Cout` exact — 4/8 sum errors.
    Ama4,
    /// `Sum = B`, `Cout = A` — two buffers; the paper's Ax-FPM cell.
    Ama5,
}

/// Truth table of the exact sum output (`A ^ B ^ Cin`).
pub const EXACT_SUM_TT: u8 = 0b1001_0110;
/// Truth table of the exact carry output (majority of `A`, `B`, `Cin`).
pub const EXACT_COUT_TT: u8 = 0b1110_1000;

impl AdderKind {
    /// Every design, in increasing aggressiveness order.
    pub const ALL: [AdderKind; 6] = [
        AdderKind::Exact,
        AdderKind::Ama1,
        AdderKind::Ama2,
        AdderKind::Ama3,
        AdderKind::Ama4,
        AdderKind::Ama5,
    ];

    /// 8-entry truth table of the `Sum` output, indexed by
    /// `(Cin << 2) | (B << 1) | A`.
    #[inline]
    pub fn sum_tt(self) -> u8 {
        match self {
            AdderKind::Exact => EXACT_SUM_TT,
            AdderKind::Ama1 => !EXACT_COUT_TT,
            AdderKind::Ama2 => EXACT_SUM_TT,
            AdderKind::Ama3 => 0b0101_0101, // !A
            AdderKind::Ama4 => 0b1100_1100, // B
            AdderKind::Ama5 => 0b1100_1100, // B
        }
    }

    /// 8-entry truth table of the `Cout` output, indexed like [`sum_tt`].
    ///
    /// [`sum_tt`]: AdderKind::sum_tt
    #[inline]
    pub fn cout_tt(self) -> u8 {
        match self {
            AdderKind::Exact => EXACT_COUT_TT,
            AdderKind::Ama1 => EXACT_COUT_TT,
            AdderKind::Ama2 => 0b1010_1010, // A
            AdderKind::Ama3 => 0b1010_1010, // A
            AdderKind::Ama4 => EXACT_COUT_TT,
            AdderKind::Ama5 => 0b1010_1010, // A
        }
    }

    /// Evaluate the adder on single bits. Bits must be `0` or `1`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any input is not a bit.
    #[inline]
    pub fn eval(self, a: u8, b: u8, cin: u8) -> (u8, u8) {
        debug_assert!(a <= 1 && b <= 1 && cin <= 1, "inputs must be bits");
        let idx = (cin << 2) | (b << 1) | a;
        ((self.sum_tt() >> idx) & 1, (self.cout_tt() >> idx) & 1)
    }

    /// Number of input combinations (out of 8) where `Sum` is wrong.
    pub fn sum_error_count(self) -> u32 {
        (self.sum_tt() ^ EXACT_SUM_TT).count_ones()
    }

    /// Number of input combinations (out of 8) where `Cout` is wrong.
    pub fn cout_error_count(self) -> u32 {
        (self.cout_tt() ^ EXACT_COUT_TT).count_ones()
    }

    /// Transistor count of the CMOS implementation.
    ///
    /// The exact mirror adder uses 24 transistors; the approximations remove
    /// circuitry, down to AMA5's two buffers (paper Figure 2). These counts
    /// drive the [energy model](crate::energy).
    pub fn transistor_count(self) -> f64 {
        match self {
            AdderKind::Exact => 24.0,
            AdderKind::Ama1 => 20.0,
            AdderKind::Ama2 => 16.0,
            AdderKind::Ama3 => 13.0,
            AdderKind::Ama4 => 11.0,
            AdderKind::Ama5 => 4.0,
        }
    }

    /// Propagation delay of the `Sum` output in gate levels.
    pub fn sum_delay(self) -> f64 {
        match self {
            AdderKind::Exact | AdderKind::Ama1 => 2.0,
            AdderKind::Ama2 => 2.0,
            AdderKind::Ama3 => 0.5,
            AdderKind::Ama4 | AdderKind::Ama5 => 0.5,
        }
    }

    /// Propagation delay of the `Cout` output in gate levels.
    pub fn cout_delay(self) -> f64 {
        match self {
            AdderKind::Exact | AdderKind::Ama1 | AdderKind::Ama4 => 2.0,
            AdderKind::Ama2 | AdderKind::Ama3 | AdderKind::Ama5 => 0.5,
        }
    }

    /// `true` if neither output depends on `Cin` (the carry chain is cut).
    ///
    /// ```
    /// use da_arith::AdderKind;
    /// assert!(AdderKind::Ama5.ignores_carry_in());
    /// assert!(!AdderKind::Exact.ignores_carry_in());
    /// ```
    pub fn ignores_carry_in(self) -> bool {
        let dep = |tt: u8| (tt >> 4) != (tt & 0x0F);
        !dep(self.sum_tt()) && !dep(self.cout_tt())
    }
}

impl std::fmt::Display for AdderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AdderKind::Exact => "Exact",
            AdderKind::Ama1 => "AMA1",
            AdderKind::Ama2 => "AMA2",
            AdderKind::Ama3 => "AMA3",
            AdderKind::Ama4 => "AMA4",
            AdderKind::Ama5 => "AMA5",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_truth_tables_match_arithmetic() {
        for idx in 0u8..8 {
            let a = idx & 1;
            let b = (idx >> 1) & 1;
            let c = (idx >> 2) & 1;
            let total = a + b + c;
            let (sum, cout) = AdderKind::Exact.eval(a, b, c);
            assert_eq!(sum, total & 1, "sum mismatch at {idx}");
            assert_eq!(cout, (total >> 1) & 1, "cout mismatch at {idx}");
        }
    }

    #[test]
    fn ama5_is_two_buffers() {
        for idx in 0u8..8 {
            let a = idx & 1;
            let b = (idx >> 1) & 1;
            let c = (idx >> 2) & 1;
            let (sum, cout) = AdderKind::Ama5.eval(a, b, c);
            assert_eq!(sum, b);
            assert_eq!(cout, a);
        }
    }

    #[test]
    fn error_counts_follow_documented_progression() {
        assert_eq!(AdderKind::Exact.sum_error_count(), 0);
        assert_eq!(AdderKind::Exact.cout_error_count(), 0);
        assert_eq!(AdderKind::Ama1.sum_error_count(), 2);
        assert_eq!(AdderKind::Ama1.cout_error_count(), 0);
        assert_eq!(AdderKind::Ama2.sum_error_count(), 0);
        assert_eq!(AdderKind::Ama2.cout_error_count(), 2);
        assert_eq!(AdderKind::Ama3.sum_error_count(), 4);
        assert_eq!(AdderKind::Ama3.cout_error_count(), 2);
        assert_eq!(AdderKind::Ama4.sum_error_count(), 4);
        assert_eq!(AdderKind::Ama4.cout_error_count(), 0);
        assert_eq!(AdderKind::Ama5.sum_error_count(), 4);
        assert_eq!(AdderKind::Ama5.cout_error_count(), 2);
    }

    #[test]
    fn ama1_sum_is_inverted_exact_carry() {
        for idx in 0u8..8 {
            let a = idx & 1;
            let b = (idx >> 1) & 1;
            let c = (idx >> 2) & 1;
            let (sum, _) = AdderKind::Ama1.eval(a, b, c);
            let (_, exact_cout) = AdderKind::Exact.eval(a, b, c);
            assert_eq!(sum, 1 - exact_cout);
        }
    }

    #[test]
    fn transistor_counts_strictly_decrease_with_aggressiveness() {
        let counts: Vec<f64> = AdderKind::ALL.iter().map(|k| k.transistor_count()).collect();
        for pair in counts.windows(2) {
            assert!(pair[0] > pair[1], "counts must strictly decrease: {counts:?}");
        }
    }

    #[test]
    fn only_carry_cut_designs_ignore_cin() {
        assert!(AdderKind::Ama3.ignores_carry_in());
        assert!(AdderKind::Ama5.ignores_carry_in());
        assert!(!AdderKind::Exact.ignores_carry_in());
        assert!(!AdderKind::Ama1.ignores_carry_in());
        assert!(!AdderKind::Ama2.ignores_carry_in()); // exact Sum depends on Cin
        assert!(!AdderKind::Ama4.ignores_carry_in()); // exact Cout depends on Cin
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = AdderKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["Exact", "AMA1", "AMA2", "AMA3", "AMA4", "AMA5"]);
    }
}
