//! Multiplier-level error metrics: MRED, NMED, and inflation rate
//! (paper Appendix A, Table 8).

use rand::{Rng, SeedableRng};

use crate::multiplier::Multiplier;

/// Aggregate error statistics of an approximate multiplier against the exact
/// product, over uniformly sampled operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean relative error distance `mean(|approx − exact| / |exact|)` \[35\].
    pub mred: f64,
    /// Normalized mean error distance `mean(|approx − exact|) / max_product`.
    pub nmed: f64,
    /// Fraction of samples where `|approx| >= |exact|` (paper Figure 3: 96%
    /// for Ax-FPM, 34% for HEAP).
    pub inflation_rate: f64,
    /// Signed mean error.
    pub mean_error: f64,
    /// Largest absolute error observed.
    pub max_abs_error: f64,
    /// Number of samples.
    pub samples: usize,
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MRED={:.4} NMED={:.4} inflation={:.1}% ({} samples)",
            self.mred,
            self.nmed,
            self.inflation_rate * 100.0,
            self.samples
        )
    }
}

/// Sample `samples` uniform operand pairs in `range` and compute
/// [`ErrorStats`] for `multiplier` against the exact (`f64`) product.
///
/// Deterministic in `seed`. Pairs whose exact product is zero are skipped for
/// MRED (relative error undefined) but still counted for NMED.
///
/// # Examples
///
/// ```
/// use da_arith::{MultiplierKind, metrics::error_stats};
///
/// let stats = error_stats(&*MultiplierKind::AxFpm.build(), 2_000, 1, (0.0, 1.0));
/// // Paper Table 8: Ax-FPM MRED ≈ 0.33; Figure 3: ~96% inflation.
/// assert!(stats.mred > 0.2 && stats.mred < 0.45);
/// assert!(stats.inflation_rate > 0.9);
/// ```
pub fn error_stats(
    multiplier: &dyn Multiplier,
    samples: usize,
    seed: u64,
    range: (f32, f32),
) -> ErrorStats {
    assert!(samples > 0, "need at least one sample");
    assert!(range.0 < range.1, "empty sampling range");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let max_product = (range.0.abs().max(range.1.abs()) as f64).powi(2);

    let mut mred_sum = 0.0;
    let mut mred_n = 0usize;
    let mut abs_sum = 0.0;
    let mut signed_sum = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut inflated = 0usize;

    // Draw operands in the historical order (a then b per sample), then run
    // one batched multiply over the whole sample set.
    let mut a_ops = Vec::with_capacity(samples);
    let mut b_ops = Vec::with_capacity(samples);
    for _ in 0..samples {
        a_ops.push(rng.gen_range(range.0..range.1));
        b_ops.push(rng.gen_range(range.0..range.1));
    }
    let mut approxs = vec![0.0f32; samples];
    multiplier.multiply_slice(&a_ops, &b_ops, &mut approxs);

    for ((&a, &b), &r) in a_ops.iter().zip(&b_ops).zip(&approxs) {
        // The reference is the *exact multiplier* (native f32), matching the
        // paper's "difference of the approximate and the exact multiplier".
        let exact = (a * b) as f64;
        let approx = r as f64;
        let err = approx - exact;
        abs_sum += err.abs();
        signed_sum += err;
        max_abs = max_abs.max(err.abs());
        if approx.abs() >= exact.abs() {
            inflated += 1;
        }
        if exact != 0.0 {
            mred_sum += err.abs() / exact.abs();
            mred_n += 1;
        }
    }

    ErrorStats {
        mred: if mred_n > 0 { mred_sum / mred_n as f64 } else { 0.0 },
        nmed: abs_sum / samples as f64 / max_product,
        inflation_rate: inflated as f64 / samples as f64,
        mean_error: signed_sum / samples as f64,
        max_abs_error: max_abs,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiplierKind;

    #[test]
    fn exact_multiplier_has_zero_error() {
        let stats = error_stats(&*MultiplierKind::Exact.build(), 1000, 9, (-1.0, 1.0));
        assert_eq!(stats.mred, 0.0);
        assert_eq!(stats.nmed, 0.0);
        assert_eq!(stats.max_abs_error, 0.0);
        assert_eq!(stats.inflation_rate, 1.0); // |approx| == |exact| counts
    }

    #[test]
    fn exact_fpm_truncation_error_is_tiny_and_deflationary() {
        let stats = error_stats(&*MultiplierKind::ExactFpm.build(), 2000, 9, (0.0, 1.0));
        assert!(stats.mred < 1e-6, "truncation is sub-ulp: {}", stats.mred);
        assert!(stats.mean_error <= 0.0);
    }

    #[test]
    fn ax_fpm_reproduces_paper_characterization() {
        // Table 8: MRED 0.33, NMED 0.08; Figure 3: 96% inflation.
        let stats = error_stats(&*MultiplierKind::AxFpm.build(), 20_000, 9, (0.0, 1.0));
        assert!((0.25..0.45).contains(&stats.mred), "MRED off paper shape: {}", stats.mred);
        assert!(
            stats.inflation_rate > 0.9,
            "inflation rate {} below paper's ~96%",
            stats.inflation_rate
        );
        assert!(stats.mean_error > 0.0);
    }

    #[test]
    fn bfloat16_error_is_orders_below_ax_fpm() {
        let bf = error_stats(&*MultiplierKind::Bfloat16.build(), 10_000, 9, (0.0, 1.0));
        let ax = error_stats(&*MultiplierKind::AxFpm.build(), 10_000, 9, (0.0, 1.0));
        assert!(bf.mred * 10.0 < ax.mred);
        assert!(bf.inflation_rate < 0.5, "bf16 noise is mostly negative");
    }

    #[test]
    fn stats_are_deterministic_in_seed() {
        let m = MultiplierKind::AxFpm.build();
        let a = error_stats(&*m, 500, 77, (-1.0, 1.0));
        let b = error_stats(&*m, 500, 77, (-1.0, 1.0));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn rejects_empty_range() {
        let _ = error_stats(&*MultiplierKind::Exact.build(), 10, 0, (1.0, 1.0));
    }
}
