//! Transistor-census energy and critical-path delay model (Tables 7 and 9).
//!
//! The paper measures energy and delay with a PTM-45nm analog simulation
//! (Keysight ADS) and reports values *normalized to the exact design*. We
//! model energy as switched-transistor count and delay as gate levels along
//! the critical path, with a small set of constants calibrated so the
//! normalized ratios land on the published measurements:
//!
//! | Artifact | paper energy | paper delay |
//! |---|---|---|
//! | 24×24 mantissa core, Ax-FPM (Table 9) | 0.395 | 0.235 |
//! | 24×24 mantissa core, HEAP (Table 9)   | 0.49  | 0.46  |
//! | Full FPM, Ax-FPM (Table 7)            | 0.487 | 0.29  |
//! | Full FPM, Bfloat16 (Table 7)          | 0.4   | 0.4   |
//!
//! The constants (AND-gate cost, per-cell interconnect, normalization and
//! shared-datapath overhead, Booth-multiplier equivalent cost) are documented
//! on [`CostParams`]; tests pin the resulting ratios to the paper's within
//! tolerance.

use crate::adders::AdderKind;
use crate::array::{ArrayMultiplierSpec, CpaKind};

/// Calibrated cost constants of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Transistors per partial-product AND gate (including wiring load).
    pub and_transistors: f64,
    /// Interconnect overhead added to every adder cell.
    pub cell_overhead: f64,
    /// Gate delay of the partial-product AND stage.
    pub and_delay: f64,
    /// Transistors of the (exact) normalization/rounding unit, shared by all
    /// binary32 designs.
    pub normalization_transistors: f64,
    /// Gate delay of the normalization mux stage.
    pub normalization_delay: f64,
    /// Shared datapath overhead: unpack/pack logic and pipeline registers.
    pub shared_transistors: f64,
    /// Equivalent transistor count of the Bfloat16 8×8 Booth mantissa
    /// multiplier (encoder/mux overhead included; calibrated to Table 7).
    pub booth8_transistors: f64,
    /// Critical-path delay of the Booth mantissa multiplier in gate levels.
    pub booth8_delay: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            and_transistors: 7.0,
            cell_overhead: 2.0,
            and_delay: 1.0,
            normalization_transistors: 800.0,
            normalization_delay: 3.0,
            shared_transistors: 2450.0,
            booth8_transistors: 5500.0,
            booth8_delay: 38.0,
        }
    }
}

/// Absolute cost of a circuit under the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitCost {
    /// Energy proxy: switched transistors per operation.
    pub transistors: f64,
    /// Critical-path delay in gate levels.
    pub delay: f64,
}

impl CircuitCost {
    /// `(energy, delay)` normalized to a baseline circuit, as the paper's
    /// tables report them.
    pub fn normalized_to(self, base: CircuitCost) -> (f64, f64) {
        (self.transistors / base.transistors, self.delay / base.delay)
    }
}

/// Number of reduction-array cells sitting at absolute column `col` for an
/// operand width `w` (rows `1..w`, row `i` spanning columns `i..i + w`).
fn reduction_cells_at(w: usize, col: usize) -> usize {
    (1..w).filter(|&i| col >= i && col < i + w).count()
}

/// Cost of a mantissa array multiplier.
pub fn mantissa_cost(spec: &ArrayMultiplierSpec, p: &CostParams) -> CircuitCost {
    let w = spec.width;
    let columns = 2 * w;

    // Partial-product generation: w² AND gates, one gate level.
    let mut transistors = (w * w) as f64 * p.and_transistors;
    let mut delay = p.and_delay;

    // Reduction cells, column by column.
    let mut reduction_delay: f64 = 0.0;
    for col in 0..columns {
        let cells = reduction_cells_at(w, col);
        if cells == 0 {
            continue;
        }
        let kind = spec.cells.kind_at(col);
        transistors += cells as f64 * (kind.transistor_count() + p.cell_overhead);
        reduction_delay = reduction_delay.max(cells as f64 * kind.sum_delay());
    }
    delay += reduction_delay;

    // Final carry-propagate adder: w + 1 cells merging the upper columns.
    let cpa_span = (w - 1)..columns;
    let cpa_kind_at = |col: usize| -> AdderKind {
        match spec.cpa {
            CpaKind::Exact => AdderKind::Exact,
            CpaKind::Ripple { kind, .. } => kind,
            CpaKind::RipplePerColumn => spec.cells.kind_at(col),
        }
    };
    let mut cpa_delay = 0.0;
    let mut last_kind = AdderKind::Exact;
    for col in cpa_span {
        let kind = cpa_kind_at(col);
        transistors += kind.transistor_count() + p.cell_overhead;
        cpa_delay += kind.cout_delay();
        last_kind = kind;
    }
    delay += cpa_delay + last_kind.sum_delay();

    CircuitCost { transistors, delay }
}

/// Cost of a full binary32 FPM built around the given mantissa core: adds the
/// 8-bit exact exponent adder, sign logic, normalization, and shared
/// datapath overhead.
pub fn fpm_cost(spec: &ArrayMultiplierSpec, p: &CostParams) -> CircuitCost {
    let mantissa = mantissa_cost(spec, p);
    let exponent_adder = 8.0 * (AdderKind::Exact.transistor_count() + p.cell_overhead);
    let exponent_delay = 8.0 * AdderKind::Exact.cout_delay() + AdderKind::Exact.sum_delay();
    let sign_xor = 10.0;
    CircuitCost {
        transistors: mantissa.transistors
            + exponent_adder
            + sign_xor
            + p.normalization_transistors
            + p.shared_transistors,
        delay: mantissa.delay.max(exponent_delay) + p.normalization_delay,
    }
}

/// Cost of the Bfloat16 FPM: 8×8 exact Booth mantissa core plus the shared
/// binary32-compatible datapath (paper §8.2).
pub fn bfloat_fpm_cost(p: &CostParams) -> CircuitCost {
    let exponent_adder = 8.0 * (AdderKind::Exact.transistor_count() + p.cell_overhead);
    let exponent_delay = 8.0 * AdderKind::Exact.cout_delay() + AdderKind::Exact.sum_delay();
    CircuitCost {
        transistors: p.booth8_transistors
            + exponent_adder
            + 10.0
            + p.normalization_transistors
            + p.shared_transistors,
        delay: p.booth8_delay.max(exponent_delay) + p.normalization_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::CellAssignment;
    use crate::heap::heap_mantissa_spec;

    fn close(value: f64, target: f64, tol: f64) -> bool {
        (value - target).abs() <= tol
    }

    #[test]
    fn mantissa_ratios_match_table9() {
        let p = CostParams::default();
        let exact = mantissa_cost(&ArrayMultiplierSpec::exact(24), &p);
        let ax = mantissa_cost(&ArrayMultiplierSpec::ax_mantissa(24), &p);
        let heap = mantissa_cost(&heap_mantissa_spec(), &p);

        let (ax_e, ax_d) = ax.normalized_to(exact);
        assert!(close(ax_e, 0.395, 0.05), "Ax-FPM mantissa energy {ax_e}");
        assert!(close(ax_d, 0.235, 0.05), "Ax-FPM mantissa delay {ax_d}");

        let (heap_e, heap_d) = heap.normalized_to(exact);
        assert!(close(heap_e, 0.49, 0.08), "HEAP mantissa energy {heap_e}");
        assert!(close(heap_d, 0.46, 0.08), "HEAP mantissa delay {heap_d}");
    }

    #[test]
    fn fpm_ratios_match_table7() {
        let p = CostParams::default();
        let exact = fpm_cost(&ArrayMultiplierSpec::exact(24), &p);
        let ax = fpm_cost(&ArrayMultiplierSpec::ax_mantissa(24), &p);
        let bf = bfloat_fpm_cost(&p);

        let (ax_e, ax_d) = ax.normalized_to(exact);
        assert!(close(ax_e, 0.487, 0.05), "Ax-FPM energy {ax_e}");
        assert!(close(ax_d, 0.29, 0.05), "Ax-FPM delay {ax_d}");

        let (bf_e, bf_d) = bf.normalized_to(exact);
        assert!(close(bf_e, 0.4, 0.05), "Bfloat16 energy {bf_e}");
        assert!(close(bf_d, 0.4, 0.05), "Bfloat16 delay {bf_d}");
    }

    #[test]
    fn approximation_only_reduces_cost() {
        let p = CostParams::default();
        let exact = mantissa_cost(&ArrayMultiplierSpec::exact(24), &p);
        for kind in AdderKind::ALL {
            let spec = ArrayMultiplierSpec {
                cells: CellAssignment::Uniform(kind),
                ..ArrayMultiplierSpec::exact(24)
            };
            let cost = mantissa_cost(&spec, &p);
            assert!(cost.transistors <= exact.transistors);
            assert!(cost.delay <= exact.delay);
        }
    }

    #[test]
    fn reduction_cell_census_is_consistent() {
        // (w - 1) rows of w cells each.
        for w in [4usize, 8, 24] {
            let total: usize = (0..2 * w).map(|c| reduction_cells_at(w, c)).sum();
            assert_eq!(total, (w - 1) * w);
        }
    }

    #[test]
    fn wider_cores_cost_more() {
        let p = CostParams::default();
        let small = mantissa_cost(&ArrayMultiplierSpec::exact(8), &p);
        let big = mantissa_cost(&ArrayMultiplierSpec::exact(24), &p);
        assert!(big.transistors > small.transistors);
        assert!(big.delay > small.delay);
    }
}
