//! Conformance suite for the int8 and int4-weight quantized backends
//! ([`da_arith::quantized`]).
//!
//! Two contracts are pinned here, for both table widths:
//!
//! 1. **The table is the multiplier.** For every [`MultiplierKind`], every
//!    one of the 256×256 [`ProductLut`] entries — and every one of the
//!    256×16 [`ProductLut4`] entries, in both operand orders — equals the
//!    scalar multiplier's product over the decoded operand pair, bit for
//!    bit — gate-level HEAP exactly like the closed-form cores.
//! 2. **The gather (or shuffle) is the loop.** [`lut_gemm`] and
//!    [`lut4_gemm`] (whatever hardware tier the dispatcher picked) are
//!    bit-identical to their portable scalar bodies and to the
//!    `*_reference` forms — the plain ascending-`k` loop of scalar
//!    `multiply` calls — over adversarial shapes: empty and single-element
//!    extents, every lane-width boundary (8/16 ± 1), ragged tails, strided
//!    accumulators, and saturating code distributions.

use da_arith::quantized::{
    lut4_gemm, lut4_gemm_reference, lut4_gemm_scalar, lut_gemm, lut_gemm_reference,
    lut_gemm_scalar, Lut4Order, ProductLut, ProductLut4, QuantParams, QuantParams4,
};
use da_arith::MultiplierKind;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Quantizer pairs covering asymmetric, symmetric-ish, positive-only, and
/// tiny/huge-scale ranges.
fn param_pairs() -> Vec<(QuantParams, QuantParams)> {
    vec![
        (QuantParams::from_range(-1.0, 1.0), QuantParams::from_range(0.0, 4.0)),
        (QuantParams::from_range(-0.37, 2.9), QuantParams::from_range(-5.0, 0.125)),
        (QuantParams::from_range(0.0, 1e-3), QuantParams::from_range(-1e4, 3e4)),
    ]
}

/// Acceptance criterion: the exhaustive LUT-vs-scalar sweep, every kind.
#[test]
fn every_lut_entry_equals_the_scalar_multiplier_exhaustively() {
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        let (a, b) = (QuantParams::from_range(-2.0, 2.0), QuantParams::from_range(0.0, 1.0));
        let lut = ProductLut::build(&*m, a, b);
        for qa in 0..=255u8 {
            let av = a.dequantize(qa);
            for qb in 0..=255u8 {
                let want = m.multiply(av, b.dequantize(qb));
                let got = lut.product(qa, qb);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{kind}: entry ({qa}, {qb}) = {got:?}, scalar product {want:?}"
                );
            }
        }
    }
}

/// The exhaustive sweep again for a second, asymmetric quantizer pair on
/// the kinds with closed forms (cheap), so scale/zero-point handling is not
/// tested at a single operating point.
#[test]
fn lut_exactness_holds_across_quantizer_pairs() {
    for kind in [MultiplierKind::Exact, MultiplierKind::AxFpm, MultiplierKind::Bfloat16] {
        let m = kind.build();
        for (a, b) in param_pairs() {
            let lut = ProductLut::build(&*m, a, b);
            for qa in (0..=255u8).step_by(3) {
                let av = a.dequantize(qa);
                for qb in 0..=255u8 {
                    let want = m.multiply(av, b.dequantize(qb));
                    assert_eq!(
                        lut.product(qa, qb).to_bits(),
                        want.to_bits(),
                        "{kind} {a:?}/{b:?} at ({qa}, {qb})"
                    );
                }
            }
        }
    }
}

/// Codes with saturation pressure: heavy mass at 0, 255, and the zero point.
fn adversarial_codes(n: usize, zp: u8, r: &mut rand::rngs::StdRng) -> Vec<u8> {
    (0..n)
        .map(|_| match r.gen_range(0..6) {
            0 => 0u8,
            1 => 255,
            2 => zp,
            _ => r.gen_range(0..=255),
        })
        .collect()
}

/// Property test: LUT-GEMM output is bit-identical to the scalar quantized
/// reference GEMM — for the dispatched kernel *and* the portable scalar
/// body, over lane-boundary shapes, ragged tails, and strided accumulators,
/// for every multiplier kind.
#[test]
fn lut_gemm_is_bit_identical_to_scalar_reference() {
    let mut r = rng(7);
    // (rows, k, tile): row tails (1, 2, 3, 5), k tails (0..=5 mod 4), and
    // tile widths straddling the 8- and 16-lane gather widths.
    let shapes = [
        (1usize, 1usize, 1usize),
        (1, 7, 15),
        (2, 4, 16),
        (3, 9, 17),
        (4, 12, 8),
        (5, 6, 31),
        (6, 150, 64),
        (16, 25, 33),
    ];
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        let a_params = QuantParams::from_range(-1.5, 1.5);
        let b_params = QuantParams::from_range(-0.25, 3.0);
        let lut = ProductLut::build(&*m, a_params, b_params);
        for &(rows, k, tile) in &shapes {
            let stride = tile + 3; // strided output rows
            let qa = adversarial_codes(rows * k, a_params.zero_point(), &mut r);
            let b = adversarial_codes(k * tile, b_params.zero_point(), &mut r);
            let seed: Vec<f32> = (0..rows * stride).map(|i| (i as f32) * 0.125 - 2.0).collect();

            let mut acc_ref = seed.clone();
            lut_gemm_reference(
                &*m,
                a_params,
                b_params,
                &qa,
                rows,
                k,
                &b,
                tile,
                &mut acc_ref,
                stride,
            );
            let mut acc_gemm = seed.clone();
            lut_gemm(&lut, &qa, rows, k, &b, tile, &mut acc_gemm, stride);
            let mut acc_scalar = seed.clone();
            lut_gemm_scalar(&lut, &qa, rows, k, &b, tile, &mut acc_scalar, stride);

            for i in 0..rows * stride {
                assert_eq!(
                    acc_gemm[i].to_bits(),
                    acc_ref[i].to_bits(),
                    "{kind} {rows}x{k}x{tile}@{stride}: dispatched kernel at {i}"
                );
                assert_eq!(
                    acc_scalar[i].to_bits(),
                    acc_ref[i].to_bits(),
                    "{kind} {rows}x{k}x{tile}@{stride}: scalar kernel at {i}"
                );
            }
        }
    }
}

/// Zero-extent GEMMs are no-ops that leave the accumulator untouched.
#[test]
fn empty_extents_are_noops() {
    let m = MultiplierKind::AxFpm.build();
    let p = QuantParams::from_range(-1.0, 1.0);
    let lut = ProductLut::build(&*m, p, p);
    let mut acc = vec![1.5f32; 6];
    lut_gemm(&lut, &[], 0, 3, &[0; 6], 2, &mut acc, 2); // zero rows
    lut_gemm(&lut, &[], 2, 0, &[], 3, &mut acc, 3); // zero k
    lut_gemm(&lut, &[0, 0], 2, 1, &[], 0, &mut acc, 3); // zero tile
    assert!(acc.iter().all(|&v| v == 1.5), "untouched: {acc:?}");
}

/// Strided accumulation must leave the bytes between output rows alone.
#[test]
fn strided_rows_leave_gaps_untouched() {
    let m = MultiplierKind::Heap.build();
    let a = QuantParams::from_range(-1.0, 1.0);
    let b = QuantParams::from_range(0.0, 2.0);
    let lut = ProductLut::build(&*m, a, b);
    let (rows, k, tile, stride) = (3usize, 5usize, 4usize, 7usize);
    let mut r = rng(9);
    let qa = adversarial_codes(rows * k, a.zero_point(), &mut r);
    let bc = adversarial_codes(k * tile, b.zero_point(), &mut r);
    let mut acc = vec![9.25f32; rows * stride];
    lut_gemm(&lut, &qa, rows, k, &bc, tile, &mut acc, stride);
    for row in 0..rows {
        for gap in tile..stride {
            if row * stride + gap < acc.len() {
                assert_eq!(acc[row * stride + gap], 9.25, "gap ({row}, {gap}) touched");
            }
        }
    }
}

/// Int4 acceptance criterion: the exhaustive 256×16 table-vs-scalar sweep,
/// every kind, both operand orders.
#[test]
fn every_lut4_entry_equals_the_scalar_multiplier_exhaustively() {
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        let act = QuantParams::from_range(-2.0, 2.0);
        let w = QuantParams4::from_range(-1.0, 1.5);
        for order in [Lut4Order::WeightsLeft, Lut4Order::ActivationsLeft] {
            let lut = ProductLut4::build(&*m, act, w, order);
            for qa in 0..=255u8 {
                let av = act.dequantize(qa);
                for qw in 0..16u8 {
                    let wv = w.dequantize(qw);
                    let want = match order {
                        Lut4Order::WeightsLeft => m.multiply(wv, av),
                        Lut4Order::ActivationsLeft => m.multiply(av, wv),
                    };
                    let got = lut.product(qa, qw);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kind} {order:?}: entry ({qa}, {qw}) = {got:?}, scalar product {want:?}"
                    );
                }
            }
        }
    }
}

/// Int4 weight codes with saturation pressure: mass at 0, 15, and the weight
/// zero point, plus garbage in the high nibble (which every path must mask).
fn adversarial_codes4(n: usize, zp: u8, r: &mut rand::rngs::StdRng) -> Vec<u8> {
    (0..n)
        .map(|_| {
            let lo = match r.gen_range(0..6) {
                0 => 0u8,
                1 => 15,
                2 => zp,
                _ => r.gen_range(0..16),
            };
            lo | (r.gen::<u8>() & 0xF0)
        })
        .collect()
}

/// Property test: the int4 shuffle GEMM is bit-identical to the scalar
/// quantized reference — dispatched kernel *and* portable scalar body — over
/// the same adversarial shape grid as the int8 suite, for every multiplier
/// kind and both operand orders.
#[test]
fn lut4_gemm_is_bit_identical_to_scalar_reference() {
    let mut r = rng(13);
    let shapes = [
        (1usize, 1usize, 1usize),
        (1, 7, 15),
        (2, 4, 16),
        (3, 9, 17),
        (4, 12, 8),
        (5, 6, 31),
        (6, 150, 64),
        (16, 25, 33),
    ];
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        let act = QuantParams::from_range(-1.5, 1.5);
        let w = QuantParams4::from_range(-0.25, 3.0);
        for order in [Lut4Order::WeightsLeft, Lut4Order::ActivationsLeft] {
            let lut = ProductLut4::build(&*m, act, w, order);
            for &(rows, k, tile) in &shapes {
                let stride = tile + 3;
                let qa = adversarial_codes(rows * k, act.zero_point(), &mut r);
                let qw = adversarial_codes4(k * tile, w.zero_point(), &mut r);
                let seed: Vec<f32> = (0..rows * stride).map(|i| (i as f32) * 0.125 - 2.0).collect();

                let mut acc_ref = seed.clone();
                lut4_gemm_reference(
                    &*m,
                    act,
                    w,
                    order,
                    &qa,
                    rows,
                    k,
                    &qw,
                    tile,
                    &mut acc_ref,
                    stride,
                );
                let mut acc_gemm = seed.clone();
                lut4_gemm(&lut, &qa, rows, k, &qw, tile, &mut acc_gemm, stride);
                let mut acc_scalar = seed.clone();
                lut4_gemm_scalar(&lut, &qa, rows, k, &qw, tile, &mut acc_scalar, stride);

                for i in 0..rows * stride {
                    assert_eq!(
                        acc_gemm[i].to_bits(),
                        acc_ref[i].to_bits(),
                        "{kind} {order:?} {rows}x{k}x{tile}@{stride}: dispatched kernel at {i}"
                    );
                    assert_eq!(
                        acc_scalar[i].to_bits(),
                        acc_ref[i].to_bits(),
                        "{kind} {order:?} {rows}x{k}x{tile}@{stride}: scalar kernel at {i}"
                    );
                }
            }
        }
    }
}

/// Zero-extent int4 GEMMs are no-ops; strided int4 rows leave gaps alone.
#[test]
fn lut4_empty_extents_and_stride_gaps_are_untouched() {
    let m = MultiplierKind::Heap.build();
    let act = QuantParams::from_range(-1.0, 1.0);
    let w = QuantParams4::from_range(0.0, 2.0);
    let lut = ProductLut4::build(&*m, act, w, Lut4Order::WeightsLeft);
    let mut acc = vec![1.5f32; 6];
    lut4_gemm(&lut, &[], 0, 3, &[0; 6], 2, &mut acc, 2); // zero rows
    lut4_gemm(&lut, &[], 2, 0, &[], 3, &mut acc, 3); // zero k
    lut4_gemm(&lut, &[0, 0], 2, 1, &[], 0, &mut acc, 3); // zero tile
    assert!(acc.iter().all(|&v| v == 1.5), "untouched: {acc:?}");

    let (rows, k, tile, stride) = (3usize, 5usize, 4usize, 7usize);
    let mut r = rng(11);
    let qa = adversarial_codes(rows * k, act.zero_point(), &mut r);
    let qw = adversarial_codes4(k * tile, w.zero_point(), &mut r);
    let mut acc = vec![9.25f32; rows * stride];
    lut4_gemm(&lut, &qa, rows, k, &qw, tile, &mut acc, stride);
    for row in 0..rows {
        for gap in tile..stride {
            if row * stride + gap < acc.len() {
                assert_eq!(acc[row * stride + gap], 9.25, "gap ({row}, {gap}) touched");
            }
        }
    }
}

/// The quantized reference respects operand order: the `a` side is the
/// multiplier's left operand (AMA5 is not commutative, so swapping sides
/// must show up).
#[test]
fn lut_sides_follow_operand_order() {
    let m = MultiplierKind::AxFpm.build();
    let a = QuantParams::from_range(0.0, 3.0);
    let b = QuantParams::from_range(0.0, 3.0);
    let ab = ProductLut::build(&*m, a, b);
    let ba = ProductLut::build(&*m, b, a);
    let (qa, qb) = (a.quantize(1.7), b.quantize(2.3));
    assert_eq!(
        ab.product(qa, qb).to_bits(),
        m.multiply(a.dequantize(qa), b.dequantize(qb)).to_bits()
    );
    // Ax-FPM products depend on which operand feeds the mantissa closed
    // form; the two orders genuinely differ for these operands.
    assert_ne!(
        ab.product(qa, qb).to_bits(),
        ba.product(qb, qa).to_bits(),
        "expected non-commutative products for 1.7 x 2.3"
    );
}
