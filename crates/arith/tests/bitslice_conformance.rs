//! Conformance suite for the bit-sliced gate-level backend.
//!
//! Two layers of evidence that the word-parallel plane sweep cannot drift
//! from the per-cell simulation it replaces:
//!
//! 1. **Truth-table ground truth.** `eval_tt` (special-cased boolean forms)
//!    and `eval_tt_minterms` (generic expansion) are checked against a
//!    bit-by-bit table lookup for **all 256 truth tables** over adversarial
//!    word patterns (all-zeros, all-ones, alternating masks at every stride,
//!    single set bits at the word edges) and pseudorandom words. The two
//!    implementations must agree with the reference and with each other on
//!    every bit.
//! 2. **Bitsliced-vs-scalar golden vectors.** For the HEAP mantissa core and
//!    **every ablation wiring** (`PortMap::ALL` over AMA5 cells) plus every
//!    uniform cell kind, all three block entry points of [`BitslicedArray`]
//!    (`multiply_block`, `multiply_block_shared`, `multiply_block8_shared` —
//!    the last under runtime SIMD dispatch) must reproduce
//!    [`ArrayMultiplier::multiply`] lane for lane, and the gate-level
//!    [`FloatMultiplier`] `axpy_fused` batch path must reproduce the scalar
//!    `multiply` accumulation bit for bit.

use da_arith::adders::AdderKind;
use da_arith::bitslice::{eval_tt, eval_tt_minterms};
use da_arith::fpm::{FloatMultiplier, SIGNIFICAND_BITS};
use da_arith::heap::{heap_mantissa_spec, heap_multiplier};
use da_arith::{
    ArrayMultiplier, ArrayMultiplierSpec, BitslicedArray, CellAssignment, CpaKind, Multiplier,
    PortMap, BITSLICE_LANES, BITSLICE_WIDE, BITSLICE_WIDE_LANES,
};

/// Deterministic 64-bit stream (splitmix64) — no RNG dependency needed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Word patterns chosen to hit every branch of the special-cased boolean
/// forms: constants, complements, every power-of-two stripe stride, and
/// bits at both word edges.
const ADVERSARIAL_WORDS: [u64; 12] = [
    0,
    !0,
    0xAAAA_AAAA_AAAA_AAAA,
    0x5555_5555_5555_5555,
    0xCCCC_CCCC_CCCC_CCCC,
    0x3333_3333_3333_3333,
    0xF0F0_F0F0_F0F0_F0F0,
    0x00FF_00FF_00FF_00FF,
    0x0000_FFFF_0000_FFFF,
    0xFFFF_FFFF_0000_0000,
    1,
    1 << 63,
];

/// Bit-by-bit table lookup: the definition both implementations must match.
fn eval_tt_reference(tt: u8, a: u64, b: u64, cin: u64) -> u64 {
    let mut out = 0u64;
    for bit in 0..64 {
        let idx = (((cin >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((a >> bit) & 1);
        out |= ((u64::from(tt) >> idx) & 1) << bit;
    }
    out
}

#[test]
fn every_truth_table_matches_the_bitwise_reference_on_adversarial_words() {
    for tt in 0..=255u8 {
        for &a in &ADVERSARIAL_WORDS {
            for &b in &ADVERSARIAL_WORDS {
                for &cin in &ADVERSARIAL_WORDS {
                    let want = eval_tt_reference(tt, a, b, cin);
                    assert_eq!(
                        eval_tt(tt, a, b, cin),
                        want,
                        "eval_tt(tt={tt:#010b}, a={a:#x}, b={b:#x}, cin={cin:#x})"
                    );
                    assert_eq!(
                        eval_tt_minterms(tt, a, b, cin),
                        want,
                        "eval_tt_minterms(tt={tt:#010b}, a={a:#x}, b={b:#x}, cin={cin:#x})"
                    );
                }
            }
        }
    }
}

#[test]
fn every_truth_table_matches_the_bitwise_reference_on_random_words() {
    let mut state = 0x1357_9BDF_2468_ACE0u64;
    for tt in 0..=255u8 {
        for _ in 0..32 {
            let (a, b, cin) = (splitmix(&mut state), splitmix(&mut state), splitmix(&mut state));
            let want = eval_tt_reference(tt, a, b, cin);
            assert_eq!(eval_tt(tt, a, b, cin), want, "eval_tt tt={tt:#010b}");
            assert_eq!(eval_tt_minterms(tt, a, b, cin), want, "minterms tt={tt:#010b}");
        }
    }
}

/// The specs the golden vectors cover: the pinned HEAP core, the canonical
/// AMA5 core under **every** port-map wiring (the rotation ablation's full
/// orbit), and every uniform cell kind (each distinct sum/carry truth-table
/// pair) under the canonical wiring.
fn golden_specs() -> Vec<(String, ArrayMultiplierSpec)> {
    let mut specs = vec![("heap".to_string(), heap_mantissa_spec())];
    for pm in PortMap::ALL {
        let mut spec = ArrayMultiplierSpec::ax_mantissa(12);
        spec.port_map = pm;
        specs.push((format!("ama5-{pm}"), spec));
    }
    for kind in [
        AdderKind::Exact,
        AdderKind::Ama1,
        AdderKind::Ama2,
        AdderKind::Ama3,
        AdderKind::Ama4,
        AdderKind::Ama5,
    ] {
        let spec = ArrayMultiplierSpec {
            width: 10,
            cells: CellAssignment::Uniform(kind),
            port_map: PortMap::PpSumCarry,
            cpa: CpaKind::Ripple { kind, swap: false },
        };
        specs.push((format!("uniform-{kind:?}"), spec));
    }
    specs
}

#[test]
fn bitsliced_blocks_match_the_scalar_array_for_heap_and_every_wiring() {
    let mut state = 0xBEEF_CAFE_F00D_D00Du64;
    for (name, spec) in golden_specs() {
        let scalar = ArrayMultiplier::new(spec.clone());
        let sliced = BitslicedArray::new(&spec);
        let mask = (1u64 << spec.width) - 1;

        // multiply_block: 64 independent pairs.
        let mut a = [0u64; BITSLICE_LANES];
        let mut b = [0u64; BITSLICE_LANES];
        for l in 0..BITSLICE_LANES {
            a[l] = splitmix(&mut state) & mask;
            b[l] = splitmix(&mut state) & mask;
        }
        // Pin the corners into fixed lanes: all-zeros, all-ones, and the
        // mixed extremes stress the carry chains hardest.
        a[0] = 0;
        b[0] = 0;
        a[1] = mask;
        b[1] = mask;
        a[2] = mask;
        b[2] = 1;
        a[3] = 1 << (spec.width - 1);
        b[3] = mask;
        let prod = sliced.multiply_block(&a, &b);
        for l in 0..BITSLICE_LANES {
            assert_eq!(
                prod[l],
                scalar.multiply(a[l], b[l]),
                "{name}: multiply_block lane {l} (a={:#x}, b={:#x})",
                a[l],
                b[l]
            );
        }

        // multiply_block_shared: one operand broadcast over the lanes.
        for shared in [0, 1, mask, mask >> 1, splitmix(&mut state) & mask] {
            let prod = sliced.multiply_block_shared(shared, &b);
            for l in 0..BITSLICE_LANES {
                assert_eq!(
                    prod[l],
                    scalar.multiply(shared, b[l]),
                    "{name}: multiply_block_shared lane {l} (a={shared:#x}, b={:#x})",
                    b[l]
                );
            }
        }

        // multiply_block8_shared: eight fused sub-blocks through the
        // runtime-dispatched (AVX-512/AVX2/scalar) sweep.
        let mut a8 = [0u64; BITSLICE_WIDE];
        let mut b8 = [0u64; BITSLICE_WIDE_LANES];
        for (t, slot) in a8.iter_mut().enumerate() {
            *slot = if t == 0 { 0 } else { splitmix(&mut state) & mask };
        }
        a8[BITSLICE_WIDE - 1] = mask;
        for slot in b8.iter_mut() {
            *slot = splitmix(&mut state) & mask;
        }
        let prod = sliced.multiply_block8_shared(&a8, &b8);
        for t in 0..BITSLICE_WIDE {
            for l in 0..BITSLICE_LANES {
                let i = t * BITSLICE_LANES + l;
                assert_eq!(
                    prod[i],
                    scalar.multiply(a8[t], b8[i]),
                    "{name}: multiply_block8_shared sub-block {t} lane {l}"
                );
            }
        }
    }
}

/// Deterministic finite f32 stream spanning normals, zeros, and subnormals —
/// the operand classes the fused batch path routes differently.
fn f32_stream(state: &mut u64, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| match i % 16 {
            0 => 0.0,
            7 => -0.0,
            11 => f32::from_bits(0x0000_0001), // subnormal
            _ => {
                let r = splitmix(state);
                let frac = (r & 0x7F_FFFF) as u32;
                let exp = 110 + (r >> 32) % 36; // well inside the normal range
                f32::from_bits(((r >> 63) as u32) << 31 | (exp as u32) << 23 | frac)
            }
        })
        .collect()
}

#[test]
fn gate_level_axpy_fused_matches_scalar_multiply_for_heap_and_every_wiring() {
    let mut mults: Vec<(String, FloatMultiplier)> = vec![("heap".to_string(), heap_multiplier())];
    for pm in PortMap::ALL {
        let mut spec = ArrayMultiplierSpec::ax_mantissa(SIGNIFICAND_BITS);
        spec.port_map = pm;
        mults.push((format!("ama5-{pm}"), FloatMultiplier::with_core("wiring", spec)));
    }

    let mut state = 0x0DDB_A11D_EADB_EEF1u64;
    // 19 terms × 70 outputs: a non-multiple-of-8 term count (exercises the
    // tail after the fused 8-wide batches) against a non-multiple-of-64
    // output width (exercises partial lane fills).
    let (terms, width) = (19usize, 70usize);
    let a = f32_stream(&mut state, terms);
    let b = f32_stream(&mut state, terms * width);

    for (name, mult) in &mults {
        let mut fused = vec![0.0f32; width];
        mult.axpy_fused(&a, &b, &mut fused);

        let mut reference = vec![0.0f32; width];
        for (t, &x) in a.iter().enumerate() {
            for (j, acc) in reference.iter_mut().enumerate() {
                *acc += mult.multiply(x, b[t * width + j]);
            }
        }
        for j in 0..width {
            assert_eq!(
                fused[j].to_bits(),
                reference[j].to_bits(),
                "{name}: axpy_fused output {j} diverged from the scalar accumulation"
            );
        }
    }
}
