//! Golden-vector regression corpus: checked-in bit-exact outputs for every
//! [`MultiplierKind`], replayed on each test run.
//!
//! The paper's defense *is* the arithmetic: a kernel refactor that changes
//! even one ULP of an approximate product changes the defensive
//! perturbation. The property tests pin the batched kernels to the scalar
//! `multiply`; this corpus pins the scalar `multiply` itself (and the
//! left-to-right `dot_accumulate` reduction) to bits captured at
//! `crates/arith/tests/golden/` — so a future refactor cannot silently
//! change the approximation and still pass.
//!
//! Corpus construction (deterministic, no RNG dependency):
//! * every ordered pair of 24 special operands — ±0, ±1, subnormal
//!   min/max, normal min, max finite, ±∞, quiet/signaling NaNs, values near
//!   1, and overflow-prone magnitudes — exercising the special-value
//!   branches of every datapath;
//! * 256 pseudorandom bit-pattern pairs from a fixed-seed SplitMix64 walk
//!   (raw `u32` patterns, so NaNs/infinities/subnormals appear here too);
//! * 24 dot products of length-16 operand windows sliding over the same
//!   stream, pinning the accumulation order.
//!
//! Comparison is bit-exact, with one documented exception: when the
//! expected *and* actual values are both NaN they match regardless of
//! payload. IEEE 754 leaves NaN payload propagation to the implementation,
//! so native-backed paths (`exact`, `bfloat16`) may legally differ across
//! hardware; sign/exponent behavior of every non-NaN special stays pinned.
//!
//! Regenerating after an *intentional* semantic change:
//! `DA_GOLDEN_REGEN=1 cargo test -p da_arith --test golden_vectors --
//! --ignored` rewrites the files in place; re-run the normal suite and
//! commit the diff.

use std::fmt::Write as _;
use std::path::PathBuf;

use da_arith::MultiplierKind;

/// Special `f32` bit patterns (see module docs).
const SPECIALS: [u32; 24] = [
    0x0000_0000, // +0
    0x8000_0000, // -0
    0x3F80_0000, // 1.0
    0xBF80_0000, // -1.0
    0x3F00_0000, // 0.5
    0x4049_0FDB, // pi
    0xC2F6_E979, // -123.456
    0x0000_0001, // smallest subnormal
    0x8000_0001, // -smallest subnormal
    0x007F_FFFF, // largest subnormal
    0x0080_0000, // smallest normal
    0x0100_0000, // small normal
    0x3F7F_FFFF, // largest value below 1
    0x4B80_0000, // 2^24
    0x7F7F_FFFF, // max finite
    0xFF7F_FFFF, // -max finite
    0x7E80_0000, // 2^126 (products overflow)
    0x3727_C5AC, // ~1e-5
    0x322B_CC77, // ~1e-8
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x7FC0_0000, // canonical qNaN
    0xFFC0_0001, // negative NaN with payload
    0x7F80_0001, // signaling NaN
];

const LCG_PAIRS: usize = 256;
const DOT_CASES: usize = 24;
const DOT_LEN: usize = 16;

/// SplitMix64: a fixed-seed deterministic bit-pattern stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u32
    }
}

/// The scalar-product operand pairs, in corpus order.
fn mul_pairs() -> Vec<(f32, f32)> {
    let mut pairs = Vec::new();
    for &a in &SPECIALS {
        for &b in &SPECIALS {
            pairs.push((f32::from_bits(a), f32::from_bits(b)));
        }
    }
    let mut rng = SplitMix64(0xDA_2021);
    for _ in 0..LCG_PAIRS {
        pairs.push((f32::from_bits(rng.next_u32()), f32::from_bits(rng.next_u32())));
    }
    pairs
}

/// The dot-product operand vectors, in corpus order. Windows slide over a
/// stream that splices specials in among pseudorandom patterns.
fn dot_cases() -> Vec<(Vec<f32>, Vec<f32>)> {
    let mut rng = SplitMix64(0xD07_CA5E);
    let mut stream: Vec<f32> = Vec::new();
    for i in 0..DOT_CASES * DOT_LEN * 2 {
        // Every 7th element is a special, so reductions hit NaN/Inf/zero
        // part-way through accumulation.
        if i % 7 == 3 {
            stream.push(f32::from_bits(SPECIALS[i % SPECIALS.len()]));
        } else {
            stream.push(f32::from_bits(rng.next_u32()));
        }
    }
    (0..DOT_CASES)
        .map(|c| {
            let at = c * DOT_LEN * 2;
            (stream[at..at + DOT_LEN].to_vec(), stream[at + DOT_LEN..at + 2 * DOT_LEN].to_vec())
        })
        .collect()
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn mul_file(kind: MultiplierKind) -> PathBuf {
    golden_dir().join(format!("mul_{}.txt", kind.as_str()))
}

fn dot_file(kind: MultiplierKind) -> PathBuf {
    golden_dir().join(format!("dot_{}.txt", kind.as_str()))
}

/// Render the corpus for one kind: `a_bits b_bits product_bits` per line.
fn render_mul(kind: MultiplierKind) -> String {
    let m = kind.build();
    let mut out = String::new();
    writeln!(out, "# golden scalar products for `{}` (a_bits b_bits product_bits, hex)", kind)
        .unwrap();
    for (a, b) in mul_pairs() {
        writeln!(out, "{:08x} {:08x} {:08x}", a.to_bits(), b.to_bits(), m.multiply(a, b).to_bits())
            .unwrap();
    }
    out
}

/// Render the dot corpus for one kind: `sum_bits` per line (operands are
/// reconstructed deterministically by [`dot_cases`]).
fn render_dot(kind: MultiplierKind) -> String {
    let m = kind.build();
    let mut out = String::new();
    writeln!(out, "# golden dot_accumulate sums for `{}` (sum_bits, hex)", kind).unwrap();
    for (a, b) in dot_cases() {
        writeln!(out, "{:08x}", m.dot_accumulate(&a, &b).to_bits()).unwrap();
    }
    out
}

/// Bitwise equality with the documented NaN exception.
fn bits_match(want: u32, got: u32) -> bool {
    want == got || (f32::from_bits(want).is_nan() && f32::from_bits(got).is_nan())
}

fn read_corpus(path: &PathBuf) -> Vec<Vec<u32>> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden corpus {} ({e}); run `DA_GOLDEN_REGEN=1 cargo test -p da_arith \
             --test golden_vectors -- --ignored` to generate it",
            path.display()
        )
    });
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            l.split_whitespace()
                .map(|w| u32::from_str_radix(w, 16).expect("hex word"))
                .collect::<Vec<u32>>()
        })
        .collect()
}

#[test]
fn scalar_products_replay_bit_exactly_for_every_kind() {
    let pairs = mul_pairs();
    for kind in MultiplierKind::ALL {
        let lines = read_corpus(&mul_file(kind));
        assert_eq!(lines.len(), pairs.len(), "{kind}: corpus length drifted — regenerate");
        let m = kind.build();
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.len(), 3, "{kind} line {i}: malformed");
            let (a_bits, b_bits, want) = (line[0], line[1], line[2]);
            // The corpus stores its own operands: if operand construction
            // ever drifts, fail on the inputs, not just the outputs.
            assert_eq!(a_bits, pairs[i].0.to_bits(), "{kind} case {i}: operand a drifted");
            assert_eq!(b_bits, pairs[i].1.to_bits(), "{kind} case {i}: operand b drifted");
            let got = m.multiply(f32::from_bits(a_bits), f32::from_bits(b_bits)).to_bits();
            assert!(
                bits_match(want, got),
                "{kind} case {i}: multiply({}, {}) = {:08x}, golden {:08x}",
                f32::from_bits(a_bits),
                f32::from_bits(b_bits),
                got,
                want
            );
        }
    }
}

#[test]
fn dot_accumulate_replays_bit_exactly_for_every_kind() {
    let cases = dot_cases();
    for kind in MultiplierKind::ALL {
        let lines = read_corpus(&dot_file(kind));
        assert_eq!(lines.len(), cases.len(), "{kind}: corpus length drifted — regenerate");
        let m = kind.build();
        for (i, line) in lines.iter().enumerate() {
            let want = line[0];
            let got = m.dot_accumulate(&cases[i].0, &cases[i].1).to_bits();
            assert!(bits_match(want, got), "{kind} dot case {i}: got {got:08x}, golden {want:08x}");
        }
    }
}

/// The slice-level batched API must agree with the golden scalar corpus too
/// (one `multiply_slice` sweep over the whole corpus per kind).
#[test]
fn multiply_slice_agrees_with_the_golden_corpus() {
    let pairs = mul_pairs();
    let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
    for kind in MultiplierKind::ALL {
        let lines = read_corpus(&mul_file(kind));
        let m = kind.build();
        let mut out = vec![0.0f32; xs.len()];
        m.multiply_slice(&xs, &ys, &mut out);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                bits_match(line[2], out[i].to_bits()),
                "{kind} case {i}: multiply_slice diverged from golden corpus"
            );
        }
    }
}

/// Regenerator (run explicitly after an intentional semantic change):
/// `DA_GOLDEN_REGEN=1 cargo test -p da_arith --test golden_vectors -- --ignored`
///
/// Gated on `DA_GOLDEN_REGEN` so a blanket `-- --include-ignored` run can
/// never rewrite the corpus out from under the replay tests in the same
/// process (which would race the reads and make the replay vacuous).
#[test]
#[ignore = "rewrites the golden corpus in place"]
fn regenerate_golden_corpus() {
    if std::env::var("DA_GOLDEN_REGEN").as_deref() != Ok("1") {
        eprintln!("regenerate_golden_corpus: set DA_GOLDEN_REGEN=1 to rewrite the corpus; no-op");
        return;
    }
    std::fs::create_dir_all(golden_dir()).expect("create golden dir");
    for kind in MultiplierKind::ALL {
        std::fs::write(mul_file(kind), render_mul(kind)).expect("write mul corpus");
        std::fs::write(dot_file(kind), render_dot(kind)).expect("write dot corpus");
    }
}
