//! Property-based tests of the gate-level arithmetic invariants.

use proptest::prelude::*;

use da_arith::array::{ArrayMultiplier, ArrayMultiplierSpec, CellAssignment, CpaKind, PortMap};
use da_arith::bfloat::{is_bf16, to_bf16, BfloatMultiplier};
use da_arith::fpm::FloatMultiplier;
use da_arith::heap::heap_multiplier;
use da_arith::{AdderKind, Multiplier};

proptest! {
    /// The exact gate-level array equals integer multiplication for every
    /// width, wiring, and CPA style.
    #[test]
    fn exact_array_is_integer_multiply(
        a in 0u64..(1 << 16),
        b in 0u64..(1 << 16),
        pm_idx in 0usize..6,
        ripple_cpa in any::<bool>(),
    ) {
        let spec = ArrayMultiplierSpec {
            width: 16,
            cells: CellAssignment::Uniform(AdderKind::Exact),
            port_map: PortMap::ALL[pm_idx],
            cpa: if ripple_cpa {
                CpaKind::Ripple { kind: AdderKind::Exact, swap: false }
            } else {
                CpaKind::Exact
            },
        };
        prop_assert_eq!(ArrayMultiplier::new(spec).multiply(a, b), a * b);
    }

    /// The AMA5 inflation law (DESIGN.md §4): for normalized operands,
    /// `exact <= approx <= 2 * exact`.
    #[test]
    fn ama5_inflation_law(a in 0u64..(1 << 12), b in 0u64..(1 << 12)) {
        let w = 12;
        let a = a | (1 << (w - 1));
        let b = b | (1 << (w - 1));
        let m = ArrayMultiplier::new(ArrayMultiplierSpec::ax_mantissa(w));
        let approx = m.multiply(a & ((1 << w) - 1), b & ((1 << w) - 1));
        let exact = (a & ((1 << w) - 1)) * (b & ((1 << w) - 1));
        prop_assert!(approx >= exact);
        prop_assert!(approx <= 2 * exact);
    }

    /// The Ax-FPM never flips signs, never turns finite into NaN, and obeys
    /// the 2x inflation bound on normal values.
    #[test]
    fn ax_fpm_is_sign_safe_and_bounded(
        a in -1.0f32..1.0,
        b in -1.0f32..1.0,
    ) {
        let m = FloatMultiplier::ax_fpm();
        let r = m.multiply(a, b);
        let exact = a * b;
        prop_assert!(r.is_finite());
        if exact != 0.0 && r != 0.0 {
            prop_assert_eq!(r.is_sign_negative(), exact.is_sign_negative());
            prop_assert!(r.abs() >= exact.abs() * 0.999);
            prop_assert!(r.abs() <= exact.abs() * 2.0 * 1.001);
        }
    }

    /// The gate-level exact FPM is within one truncation ulp of native f32.
    #[test]
    fn exact_fpm_tracks_native_multiply(
        a in 0.001f32..100.0,
        b in 0.001f32..100.0,
    ) {
        let m = FloatMultiplier::exact();
        let r = m.multiply(a, b);
        let native = a * b;
        let ulp = f32::from_bits(native.to_bits() + 1) - native;
        prop_assert!((r - native).abs() <= ulp.abs() * 1.01, "r={r} native={native}");
    }

    /// HEAP error is bounded well below Ax-FPM's 2x corner.
    #[test]
    fn heap_relative_error_is_moderate(
        a in 0.01f32..1.0,
        b in 0.01f32..1.0,
    ) {
        let m = heap_multiplier();
        let r = m.multiply(a, b) as f64;
        let exact = (a * b) as f64;
        prop_assert!((r - exact).abs() / exact < 0.75, "r={r} exact={exact}");
    }

    /// Bfloat16 truncation: idempotent, magnitude-reducing, and the
    /// multiplier's output is always representable.
    #[test]
    fn bfloat_truncation_laws(x in -1000.0f32..1000.0, y in -1000.0f32..1000.0) {
        let t = to_bf16(x);
        prop_assert!(is_bf16(t));
        prop_assert_eq!(to_bf16(t), t);
        prop_assert!(t.abs() <= x.abs());
        let r = BfloatMultiplier.multiply(x, y);
        prop_assert!(is_bf16(r));
        prop_assert!(r.abs() <= (x * y).abs() + f32::EPSILON);
    }

    /// Multipliers are pure functions (same inputs, same outputs).
    #[test]
    fn multipliers_are_deterministic(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        for kind in da_arith::MultiplierKind::ALL {
            let m = kind.build();
            prop_assert_eq!(m.multiply(a, b).to_bits(), m.multiply(a, b).to_bits());
        }
    }

    /// Every adder design's bit-sliced evaluation matches its scalar truth
    /// table on random words (lane independence).
    #[test]
    fn bitslice_lane_independence(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        for kind in AdderKind::ALL {
            let sum = da_arith::bitslice::eval_tt(kind.sum_tt(), a, b, c);
            let cout = da_arith::bitslice::eval_tt(kind.cout_tt(), a, b, c);
            for lane in [0usize, 17, 41, 63] {
                let (ls, lc) = kind.eval(
                    ((a >> lane) & 1) as u8,
                    ((b >> lane) & 1) as u8,
                    ((c >> lane) & 1) as u8,
                );
                prop_assert_eq!(((sum >> lane) & 1) as u8, ls);
                prop_assert_eq!(((cout >> lane) & 1) as u8, lc);
            }
        }
    }
}
