//! Lane-boundary bit-exactness: the SIMD block kernels against the scalar
//! datapath at every alignment the block/tail split can produce.
//!
//! SIMD tail handling is where bit-exactness bugs hide, so every batched
//! entry point (`axpy`, `axpy_classified`, `axpy_rows`, `gemm_tile`, `mul`,
//! `dot`) is swept over slice lengths `0`, `1`, `LANES-1`, `LANES`,
//! `LANES+1`, and `4·LANES+3`, with NaN/Inf/denormal/zero values pinned at
//! block boundaries and inside the scalar tail, for **every**
//! [`MultiplierKind`]. References are built from scalar
//! [`Multiplier::multiply`] plus the pinned
//! [`da_arith::simd::nan_stable_add`] accumulate, the crate's documented
//! reduction semantics.
//!
//! The second half asserts the memoization contract: lane kernels must not
//! silently bypass the [`SigProductCache`] hit/miss counters on kinds that
//! still memoize (HEAP, ablation wirings), and closed-form kinds must not
//! grow one.

use da_arith::fpm::FloatMultiplier;
use da_arith::simd::nan_stable_add;
use da_arith::{
    classify_row, ArrayMultiplierSpec, Multiplier, MultiplierKind, PortMap, PreparedOperand,
    PreparedOperands, LANES,
};
use rand::{Rng, SeedableRng};

/// The lane-boundary length sweep from the issue spec.
const LENGTHS: [usize; 6] = [0, 1, LANES - 1, LANES, LANES + 1, 4 * LANES + 3];

/// Values that exercise every datapath branch.
const SPECIALS: [f32; 8] =
    [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0, 1e-40, f32::MAX, f32::MIN_POSITIVE];

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(97)
}

/// A row of the given length with `specials` pinned at block boundaries
/// (lane 0, last lane of the first block, first lane of the second block)
/// and in the scalar tail (last element), normals elsewhere.
fn boundary_row(len: usize, specials: &[f32], rng: &mut rand::rngs::StdRng) -> Vec<f32> {
    let mut row: Vec<f32> = (0..len).map(|_| rng.gen_range(0.03f32..4.0) - 2.0).collect();
    // Re-roll near-zero normals so "clean" rows stay clean.
    for v in row.iter_mut() {
        if v.abs() < 1e-3 {
            *v = 0.7;
        }
    }
    if len == 0 || specials.is_empty() {
        return row;
    }
    let mut pin = |idx: usize, i: usize| {
        if idx < len {
            row[idx] = specials[i % specials.len()];
        }
    };
    pin(0, 0);
    pin(LANES - 1, 1);
    pin(LANES, 2);
    pin(len - 1, 3);
    row
}

fn assert_rows_equal(got: &[f32], want: &[f32], ctx: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx} elem {i}: {g:?} ({:#010x}) vs {w:?} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// `axpy`, `axpy_classified`, and `mul` against the scalar datapath at every
/// lane-boundary length, special placement, and shared-operand class.
#[test]
fn axpy_and_mul_are_bit_exact_at_lane_boundaries() {
    let mut rng = rng();
    let shared = [0.7f32, -1.25, 0.0, -0.0, f32::NAN, f32::INFINITY, 1e-40, f32::MAX];
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        for len in LENGTHS {
            for pins in [&[] as &[f32], &[0.0, -0.0], &SPECIALS] {
                let b = boundary_row(len, pins, &mut rng);
                let class = classify_row(&b);
                for &a in &shared {
                    let ctx = format!("{kind} len={len} pins={} a={a}", pins.len());

                    let mut acc = vec![0.25f32; len];
                    m.batch_kernel().axpy(a, &b, &mut acc);
                    let want: Vec<f32> = b.iter().map(|&y| 0.25 + m.multiply(a, y)).collect();
                    assert_rows_equal(&acc, &want, &format!("{ctx} axpy"));

                    let mut acc = vec![0.25f32; len];
                    m.batch_kernel().axpy_classified(a, &b, class, &mut acc);
                    assert_rows_equal(&acc, &want, &format!("{ctx} axpy_classified"));

                    let mut out = vec![0.0f32; len];
                    let a_row: Vec<f32> = boundary_row(len, pins, &mut rng);
                    m.batch_kernel().mul(&a_row, &b, &mut out);
                    let want: Vec<f32> =
                        a_row.iter().zip(&b).map(|(&x, &y)| m.multiply(x, y)).collect();
                    assert_rows_equal(&out, &want, &format!("{ctx} mul"));
                }
            }
        }
    }
}

/// `dot` against the crate's pinned reduction semantics (scalar products
/// accumulated in order through `nan_stable_add`).
#[test]
fn dot_is_bit_exact_at_lane_boundaries() {
    let mut rng = rng();
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        for len in LENGTHS {
            for pins in [&[] as &[f32], &SPECIALS] {
                let a = boundary_row(len, pins, &mut rng);
                let b = boundary_row(len, &[1.0], &mut rng);
                let got = m.batch_kernel().dot(&a, &b);
                let mut want = 0.0f32;
                for (&x, &y) in a.iter().zip(&b) {
                    want = nan_stable_add(want, m.multiply(x, y));
                }
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{kind} len={len} pins={} dot: {got:?} vs {want:?}",
                    pins.len()
                );
            }
        }
    }
}

/// `axpy_rows` (strided multi-row sweep) equals row-by-row `axpy` for every
/// kind, including ragged tails and special pins.
#[test]
fn axpy_rows_matches_rowwise_axpy() {
    let mut rng = rng();
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        for len in LENGTHS {
            let b = boundary_row(len, &SPECIALS, &mut rng);
            let a_col: Vec<f32> = vec![0.7, f32::NAN, -0.0, 1.5e38];
            let stride = len + 3;
            let mut acc = vec![0.5f32; a_col.len() * stride];
            let mut want = acc.clone();
            m.batch_kernel().axpy_rows(&a_col, &b, &mut acc, stride);
            {
                let mut kern = m.batch_kernel();
                for (r, &av) in a_col.iter().enumerate() {
                    kern.axpy(av, &b, &mut want[r * stride..r * stride + len]);
                }
            }
            assert_rows_equal(&acc, &want, &format!("{kind} len={len} axpy_rows"));
        }
    }
}

/// `gemm_tile` equals rowwise `axpy_prepared` at lane-boundary tile widths
/// with specials pinned at tile boundaries (the engine's fused conv path).
#[test]
fn gemm_tile_is_bit_exact_at_lane_boundary_tiles() {
    let mut rng = rng();
    for kind in MultiplierKind::ALL {
        let m = kind.build();
        for tile in LENGTHS {
            if tile == 0 {
                continue;
            }
            let (rows, k) = (3usize, 3usize);
            let stride = tile + 2;
            let w: Vec<f32> = (0..rows * k)
                .map(|i| if i == 4 { f32::NAN } else { rng.gen_range(0.1f32..2.0) - 1.05 })
                .collect();
            let ops = PreparedOperands::from_matrix(&w, rows, k);
            let mut b = Vec::new();
            for _ in 0..k {
                b.extend(boundary_row(tile, &SPECIALS, &mut rng));
            }
            let mut acc = vec![0.125f32; rows * stride];
            let mut want = acc.clone();
            m.batch_kernel().gemm_tile(&ops, &b, tile, &mut acc, stride);
            {
                let mut kern = m.batch_kernel();
                for r in 0..rows {
                    let acc_row = &mut want[r * stride..r * stride + tile];
                    for kk in 0..k {
                        kern.axpy_prepared(
                            &PreparedOperand::new(w[r * k + kk]),
                            &b[kk * tile..(kk + 1) * tile],
                            acc_row,
                        );
                    }
                }
            }
            assert_rows_equal(&acc, &want, &format!("{kind} tile={tile} gemm_tile"));
        }
    }
}

/// An AMA5-cell array with a non-canonical port wiring: gate-level
/// simulation with no closed form (`FastPath::None`), so its kernel memoizes.
fn ablation_multiplier() -> FloatMultiplier {
    let canonical = ArrayMultiplierSpec::ax_mantissa(24);
    let port_map = PortMap::ALL
        .iter()
        .copied()
        .find(|&pm| pm != canonical.port_map)
        .expect("more than one port wiring exists");
    FloatMultiplier::with_core("ablation", ArrayMultiplierSpec { port_map, ..canonical })
}

/// Memoizing kinds must keep counting cache hits/misses through every
/// batched entry point — the lane kernels only cover closed-form cores and
/// must not have silently rerouted gate-level kinds around the
/// [`da_arith::SigProductCache`].
#[test]
fn cache_stats_are_preserved_across_batched_entry_points() {
    let mut rng = rng();
    let heap = MultiplierKind::Heap.build();
    let ablation = ablation_multiplier();
    for m in [&*heap, &ablation as &dyn Multiplier] {
        let mut kern = m.batch_kernel();
        let b: Vec<f32> = (0..64).map(|i| 0.25 + (i % 8) as f32 * 0.125).collect();
        let mut acc = vec![0.0f32; b.len()];
        // Warm past the memo threshold so the cache allocates.
        for _ in 0..16 {
            kern.axpy(rng.gen_range(0.1f32..1.0), &b, &mut acc);
        }
        let (h0, m0) = kern.cache_stats().expect("gate-level kernels memoize");

        // Every entry point must keep counting products.
        let mut rows_acc = vec![0.0f32; 2 * b.len()];
        kern.axpy_rows(&[0.3, 0.7], &b, &mut rows_acc, b.len());
        let (h1, m1) = kern.cache_stats().expect("stats survive axpy_rows");
        assert_eq!((h1 + m1) - (h0 + m0), 2 * b.len() as u64, "{} axpy_rows", m.name());

        let ops = PreparedOperands::from_matrix(&[0.5, -0.25, 0.75, 0.1], 2, 2);
        let mut tile_acc = vec![0.0f32; 24];
        kern.gemm_tile(&ops, &b[..16], 8, &mut tile_acc, 16);
        let (h2, m2) = kern.cache_stats().expect("stats survive gemm_tile");
        assert_eq!((h2 + m2) - (h1 + m1), 32, "{} gemm_tile", m.name());

        let _ = kern.dot(&b[..8], &b[8..16]);
        let (h3, m3) = kern.cache_stats().expect("stats survive dot");
        assert_eq!((h3 + m3) - (h2 + m2), 8, "{} dot", m.name());

        let mut out = vec![0.0f32; 8];
        kern.mul(&b[..8], &b[8..16], &mut out);
        let (h4, m4) = kern.cache_stats().expect("stats survive mul");
        assert_eq!((h4 + m4) - (h3 + m3), 8, "{} mul", m.name());

        assert!(h4 > 0, "{}: repeated operands must produce hits", m.name());
    }

    // Closed-form kinds ride the lane kernels and must not grow a cache.
    for kind in [MultiplierKind::ExactFpm, MultiplierKind::AxFpm, MultiplierKind::Bfloat16] {
        let m = kind.build();
        let mut kern = m.batch_kernel();
        let b: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut acc = vec![0.0f32; b.len()];
        for _ in 0..16 {
            kern.axpy(0.7, &b, &mut acc);
        }
        assert_eq!(kern.cache_stats(), None, "{kind} must not memoize");
    }
}
