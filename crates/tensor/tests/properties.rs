//! Property-based tests of the tensor substrate.

use proptest::prelude::*;

use da_tensor::ops::{col2im, conv2d_direct, im2col, matmul, ConvGeometry};
use da_tensor::Tensor;

fn small_tensor(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in small_tensor(6),
        b in small_tensor(8),
        c in small_tensor(8),
    ) {
        let a = Tensor::from_vec(a, &[3, 2]);
        let b = Tensor::from_vec(b, &[2, 4]);
        let c = Tensor::from_vec(c, &[2, 4]);
        let lhs = matmul(&a, &b.zip_map(&c, |x, y| x + y));
        let rhs = matmul(&a, &b).zip_map(&matmul(&a, &c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Identity is neutral for matmul.
    #[test]
    fn matmul_identity(a in small_tensor(12)) {
        let a = Tensor::from_vec(a, &[3, 4]);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye[[i, i]] = 1.0;
        }
        let r = matmul(&a, &eye);
        for (x, y) in r.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Lowered (im2col + matmul) convolution equals the direct definition.
    #[test]
    fn lowered_convolution_is_direct(
        image in small_tensor(2 * 7 * 7),
        weights in small_tensor(3 * 2 * 9),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let geom = ConvGeometry { input: (7, 7), kernel: (3, 3), stride, pad };
        let image = Tensor::from_vec(image, &[2, 7, 7]);
        let weights = Tensor::from_vec(weights, &[3, 2, 3, 3]);
        let (oh, ow) = geom.output();

        let direct = conv2d_direct(&image, &weights, geom);
        let lowered = matmul(
            &weights.clone().reshape(&[3, 18]),
            &im2col(&image, geom),
        )
        .reshape(&[3, oh, ow]);
        for (x, y) in direct.data().iter().zip(lowered.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// col2im is the exact adjoint of im2col: <im2col(x), y> = <x, col2im(y)>.
    #[test]
    fn col2im_adjoint_identity(
        x in small_tensor(3 * 6 * 6),
        y_seed in any::<u64>(),
        stride in 1usize..3,
    ) {
        use rand::SeedableRng;
        let geom = ConvGeometry { input: (6, 6), kernel: (2, 2), stride, pad: 1 };
        let (oh, ow) = geom.output();
        let x = Tensor::from_vec(x, &[3, 6, 6]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(y_seed);
        let y = Tensor::randn(&[3 * 4, oh * ow], 1.0, &mut rng);

        let lhs: f64 = im2col(&x, geom)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(col2im(&y, 3, geom).data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// stack/batch_item round-trip.
    #[test]
    fn stack_batch_item_round_trip(items in proptest::collection::vec(small_tensor(6), 1..5)) {
        let tensors: Vec<Tensor> =
            items.into_iter().map(|v| Tensor::from_vec(v, &[2, 3])).collect();
        let stacked = Tensor::stack(&tensors);
        for (i, t) in tensors.iter().enumerate() {
            prop_assert_eq!(&stacked.batch_item(i), t);
        }
    }

    /// Reductions agree with naive recomputation.
    #[test]
    fn reductions_are_consistent(v in small_tensor(16)) {
        let t = Tensor::from_vec(v.clone(), &[16]);
        let sum: f32 = v.iter().sum();
        prop_assert!((t.sum() - sum).abs() < 1e-3);
        prop_assert!((t.mean() - sum / 16.0).abs() < 1e-4);
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(t.max(), max);
        prop_assert_eq!(v[t.argmax()], max);
    }
}
