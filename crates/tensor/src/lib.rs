//! Minimal dense-tensor substrate for the Defensive Approximation CNNs.
//!
//! The paper's models are small (LeNet-5, a CIFAR-scale AlexNet), so this
//! crate favors clarity over peak FLOPs: row-major `f32` storage, explicit
//! shapes, [`ops::matmul`]/[`ops::im2col`] for convolution lowering, and a
//! scoped-thread [`parallel`] helper for the expensive gate-level-multiplier
//! inference paths.
//!
//! # Quick example
//!
//! ```
//! use da_tensor::Tensor;
//!
//! let mut t = Tensor::zeros(&[2, 3]);
//! t[[1, 2]] = 5.0;
//! assert_eq!(t.sum(), 5.0);
//! assert_eq!(t.argmax(), 5); // flat index of the maximum
//! ```

pub mod ops;
pub mod parallel;

mod tensor;

pub use tensor::Tensor;
