//! Linear-algebra kernels: matrix multiplication and convolution lowering.

use crate::parallel::par_map_chunks;
use crate::Tensor;

/// Below this many multiply-adds a matmul runs single-threaded: spawning
/// scoped worker threads costs more than the arithmetic saves.
const PAR_MIN_MACS: usize = 1 << 16;

/// `C = A · B` for row-major `A: [m, k]`, `B: [k, n]`.
///
/// Uses the cache-friendly `i-k-j` loop order; large products distribute
/// output rows across worker threads (each row's accumulation order is
/// unchanged, so results are bit-identical to the sequential loop).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or inputs are not rank-2.
///
/// # Examples
///
/// ```
/// use da_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimensions {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    if n == 0 {
        // Zero-width result: nothing to compute (and chunking by 0 would
        // panic below).
        return Tensor::from_vec(out, &[m, n]);
    }
    let ad = a.data();
    let bd = b.data();
    let row = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m > 1 && m * k * n >= PAR_MIN_MACS {
        par_map_chunks(&mut out, n, row);
    } else {
        for (i, orow) in out.chunks_mut(n).enumerate() {
            row(i, orow);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Spatial geometry of a 2-D convolution/pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input height and width.
    pub input: (usize, usize),
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Output `(height, width)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (with padding) does not fit the input or the
    /// stride is zero.
    pub fn output(&self) -> (usize, usize) {
        assert!(self.stride > 0, "stride must be positive");
        let (h, w) = self.input;
        let (kh, kw) = self.kernel;
        assert!(
            h + 2 * self.pad >= kh && w + 2 * self.pad >= kw,
            "kernel {:?} larger than padded input {:?}+{}",
            self.kernel,
            self.input,
            self.pad
        );
        ((h + 2 * self.pad - kh) / self.stride + 1, (w + 2 * self.pad - kw) / self.stride + 1)
    }
}

/// Lower a single `[C, H, W]` image into the im2col matrix
/// `[C·Kh·Kw, Oh·Ow]`, so convolution becomes one [`matmul`].
///
/// # Panics
///
/// Panics if `image` is not rank-3 or the geometry's input size disagrees.
pub fn im2col(image: &Tensor, geom: ConvGeometry) -> Tensor {
    assert_eq!(image.shape().len(), 3, "im2col expects [C, H, W]");
    let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
    assert_eq!((h, w), geom.input, "geometry input mismatch");
    let (kh, kw) = geom.kernel;
    let (oh, ow) = geom.output();
    let data = image.data();

    let mut out = vec![0.0f32; c * kh * kw * oh * ow];
    let cols = oh * ow;
    let mut row = 0usize;
    for ch in 0..c {
        let plane = &data[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // zero padding
                    }
                    let src = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix >= 0 && ix < w as isize {
                            out_row[oy * ow + ox] = src[ix as usize];
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(out, &[c * kh * kw, cols])
}

/// Scatter an im2col matrix back to image space (the adjoint of [`im2col`]),
/// accumulating overlapping windows. Used by convolution's input gradient.
///
/// # Panics
///
/// Panics if `cols`'s shape disagrees with the geometry for `channels`.
pub fn col2im(cols: &Tensor, channels: usize, geom: ConvGeometry) -> Tensor {
    let (kh, kw) = geom.kernel;
    let (oh, ow) = geom.output();
    let (h, w) = geom.input;
    assert_eq!(cols.shape(), &[channels * kh * kw, oh * ow], "col2im shape mismatch");

    let mut out = Tensor::zeros(&[channels, h, w]);
    let data = cols.data();
    let out_data = out.data_mut();
    let mut row = 0usize;
    for ch in 0..channels {
        let plane = &mut out_data[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let src_row = &data[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix >= 0 && ix < w as isize {
                            plane[iy as usize * w + ix as usize] += src_row[oy * ow + ox];
                        }
                    }
                }
                row += 1;
            }
        }
    }
    out
}

/// Direct (definition-level) convolution of one `[C, H, W]` image with
/// weights `[Cout, C, Kh, Kw]` — the reference implementation im2col-based
/// convolution is tested against.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_direct(image: &Tensor, weights: &Tensor, geom: ConvGeometry) -> Tensor {
    assert_eq!(image.shape().len(), 3, "conv2d_direct expects [C, H, W]");
    assert_eq!(weights.shape().len(), 4, "weights must be [Cout, Cin, Kh, Kw]");
    let c = image.shape()[0];
    assert_eq!(weights.shape()[1], c, "channel mismatch");
    assert_eq!((weights.shape()[2], weights.shape()[3]), geom.kernel);
    let cout = weights.shape()[0];
    let (oh, ow) = geom.output();
    let (h, w) = geom.input;
    let (kh, kw) = geom.kernel;

    let mut out = Tensor::zeros(&[cout, oh, ow]);
    for co in 0..cout {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ci in 0..c {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc +=
                                image[[ci, iy as usize, ix as usize]] * weights[[co, ci, ky, kx]];
                        }
                    }
                }
                out[[co, oy, ox]] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            eye[[i, i]] = 1.0;
        }
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_dimension_mismatch() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    /// Regression: zero-width operands (constructible via `from_vec`) yield
    /// an empty result instead of panicking in the chunked row loop.
    #[test]
    fn matmul_handles_zero_width_rhs() {
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::from_vec(Vec::new(), &[4, 0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[3, 0]);
        assert!(c.data().is_empty());
    }

    #[test]
    fn geometry_output_sizes() {
        let g = ConvGeometry { input: (28, 28), kernel: (5, 5), stride: 1, pad: 0 };
        assert_eq!(g.output(), (24, 24));
        let g = ConvGeometry { input: (32, 32), kernel: (3, 3), stride: 1, pad: 1 };
        assert_eq!(g.output(), (32, 32));
        let g = ConvGeometry { input: (24, 24), kernel: (2, 2), stride: 2, pad: 0 };
        assert_eq!(g.output(), (12, 12));
    }

    #[test]
    fn im2col_matmul_equals_direct_convolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for (pad, stride) in [(0usize, 1usize), (1, 1), (0, 2), (2, 2)] {
            let geom = ConvGeometry { input: (9, 9), kernel: (3, 3), stride, pad };
            let image = Tensor::randn(&[2, 9, 9], 1.0, &mut rng);
            let weights = Tensor::randn(&[4, 2, 3, 3], 1.0, &mut rng);
            let (oh, ow) = geom.output();

            let direct = conv2d_direct(&image, &weights, geom);
            let cols = im2col(&image, geom);
            let wmat = weights.clone().reshape(&[4, 2 * 3 * 3]);
            let lowered = matmul(&wmat, &cols).reshape(&[4, oh, ow]);

            for (a, b) in direct.data().iter().zip(lowered.data()) {
                assert!((a - b).abs() < 1e-4, "pad={pad} stride={stride}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity,
        // which is exactly what correct convolution backprop needs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let geom = ConvGeometry { input: (7, 7), kernel: (3, 3), stride: 2, pad: 1 };
        let (oh, ow) = geom.output();
        let x = Tensor::randn(&[3, 7, 7], 1.0, &mut rng);
        let y = Tensor::randn(&[3 * 9, oh * ow], 1.0, &mut rng);

        let lhs: f32 = im2col(&x, geom).data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(&y, 3, geom).data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_zero_padding_regions_are_zero() {
        let geom = ConvGeometry { input: (2, 2), kernel: (3, 3), stride: 1, pad: 1 };
        let image = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&image, geom);
        // Top-left output window: kernel position (0,0) reads padding.
        assert_eq!(cols[[0, 0]], 0.0);
        // Center kernel tap reads the image.
        assert_eq!(cols[[4, 0]], 1.0);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn geometry_rejects_oversized_kernel() {
        let g = ConvGeometry { input: (2, 2), kernel: (5, 5), stride: 1, pad: 0 };
        let _ = g.output();
    }
}
