//! The [`Tensor`] type: row-major `f32` storage with an explicit shape.

use std::ops::{Index, IndexMut};

use rand::distributions::Distribution;
use rand::Rng;

/// A dense, row-major `f32` tensor.
///
/// Shapes are dynamic (`Vec<usize>`); most of the codebase uses `[N, C, H, W]`
/// activations, `[Cout, Cin, Kh, Kw]` convolution weights, and `[M, N]`
/// matrices. Operations validate shapes dynamically and panic with a
/// descriptive message on mismatch (documented per method).
///
/// # Examples
///
/// ```
/// use da_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t[[0, 1]], 2.0);
/// assert_eq!(t.mean(), 2.5);
/// let u = t.map(|x| x * 2.0);
/// assert_eq!(u.sum(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// A tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::filled(shape, 0.0)
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::filled(shape, 1.0)
    }

    /// A tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or has a zero dimension.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape cannot be empty");
        assert!(shape.iter().all(|&d| d > 0), "zero dimension in shape {shape:?}");
        Tensor { data: vec![value; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "buffer of {} elements cannot have shape {shape:?}",
            data.len()
        );
        assert!(!shape.is_empty(), "tensor shape cannot be empty");
        Tensor { data, shape: shape.to_vec() }
    }

    /// Standard-normal initialization scaled by `std`.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let normal = StandardNormal;
        let data = (0..shape.iter().product()).map(|_| normal.sample(rng) * std).collect();
        Tensor::from_vec(data, shape)
    }

    /// Uniform initialization in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..shape.iter().product()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "cannot reshape {:?} to {shape:?}", self.shape);
        self.shape = shape.to_vec();
        self
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "rank mismatch indexing {:?}", self.shape);
        let mut off = 0;
        for (axis, (&i, &d)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} of {:?}", self.shape);
            off = off * d + i;
        }
        off
    }

    /// Apply `f` elementwise into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self += other` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise (the optimizer workhorse).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiply every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element (NaN-free tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-free tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Euclidean (Frobenius) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Clamp every element into `[lo, hi]` in place.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    /// The batch-`n` slice of an `[N, ...]` tensor as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-1 or `n` is out of bounds.
    pub fn batch_item(&self, n: usize) -> Tensor {
        assert!(self.shape.len() >= 2, "batch_item needs rank >= 2");
        assert!(n < self.shape[0], "batch index {n} out of {}", self.shape[0]);
        let item: usize = self.shape[1..].iter().product();
        Tensor {
            data: self.data[n * item..(n + 1) * item].to_vec(),
            shape: self.shape[1..].to_vec(),
        }
    }

    /// Stack same-shaped tensors along a new leading batch axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let shape = items[0].shape.clone();
        for t in items {
            assert_eq!(t.shape, shape, "stack shape mismatch");
        }
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            data.extend_from_slice(&t.data);
        }
        let mut out_shape = vec![items.len()];
        out_shape.extend(shape);
        Tensor { data, shape: out_shape }
    }
}

/// Marsaglia-polar standard normal sampler (keeps us off external distribution
/// crates).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        loop {
            let u: f32 = rng.gen_range(-1.0f32..1.0);
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl<const R: usize> Index<[usize; R]> for Tensor {
    type Output = f32;

    fn index(&self, index: [usize; R]) -> &f32 {
        &self.data[self.offset(&index)]
    }
}

impl<const R: usize> IndexMut<[usize; R]> for Tensor {
    fn index_mut(&mut self, index: [usize; R]) -> &mut f32 {
        let off = self.offset(&index);
        &mut self.data[off]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        t[[1, 2, 3]] = 7.0;
        assert_eq!(t.data()[23], 7.0);
        assert_eq!(t[[1, 2, 3]], 7.0);
        assert_eq!(t[[0, 0, 0]], 0.0);
    }

    #[test]
    fn offsets_are_row_major() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        assert_eq!(t[[1, 2]], 6.0);
        assert_eq!(t.offset(&[2, 3]), 11);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.0, -5.0], &[4]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -5.0);
        assert_eq!(t.argmax(), 1);
        assert!((t.l2_norm() - (46.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_takes_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0], &[3]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn elementwise_combinators() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[11.0, 22.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.data(), &[6.0, 12.0]);
        c.scale(2.0);
        assert_eq!(c.data(), &[12.0, 24.0]);
        c.clamp_inplace(0.0, 20.0);
        assert_eq!(c.data(), &[12.0, 20.0]);
    }

    #[test]
    fn batch_item_and_stack_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.batch_item(0), a);
        assert_eq!(s.batch_item(1), b);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[10_000], 2.0, &mut r1);
        let b = Tensor::randn(&[10_000], 2.0, &mut r2);
        assert_eq!(a, b);
        assert!(a.mean().abs() < 0.1, "mean {}", a.mean());
        let var = a.map(|x| x * x).mean() - a.mean() * a.mean();
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).reshape(&[2, 2]);
        assert_eq!(t[[1, 0]], 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_size_change() {
        let _ = Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_is_bounds_checked() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[[0, 2]];
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.zip_map(&b, |x, _| x);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dimensions_are_rejected() {
        let _ = Tensor::zeros(&[2, 0]);
    }
}
