//! Scoped-thread data parallelism for the expensive gate-level inference
//! paths (no external thread-pool crates needed).
//!
//! All entry points suppress *nested* parallelism: when a worker spawned by
//! one region calls back into this module (e.g. a parallel batch loop whose
//! items each run a parallel GEMM), the inner call runs inline instead of
//! spawning threads-of-threads. The suppression is a global region counter,
//! so at most one region parallelizes at a time — exactly what a single
//! inference/attack pipeline wants, and merely sequentializes the (rare)
//! concurrent-caller case.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Count of currently active parallel regions (see module docs).
static ACTIVE_REGIONS: AtomicUsize = AtomicUsize::new(0);

/// RAII token for one active parallel region.
struct RegionGuard;

impl RegionGuard {
    /// Claim the right to parallelize; `None` if a region is already active.
    fn try_enter() -> Option<RegionGuard> {
        if ACTIVE_REGIONS.fetch_add(1, Ordering::AcqRel) == 0 {
            Some(RegionGuard)
        } else {
            ACTIVE_REGIONS.fetch_sub(1, Ordering::AcqRel);
            None
        }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        ACTIVE_REGIONS.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Partition `out` into `chunk`-sized pieces (the final piece may be
/// shorter) and apply `f(chunk_index, piece)` to each, distributing pieces
/// across `std::thread::available_parallelism()` worker threads.
///
/// Falls back to a sequential loop when there is only one chunk or one CPU,
/// or when called from inside another parallel region. Chunk indices are
/// global and stable regardless of thread count, so `f` must not rely on
/// execution order.
///
/// # Panics
///
/// Panics if `chunk` is zero.
///
/// # Examples
///
/// ```
/// use da_tensor::parallel::par_map_chunks;
///
/// // 7 elements in chunks of 3: pieces of 3, 3, and a ragged tail of 1.
/// let mut data = vec![0.0f32; 7];
/// par_map_chunks(&mut data, 3, |idx, piece| {
///     for x in piece.iter_mut() {
///         *x = idx as f32;
///     }
/// });
/// assert_eq!(data, [0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0]);
/// ```
pub fn par_map_chunks<F>(out: &mut [f32], chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    par_map_chunks_with(out, chunk, || (), |(), idx, piece| f(idx, piece));
}

/// [`par_map_chunks`] with per-worker state: each worker thread calls
/// `init()` once and threads the resulting state through every piece it
/// processes. Used by the batched GEMM to give each worker its own
/// memoizing arithmetic kernel.
///
/// The sequential fallback uses a single state for all pieces, which is
/// only observable through the state itself (per-piece outputs must not
/// depend on which worker processed them).
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_map_chunks_with<S, I, F>(out: &mut [f32], chunk: usize, init: I, f: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n_chunks = out.len().div_ceil(chunk);
    let threads = available_threads().min(n_chunks);

    let guard = if threads > 1 { RegionGuard::try_enter() } else { None };
    if guard.is_none() {
        let mut state = init();
        for (idx, piece) in out.chunks_mut(chunk).enumerate() {
            f(&mut state, idx, piece);
        }
        return;
    }

    // Static partition: each worker owns a disjoint contiguous block of the
    // buffer handed out by `split_at_mut`; the last block absorbs the
    // ragged tail.
    std::thread::scope(|scope| {
        let mut rest = out;
        let per = n_chunks / threads;
        let extra = n_chunks % threads;
        let mut base = 0usize;
        let (fref, iref) = (&f, &init);
        for t in 0..threads {
            let take = per + usize::from(t < extra);
            let split = (take * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(split);
            rest = tail;
            let start = base;
            base += take;
            scope.spawn(move || {
                let mut state = iref();
                for (i, piece) in head.chunks_mut(chunk).enumerate() {
                    fref(&mut state, start + i, piece);
                }
            });
        }
    });
    drop(guard);
}

/// Run `f(i)` for every `i` in `0..n` across worker threads, for read-only or
/// interior-mutability workloads (e.g. filling disjoint `Mutex`-free regions
/// indexed through raw computation).
///
/// Runs inline when called from inside another parallel region (see module
/// docs).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use da_tensor::parallel::par_for;
///
/// let counter = AtomicUsize::new(0);
/// par_for(100, |_| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 100);
/// ```
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = available_threads().min(n);
    let guard = if threads > 1 { RegionGuard::try_enter() } else { None };
    if guard.is_none() {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
    drop(guard);
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_receive_stable_global_indices() {
        let mut data = vec![-1.0f32; 64];
        par_map_chunks(&mut data, 4, |idx, piece| {
            for (j, x) in piece.iter_mut().enumerate() {
                *x = (idx * 4 + j) as f32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as f32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = vec![0.0f32; 3];
        par_map_chunks(&mut data, 3, |idx, piece| {
            assert_eq!(idx, 0);
            piece[0] = 9.0;
        });
        assert_eq!(data[0], 9.0);
    }

    #[test]
    fn par_for_covers_every_index_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![0u32; 257]);
        par_for(257, |i| {
            seen.lock().expect("lock")[i] += 1;
        });
        assert!(seen.into_inner().expect("lock").iter().all(|&c| c == 1));
    }

    /// Regression: a chunk size that does not divide the buffer yields a
    /// shorter final piece instead of panicking (the seed panicked here).
    #[test]
    fn ragged_tail_chunk_is_processed() {
        for (len, chunk) in [(5usize, 2usize), (7, 3), (64, 7), (3, 8), (1, 4)] {
            let mut data = vec![-1.0f32; len];
            let n_chunks = len.div_ceil(chunk);
            par_map_chunks(&mut data, chunk, |idx, piece| {
                let expected =
                    if idx == n_chunks - 1 && len % chunk != 0 { len % chunk } else { chunk };
                assert_eq!(piece.len(), expected, "len={len} chunk={chunk} idx={idx}");
                for x in piece.iter_mut() {
                    *x = idx as f32;
                }
            });
            for (i, x) in data.iter().enumerate() {
                assert_eq!(*x, (i / chunk) as f32, "len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn per_worker_state_sees_every_chunk_exactly_once() {
        use std::sync::Mutex;
        let all: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let mut data = vec![0.0f32; 61];
        par_map_chunks_with(&mut data, 4, Vec::new, |seen: &mut Vec<usize>, idx, _piece| {
            seen.push(idx);
            // Flush on every call; order within a worker is ascending.
            all.lock().expect("lock").push(idx);
        });
        let mut indices = all.into_inner().expect("lock");
        indices.sort_unstable();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        let mut outer = vec![0.0f32; 8];
        par_map_chunks(&mut outer, 1, |_, piece| {
            let mut inner = vec![0.0f32; 16];
            par_map_chunks(&mut inner, 2, |idx, p| {
                for x in p.iter_mut() {
                    *x = idx as f32;
                }
            });
            piece[0] = inner.iter().sum();
            let counter = AtomicUsize::new(0);
            par_for(10, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 10);
        });
        for x in outer {
            assert_eq!(x, (0..8).map(|i| (i as f32) * 2.0).sum::<f32>());
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_is_rejected() {
        let mut data = vec![0.0f32; 4];
        par_map_chunks(&mut data, 0, |_, _| {});
    }
}
