//! Scoped-thread data parallelism for the expensive gate-level inference
//! paths (no external thread-pool crates needed).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Partition `out` into `chunk`-sized pieces and apply `f(chunk_index, piece)`
/// to each, distributing pieces across `std::thread::available_parallelism()`
/// worker threads.
///
/// Falls back to a sequential loop when there is only one chunk or one CPU.
/// Chunk indices are global and stable regardless of thread count, so `f`
/// must not rely on execution order.
///
/// # Panics
///
/// Panics if `chunk` is zero or does not divide `out.len()`.
///
/// # Examples
///
/// ```
/// use da_tensor::parallel::par_map_chunks;
///
/// let mut data = vec![0.0f32; 8];
/// par_map_chunks(&mut data, 2, |idx, piece| {
///     for x in piece.iter_mut() {
///         *x = idx as f32;
///     }
/// });
/// assert_eq!(data, [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
/// ```
pub fn par_map_chunks<F>(out: &mut [f32], chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(out.len() % chunk, 0, "chunk {} must divide length {}", chunk, out.len());
    let n_chunks = out.len() / chunk;
    let threads = available_threads().min(n_chunks);

    if threads <= 1 {
        for (idx, piece) in out.chunks_mut(chunk).enumerate() {
            f(idx, piece);
        }
        return;
    }

    // Static partition: each worker owns a disjoint contiguous block of the
    // buffer handed out by `split_at_mut`.
    std::thread::scope(|scope| {
        let mut rest = out;
        let per = n_chunks / threads;
        let extra = n_chunks % threads;
        let mut base = 0usize;
        let fref = &f;
        for t in 0..threads {
            let take = per + usize::from(t < extra);
            let (head, tail) = rest.split_at_mut(take * chunk);
            rest = tail;
            let start = base;
            base += take;
            scope.spawn(move || {
                for (i, piece) in head.chunks_mut(chunk).enumerate() {
                    fref(start + i, piece);
                }
            });
        }
    });
}

/// Run `f(i)` for every `i` in `0..n` across worker threads, for read-only or
/// interior-mutability workloads (e.g. filling disjoint `Mutex`-free regions
/// indexed through raw computation).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use da_tensor::parallel::par_for;
///
/// let counter = AtomicUsize::new(0);
/// par_for(100, |_| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 100);
/// ```
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = available_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_receive_stable_global_indices() {
        let mut data = vec![-1.0f32; 64];
        par_map_chunks(&mut data, 4, |idx, piece| {
            for (j, x) in piece.iter_mut().enumerate() {
                *x = (idx * 4 + j) as f32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as f32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = vec![0.0f32; 3];
        par_map_chunks(&mut data, 3, |idx, piece| {
            assert_eq!(idx, 0);
            piece[0] = 9.0;
        });
        assert_eq!(data[0], 9.0);
    }

    #[test]
    fn par_for_covers_every_index_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![0u32; 257]);
        par_for(257, |i| {
            seen.lock().expect("lock")[i] += 1;
        });
        assert!(seen.into_inner().expect("lock").iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn chunk_must_divide_length() {
        let mut data = vec![0.0f32; 5];
        par_map_chunks(&mut data, 2, |_, _| {});
    }
}
