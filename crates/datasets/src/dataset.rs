//! The labeled-image [`Dataset`] container.

use da_tensor::Tensor;

/// A labeled image set: `[N, C, H, W]` images in `[0, 1]` plus integer
/// labels.
///
/// # Examples
///
/// ```
/// use da_datasets::Dataset;
/// use da_tensor::Tensor;
///
/// let ds = Dataset::new(Tensor::zeros(&[4, 1, 2, 2]), vec![0, 1, 0, 1], 2);
/// let (train, test) = ds.split(3);
/// assert_eq!(train.len(), 3);
/// assert_eq!(test.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `[N, C, H, W]`, values in `[0, 1]`.
    pub images: Tensor,
    /// One label per image, each `< classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Bundle images and labels.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the batch dimension, or any
    /// label is out of range.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(images.shape()[0], labels.len(), "one label per image");
        assert!(classes > 0, "need at least one class");
        assert!(labels.iter().all(|&l| l < classes), "label out of range for {classes} classes");
        Dataset { images, labels, classes }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no examples (never for valid datasets).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Split into `(first n, rest)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n < len()`.
    pub fn split(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n > 0 && n < self.len(), "split point {n} out of 1..{}", self.len());
        (
            self.subset(&(0..n).collect::<Vec<_>>()),
            self.subset(&(n..self.len()).collect::<Vec<_>>()),
        )
    }

    /// The examples selected by `idxs`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `idxs` is empty.
    pub fn subset(&self, idxs: &[usize]) -> Dataset {
        assert!(!idxs.is_empty(), "subset cannot be empty");
        let items: Vec<Tensor> = idxs.iter().map(|&i| self.images.batch_item(i)).collect();
        Dataset {
            images: Tensor::stack(&items),
            labels: idxs.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }

    /// Up to `per_class` examples of each class, in class order — the paper's
    /// "100 randomly selected from each class" sampling (§6).
    pub fn balanced_subset(&self, per_class: usize) -> Dataset {
        let mut idxs = Vec::new();
        for class in 0..self.classes {
            idxs.extend(
                self.labels
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == class)
                    .map(|(i, _)| i)
                    .take(per_class),
            );
        }
        self.subset(&idxs)
    }

    /// Count of examples per class.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::from_vec(
            (0..n * 4).map(|v| v as f32 / (n * 4) as f32).collect(),
            &[n, 1, 2, 2],
        );
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3)
    }

    #[test]
    fn split_preserves_order_and_content() {
        let ds = toy(10);
        let (a, b) = ds.split(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(b.labels[0], ds.labels[7]);
        assert_eq!(b.images.batch_item(0), ds.images.batch_item(7));
    }

    #[test]
    fn subset_selects_in_order() {
        let ds = toy(6);
        let s = ds.subset(&[5, 0, 3]);
        assert_eq!(s.labels, vec![5 % 3, 0, 0]);
        assert_eq!(s.images.batch_item(1), ds.images.batch_item(0));
    }

    #[test]
    fn balanced_subset_is_balanced() {
        let ds = toy(30);
        let b = ds.balanced_subset(4);
        assert_eq!(b.len(), 12);
        assert_eq!(b.class_histogram(), vec![4, 4, 4]);
    }

    #[test]
    fn histogram_counts() {
        assert_eq!(toy(9).class_histogram(), vec![3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = Dataset::new(Tensor::zeros(&[1, 1, 2, 2]), vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "one label per image")]
    fn rejects_label_count_mismatch() {
        let _ = Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0], 3);
    }
}
