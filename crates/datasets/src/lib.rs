//! Synthetic stand-ins for MNIST and CIFAR-10.
//!
//! The reproduction environment has no dataset downloads, so this crate
//! procedurally generates two classification tasks with the same tensor
//! shapes, value ranges, and rough difficulty as the paper's datasets
//! (substitution documented in DESIGN.md §3):
//!
//! * [`digits::synth_digits`] — "SynthDigits": 28×28 grayscale handwritten-
//!   style digits rasterized from stroke skeletons with affine jitter,
//!   thickness variation, and pixel noise (MNIST stand-in).
//! * [`objects::synth_objects`] — "SynthObjects": 32×32 RGB textured shapes
//!   across ten classes with color, position, and noise jitter (CIFAR-10
//!   stand-in).
//!
//! Both are deterministic in their seed, and class-balanced.
//!
//! # Quick example
//!
//! ```
//! use da_datasets::digits::synth_digits;
//!
//! let ds = synth_digits(100, 42);
//! assert_eq!(ds.images.shape(), &[100, 1, 28, 28]);
//! assert_eq!(ds.labels.len(), 100);
//! assert!(ds.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
//! ```

pub mod digits;
pub mod objects;
pub mod raster;

mod dataset;

pub use dataset::Dataset;
