//! Tiny software rasterizer: strokes stamped onto grayscale grids.

/// A drawable stroke in a unit square (x right, y down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stroke {
    /// Straight segment between two points.
    Line {
        /// Start `(x, y)`.
        from: (f32, f32),
        /// End `(x, y)`.
        to: (f32, f32),
    },
    /// Elliptical arc: `(cx + rx·cosθ, cy + ry·sinθ)` for `θ ∈ [start, end]`.
    Arc {
        /// Center `(x, y)`.
        center: (f32, f32),
        /// Radii `(rx, ry)`.
        radii: (f32, f32),
        /// Start angle in radians.
        start: f32,
        /// End angle in radians (may exceed `start + 2π` turns are clamped
        /// by the caller's choice).
        end: f32,
    },
}

/// An affine jitter applied to unit-square stroke coordinates before
/// rasterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// Rotation in radians around the square's center.
    pub rotation: f32,
    /// Isotropic scale around the center.
    pub scale: f32,
    /// Translation in unit-square units.
    pub translate: (f32, f32),
}

impl Default for Affine {
    fn default() -> Self {
        Affine { rotation: 0.0, scale: 1.0, translate: (0.0, 0.0) }
    }
}

impl Affine {
    /// Transform a unit-square point.
    pub fn apply(&self, p: (f32, f32)) -> (f32, f32) {
        let (cx, cy) = (0.5, 0.5);
        let (x, y) = (p.0 - cx, p.1 - cy);
        let (sin, cos) = self.rotation.sin_cos();
        (
            cx + self.scale * (x * cos - y * sin) + self.translate.0,
            cy + self.scale * (x * sin + y * cos) + self.translate.1,
        )
    }
}

/// Stamp a soft disc of `radius` (pixels) at pixel coordinates `(px, py)`
/// into a `size × size` grayscale buffer, saturating at 1.0.
pub fn stamp(buffer: &mut [f32], size: usize, px: f32, py: f32, radius: f32) {
    let r_ceil = radius.ceil() as isize + 1;
    let (ix, iy) = (px.round() as isize, py.round() as isize);
    for dy in -r_ceil..=r_ceil {
        for dx in -r_ceil..=r_ceil {
            let (x, y) = (ix + dx, iy + dy);
            if x < 0 || y < 0 || x >= size as isize || y >= size as isize {
                continue;
            }
            let dist = ((x as f32 - px).powi(2) + (y as f32 - py).powi(2)).sqrt();
            // Soft falloff over one pixel at the rim.
            let v = (radius + 0.5 - dist).clamp(0.0, 1.0);
            let cell = &mut buffer[y as usize * size + x as usize];
            *cell = (*cell + v).min(1.0);
        }
    }
}

/// Rasterize strokes (unit-square coordinates, transformed by `affine`) into
/// a `size × size` grayscale buffer with the given stroke `thickness` in
/// pixels.
///
/// # Panics
///
/// Panics if `buffer.len() != size * size`.
pub fn rasterize(
    buffer: &mut [f32],
    size: usize,
    strokes: &[Stroke],
    affine: Affine,
    thickness: f32,
) {
    assert_eq!(buffer.len(), size * size, "buffer/size mismatch");
    let px = |p: (f32, f32)| -> (f32, f32) {
        let q = affine.apply(p);
        (q.0 * (size as f32 - 1.0), q.1 * (size as f32 - 1.0))
    };
    for stroke in strokes {
        match *stroke {
            Stroke::Line { from, to } => {
                let a = px(from);
                let b = px(to);
                let len = ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt();
                let steps = (len * 2.0).ceil().max(1.0) as usize;
                for s in 0..=steps {
                    let t = s as f32 / steps as f32;
                    stamp(buffer, size, a.0 + t * (b.0 - a.0), a.1 + t * (b.1 - a.1), thickness);
                }
            }
            Stroke::Arc { center, radii, start, end } => {
                let span = (end - start).abs();
                let steps = ((span * radii.0.max(radii.1) * size as f32) as usize).max(8);
                for s in 0..=steps {
                    let theta = start + (end - start) * s as f32 / steps as f32;
                    let p = (center.0 + radii.0 * theta.cos(), center.1 + radii.1 * theta.sin());
                    let q = px(p);
                    stamp(buffer, size, q.0, q.1, thickness);
                }
            }
        }
    }
}

/// Render a grayscale buffer as ASCII art (for debugging and examples).
pub fn ascii_art(buffer: &[f32], size: usize) -> String {
    let ramp = [' ', '.', ':', '+', '#', '@'];
    let mut out = String::with_capacity(size * (size + 1));
    for y in 0..size {
        for x in 0..size {
            let v = buffer[y * size + x].clamp(0.0, 1.0);
            let idx = ((v * (ramp.len() - 1) as f32).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_is_bounded_and_saturates() {
        let mut buf = vec![0.0f32; 64];
        stamp(&mut buf, 8, 4.0, 4.0, 1.5);
        stamp(&mut buf, 8, 4.0, 4.0, 1.5);
        assert!(buf.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(buf[4 * 8 + 4], 1.0);
        assert_eq!(buf[0], 0.0);
    }

    #[test]
    fn stamp_clips_at_borders() {
        let mut buf = vec![0.0f32; 16];
        stamp(&mut buf, 4, -1.0, -1.0, 2.0); // mostly off-canvas
        assert!(buf.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn line_rasterization_covers_endpoints() {
        let mut buf = vec![0.0f32; 28 * 28];
        rasterize(
            &mut buf,
            28,
            &[Stroke::Line { from: (0.2, 0.2), to: (0.8, 0.8) }],
            Affine::default(),
            1.0,
        );
        let at = |x: usize, y: usize| buf[y * 28 + x];
        assert!(at((0.2f32 * 27.0) as usize, (0.2f32 * 27.0) as usize) > 0.5);
        assert!(at((0.8f32 * 27.0) as usize, (0.8f32 * 27.0) as usize) > 0.5);
        assert!(at(27, 0) == 0.0);
    }

    #[test]
    fn full_arc_draws_a_ring() {
        let mut buf = vec![0.0f32; 28 * 28];
        rasterize(
            &mut buf,
            28,
            &[Stroke::Arc {
                center: (0.5, 0.5),
                radii: (0.3, 0.3),
                start: 0.0,
                end: std::f32::consts::TAU,
            }],
            Affine::default(),
            1.0,
        );
        // Center stays empty, rim is inked.
        assert_eq!(buf[14 * 28 + 14], 0.0);
        assert!(buf[14 * 28 + (14 + 8)] > 0.5);
    }

    #[test]
    fn affine_identity_is_noop_and_rotation_moves_points() {
        let id = Affine::default();
        assert_eq!(id.apply((0.3, 0.7)), (0.3, 0.7));
        let rot = Affine { rotation: std::f32::consts::FRAC_PI_2, ..Affine::default() };
        let p = rot.apply((1.0, 0.5));
        assert!((p.0 - 0.5).abs() < 1e-6 && (p.1 - 1.0).abs() < 1e-6, "{p:?}");
    }

    #[test]
    fn ascii_art_shapes_lines() {
        let buf = vec![0.0, 1.0, 0.5, 0.0];
        let art = ascii_art(&buf, 2);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('@'));
    }
}
