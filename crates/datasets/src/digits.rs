//! "SynthDigits" — the MNIST stand-in: stroke-skeleton digits rasterized at
//! 28×28 with affine jitter, thickness variation, and pixel noise.

use std::f32::consts::{PI, TAU};

use rand::{Rng, SeedableRng};

use da_tensor::Tensor;

use crate::raster::{rasterize, Affine, Stroke};
use crate::Dataset;

/// Image side length (matches MNIST).
pub const SIZE: usize = 28;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// Stroke skeleton of a digit in unit-square coordinates (y points down).
pub fn digit_strokes(digit: usize) -> Vec<Stroke> {
    assert!(digit < CLASSES, "digit must be 0..=9");
    let line = |a: (f32, f32), b: (f32, f32)| Stroke::Line { from: a, to: b };
    let arc = |c: (f32, f32), r: (f32, f32), s: f32, e: f32| Stroke::Arc {
        center: c,
        radii: r,
        start: s,
        end: e,
    };
    match digit {
        0 => vec![arc((0.5, 0.5), (0.26, 0.36), 0.0, TAU)],
        1 => vec![line((0.52, 0.14), (0.52, 0.86)), line((0.52, 0.14), (0.38, 0.3))],
        2 => vec![
            arc((0.5, 0.33), (0.22, 0.19), -PI, 0.35),
            line((0.68, 0.41), (0.3, 0.84)),
            line((0.3, 0.84), (0.72, 0.84)),
        ],
        3 => vec![
            arc((0.46, 0.31), (0.2, 0.17), -PI * 0.75, PI * 0.5),
            arc((0.46, 0.67), (0.23, 0.19), -PI * 0.5, PI * 0.75),
        ],
        4 => vec![
            line((0.64, 0.12), (0.64, 0.88)),
            line((0.64, 0.12), (0.3, 0.58)),
            line((0.3, 0.58), (0.8, 0.58)),
        ],
        5 => vec![
            line((0.7, 0.14), (0.34, 0.14)),
            line((0.34, 0.14), (0.34, 0.46)),
            arc((0.47, 0.65), (0.24, 0.21), -PI * 0.5, PI * 0.7),
        ],
        6 => vec![
            arc((0.5, 0.66), (0.22, 0.2), 0.0, TAU),
            arc((0.62, 0.4), (0.36, 0.52), PI * 0.8, PI * 1.25),
        ],
        7 => vec![line((0.28, 0.15), (0.74, 0.15)), line((0.74, 0.15), (0.42, 0.87))],
        8 => {
            vec![arc((0.5, 0.31), (0.19, 0.16), 0.0, TAU), arc((0.5, 0.68), (0.23, 0.19), 0.0, TAU)]
        }
        9 => vec![arc((0.5, 0.36), (0.21, 0.19), 0.0, TAU), line((0.71, 0.4), (0.58, 0.87))],
        _ => unreachable!(),
    }
}

/// Generator knobs (defaults are calibrated so LeNet-5 lands near the paper's
/// MNIST accuracy; see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitStyle {
    /// Max |rotation| in radians.
    pub rotation: f32,
    /// Scale range around 1.0.
    pub scale_jitter: f32,
    /// Max |translation| in unit-square units.
    pub translate: f32,
    /// Stroke thickness range in pixels `(lo, hi)`.
    pub thickness: (f32, f32),
    /// Additive pixel-noise amplitude.
    pub noise: f32,
}

impl Default for DigitStyle {
    fn default() -> Self {
        DigitStyle {
            rotation: 0.35,
            scale_jitter: 0.22,
            translate: 0.12,
            thickness: (0.6, 2.2),
            noise: 0.42,
        }
    }
}

/// Render one digit with jitter drawn from `rng`.
pub fn digit_image<R: Rng>(digit: usize, style: &DigitStyle, rng: &mut R) -> Tensor {
    let mut buf = vec![0.0f32; SIZE * SIZE];
    let affine = Affine {
        rotation: rng.gen_range(-style.rotation..=style.rotation),
        scale: 1.0 + rng.gen_range(-style.scale_jitter..=style.scale_jitter),
        translate: (
            rng.gen_range(-style.translate..=style.translate),
            rng.gen_range(-style.translate..=style.translate),
        ),
    };
    let thickness = rng.gen_range(style.thickness.0..=style.thickness.1);
    rasterize(&mut buf, SIZE, &digit_strokes(digit), affine, thickness);
    for v in &mut buf {
        *v = (*v + rng.gen_range(-style.noise..=style.noise)).clamp(0.0, 1.0);
    }
    Tensor::from_vec(buf, &[1, SIZE, SIZE])
}

/// A class-balanced SynthDigits dataset of `n` examples, deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn synth_digits(n: usize, seed: u64) -> Dataset {
    synth_digits_styled(n, seed, &DigitStyle::default())
}

/// [`synth_digits`] with explicit style knobs.
pub fn synth_digits_styled(n: usize, seed: u64, style: &DigitStyle) -> Dataset {
    assert!(n > 0, "need at least one example");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % CLASSES;
        items.push(digit_image(digit, style, &mut rng));
        labels.push(digit);
    }
    Dataset::new(Tensor::stack(&items), labels, CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::ascii_art;

    #[test]
    fn dataset_shape_and_range() {
        let ds = synth_digits(50, 1);
        assert_eq!(ds.images.shape(), &[50, 1, SIZE, SIZE]);
        assert!(ds.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ds.classes, CLASSES);
    }

    #[test]
    fn classes_are_balanced() {
        let ds = synth_digits(100, 2);
        assert_eq!(ds.class_histogram(), vec![10; 10]);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = synth_digits(20, 7);
        let b = synth_digits(20, 7);
        let c = synth_digits(20, 8);
        assert_eq!(a.images, b.images);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn digits_have_ink_and_are_distinct() {
        let style = DigitStyle { noise: 0.0, ..DigitStyle::default() };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let images: Vec<Tensor> = (0..10).map(|d| digit_image(d, &style, &mut rng)).collect();
        for (d, img) in images.iter().enumerate() {
            let ink = img.sum();
            assert!(ink > 10.0, "digit {d} has almost no ink:\n{}", ascii_art(img.data(), SIZE));
        }
        // Pairwise L2 distances are substantial: the classes don't collapse.
        for i in 0..10 {
            for j in (i + 1)..10 {
                let dist = images[i].zip_map(&images[j], |a, b| a - b).l2_norm();
                assert!(dist > 2.0, "digits {i} and {j} look identical");
            }
        }
    }

    #[test]
    fn same_class_varies_under_jitter() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let style = DigitStyle::default();
        let a = digit_image(3, &style, &mut rng);
        let b = digit_image(3, &style, &mut rng);
        assert_ne!(a, b, "jitter must vary instances");
    }

    #[test]
    #[should_panic(expected = "digit must be 0..=9")]
    fn rejects_out_of_range_digit() {
        let _ = digit_strokes(10);
    }
}
