//! "SynthObjects" — the CIFAR-10 stand-in: ten procedural RGB classes
//! (shape × texture) at 32×32 with color, position, and noise jitter.

use rand::{Rng, SeedableRng};

use da_tensor::Tensor;

use crate::Dataset;

/// Image side length (matches CIFAR-10).
pub const SIZE: usize = 32;
/// Number of object classes.
pub const CLASSES: usize = 10;

/// The ten classes. Shape classes (0–4) vary silhouette; texture classes
/// (5–9) vary fill pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectClass {
    /// Filled disc.
    Disc,
    /// Filled square.
    Square,
    /// Filled triangle.
    Triangle,
    /// Annulus (ring).
    Ring,
    /// Plus/cross.
    Cross,
    /// Horizontal stripes.
    StripesH,
    /// Vertical stripes.
    StripesV,
    /// Checkerboard.
    Checker,
    /// Radial gradient blob.
    Blob,
    /// Diamond.
    Diamond,
}

impl ObjectClass {
    /// All classes, index-aligned with labels.
    pub const ALL: [ObjectClass; CLASSES] = [
        ObjectClass::Disc,
        ObjectClass::Square,
        ObjectClass::Triangle,
        ObjectClass::Ring,
        ObjectClass::Cross,
        ObjectClass::StripesH,
        ObjectClass::StripesV,
        ObjectClass::Checker,
        ObjectClass::Blob,
        ObjectClass::Diamond,
    ];
}

/// Generator knobs (defaults calibrated so AlexNet lands near the paper's
/// CIFAR-10 accuracy; see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectStyle {
    /// Additive pixel-noise amplitude.
    pub noise: f32,
    /// Center jitter in pixels.
    pub jitter: f32,
    /// Object radius range in pixels `(lo, hi)`.
    pub radius: (f32, f32),
}

impl Default for ObjectStyle {
    fn default() -> Self {
        ObjectStyle { noise: 0.55, jitter: 4.0, radius: (7.0, 12.0) }
    }
}

/// Render one object image with jitter from `rng`.
pub fn object_image<R: Rng>(class: usize, style: &ObjectStyle, rng: &mut R) -> Tensor {
    assert!(class < CLASSES, "class must be 0..=9");
    let kind = ObjectClass::ALL[class];

    // Foreground/background colors kept apart so classes stay learnable.
    let bg: [f32; 3] =
        [rng.gen_range(0.0..0.45), rng.gen_range(0.0..0.45), rng.gen_range(0.0..0.45)];
    let mut fg: [f32; 3] =
        [rng.gen_range(0.45..1.0), rng.gen_range(0.45..1.0), rng.gen_range(0.45..1.0)];
    if rng.gen_bool(0.5) {
        fg.swap(0, 2);
    }

    let cx = SIZE as f32 / 2.0 + rng.gen_range(-style.jitter..=style.jitter);
    let cy = SIZE as f32 / 2.0 + rng.gen_range(-style.jitter..=style.jitter);
    let r = rng.gen_range(style.radius.0..=style.radius.1);
    let phase: f32 = rng.gen_range(0.0..4.0);
    let period: f32 = rng.gen_range(3.0..5.5);

    let coverage = |x: f32, y: f32| -> f32 {
        let (dx, dy) = (x - cx, y - cy);
        let dist = (dx * dx + dy * dy).sqrt();
        match kind {
            ObjectClass::Disc => step_in(dist, r),
            ObjectClass::Square => step_in(dx.abs().max(dy.abs()), r * 0.9),
            ObjectClass::Triangle => {
                // Upright isoceles triangle of half-width r, height 1.8r.
                let ty = dy + r * 0.9;
                if !(0.0..=1.8 * r).contains(&ty) {
                    0.0
                } else {
                    let half_width = r * (ty / (1.8 * r));
                    step_in(dx.abs(), half_width)
                }
            }
            ObjectClass::Ring => step_in(dist, r) * step_in(r * 0.55, dist),
            ObjectClass::Cross => {
                let arm = r * 0.38;
                let inside =
                    (dx.abs() <= arm && dy.abs() <= r) || (dy.abs() <= arm && dx.abs() <= r);
                f32::from(inside)
            }
            ObjectClass::StripesH => {
                step_in(dist, r) * f32::from(((y + phase) / period) as i32 % 2 == 0)
            }
            ObjectClass::StripesV => {
                step_in(dist, r) * f32::from(((x + phase) / period) as i32 % 2 == 0)
            }
            ObjectClass::Checker => {
                let c = (((x + phase) / period) as i32 + ((y + phase) / period) as i32) % 2;
                step_in(dx.abs().max(dy.abs()), r) * f32::from(c == 0)
            }
            ObjectClass::Blob => (1.0 - dist / (1.4 * r)).clamp(0.0, 1.0),
            ObjectClass::Diamond => step_in(dx.abs() + dy.abs(), r * 1.2),
        }
    };

    let mut data = vec![0.0f32; 3 * SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            let cov = coverage(x as f32, y as f32);
            for ch in 0..3 {
                let v =
                    bg[ch] + (fg[ch] - bg[ch]) * cov + rng.gen_range(-style.noise..=style.noise);
                data[ch * SIZE * SIZE + y * SIZE + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(data, &[3, SIZE, SIZE])
}

fn step_in(value: f32, limit: f32) -> f32 {
    f32::from(value <= limit)
}

/// A class-balanced SynthObjects dataset of `n` examples, deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn synth_objects(n: usize, seed: u64) -> Dataset {
    synth_objects_styled(n, seed, &ObjectStyle::default())
}

/// [`synth_objects`] with explicit style knobs.
pub fn synth_objects_styled(n: usize, seed: u64, style: &ObjectStyle) -> Dataset {
    assert!(n > 0, "need at least one example");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(0xC1FA_2024));
    let mut items = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % CLASSES;
        items.push(object_image(class, style, &mut rng));
        labels.push(class);
    }
    Dataset::new(Tensor::stack(&items), labels, CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_range() {
        let ds = synth_objects(40, 1);
        assert_eq!(ds.images.shape(), &[40, 3, SIZE, SIZE]);
        assert!(ds.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ds.class_histogram(), vec![4; 10]);
    }

    #[test]
    fn determinism_in_seed() {
        let a = synth_objects(10, 5);
        let b = synth_objects(10, 5);
        let c = synth_objects(10, 6);
        assert_eq!(a.images, b.images);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn classes_are_visually_distinct_without_noise() {
        let style = ObjectStyle { noise: 0.0, jitter: 0.0, radius: (10.0, 10.0) };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let images: Vec<Tensor> = (0..CLASSES).map(|c| object_image(c, &style, &mut rng)).collect();
        for i in 0..CLASSES {
            for j in (i + 1)..CLASSES {
                let dist = images[i].zip_map(&images[j], |a, b| a - b).l2_norm();
                assert!(dist > 1.0, "classes {i} and {j} collapse (dist {dist})");
            }
        }
    }

    #[test]
    fn ring_has_hollow_center_and_disc_does_not() {
        let style = ObjectStyle { noise: 0.0, jitter: 0.0, radius: (10.0, 10.0) };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let disc = object_image(0, &style, &mut rng);
        let ring = object_image(3, &style, &mut rng);
        let center = |img: &Tensor, ch: usize| img[[ch, SIZE / 2, SIZE / 2]];
        let rim = |img: &Tensor, ch: usize| img[[ch, SIZE / 2, SIZE / 2 + 9]];
        // The disc's center matches its rim; the ring's center matches its
        // background corner instead.
        assert!((center(&disc, 0) - rim(&disc, 0)).abs() < 0.01);
        assert!((center(&ring, 0) - ring[[0, 1, 1]]).abs() < 0.01);
        assert!((center(&ring, 0) - rim(&ring, 0)).abs() > 0.1);
    }

    #[test]
    #[should_panic(expected = "class must be 0..=9")]
    fn rejects_out_of_range_class() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = object_image(10, &ObjectStyle::default(), &mut rng);
    }
}
