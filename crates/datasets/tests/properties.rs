//! Property-based tests of the synthetic dataset generators.

use proptest::prelude::*;

use da_datasets::digits::{synth_digits, CLASSES as DIGIT_CLASSES};
use da_datasets::objects::synth_objects;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated digit image is in range, correctly shaped, and
    /// labeled in range; generation is deterministic in the seed.
    #[test]
    fn digit_generator_laws(n in 1usize..60, seed in 0u64..1000) {
        let a = synth_digits(n, seed);
        prop_assert_eq!(a.images.shape(), &[n, 1, 28, 28]);
        prop_assert_eq!(a.labels.len(), n);
        prop_assert!(a.labels.iter().all(|&l| l < DIGIT_CLASSES));
        prop_assert!(a.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let b = synth_digits(n, seed);
        prop_assert_eq!(a.images, b.images);
        prop_assert_eq!(a.labels, b.labels);
    }

    /// Same for objects (RGB).
    #[test]
    fn object_generator_laws(n in 1usize..40, seed in 0u64..1000) {
        let a = synth_objects(n, seed);
        prop_assert_eq!(a.images.shape(), &[n, 3, 32, 32]);
        prop_assert!(a.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let b = synth_objects(n, seed);
        prop_assert_eq!(a.images, b.images);
    }

    /// Labels follow the round-robin class balance.
    #[test]
    fn class_balance(n in 10usize..100) {
        let ds = synth_digits(n, 1);
        let hist = ds.class_histogram();
        let (min, max) = (hist.iter().min().copied().unwrap_or(0), hist.iter().max().copied().unwrap_or(0));
        prop_assert!(max - min <= 1, "imbalanced: {hist:?}");
    }

    /// Different seeds give different data (no stream collapse).
    #[test]
    fn seeds_matter(seed in 0u64..500) {
        let a = synth_digits(10, seed);
        let b = synth_digits(10, seed + 1);
        prop_assert_ne!(a.images, b.images);
    }
}
