//! Criterion benches regenerating every table and figure of the paper's
//! evaluation (one bench target per artifact; see `benches/`).
//!
//! Each bench first *prints* the regenerated table/series (so `cargo bench`
//! output doubles as the reproduction record captured in EXPERIMENTS.md),
//! then times the experiment's core kernel with Criterion.

use da_core::{Budget, ModelCache};

/// The artifacts directory shared by all benches (workspace-root
/// `artifacts/`, overridable via `DA_ARTIFACTS_DIR`).
pub fn bench_cache() -> ModelCache {
    if std::env::var_os("DA_ARTIFACTS_DIR").is_some() {
        return ModelCache::default_location();
    }
    ModelCache::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../artifacts"))
}

/// The budget benches run with: `DA_BUDGET=paper|quick|smoke` (default
/// `quick`).
pub fn bench_budget() -> Budget {
    match std::env::var("DA_BUDGET").as_deref() {
        Ok("paper") => Budget::paper(),
        Ok("smoke") => Budget::smoke(),
        _ => Budget::quick(),
    }
}
