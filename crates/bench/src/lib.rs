//! Criterion benches regenerating every table and figure of the paper's
//! evaluation (one bench target per artifact; see `benches/`).
//!
//! Each bench first *prints* the regenerated table/series (so `cargo bench`
//! output doubles as the reproduction record captured in EXPERIMENTS.md),
//! then times the experiment's core kernel with Criterion.
//!
//! The perf baselines (`gemm_backend_throughput`, `engine_throughput`)
//! additionally honor `DA_BENCH_JSON=<path>`: when set, the printed table is
//! also written as a machine-readable, schema-checked JSON artifact — see
//! [`json`] for the document shape, the `check_bench_json` binary for CI
//! validation, and `DA_BENCH_SMOKE=1` for the reduced smoke configuration.

pub mod json;

use da_core::{Budget, ModelCache};

/// The artifacts directory shared by all benches (workspace-root
/// `artifacts/`, overridable via `DA_ARTIFACTS_DIR`).
pub fn bench_cache() -> ModelCache {
    if std::env::var_os("DA_ARTIFACTS_DIR").is_some() {
        return ModelCache::default_location();
    }
    ModelCache::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../artifacts"))
}

/// The budget benches run with: `DA_BUDGET=paper|quick|smoke` (default
/// `quick`).
pub fn bench_budget() -> Budget {
    match std::env::var("DA_BUDGET").as_deref() {
        Ok("paper") => Budget::paper(),
        Ok("smoke") => Budget::smoke(),
        _ => Budget::quick(),
    }
}
