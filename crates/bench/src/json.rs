//! Machine-readable bench output: an env-gated JSON emitter and its schema
//! validator.
//!
//! The perf benches print human tables; CI and trend tooling need numbers a
//! machine can diff. When `DA_BENCH_JSON=<path>` is set, a bench builds a
//! [`JsonEmitter`], records one [`JsonEmitter::record`] per table row, and
//! writes a single JSON document on [`JsonEmitter::finish`] (e.g.
//! `BENCH_gemm.json` from `gemm_backend_throughput`, `BENCH_engine.json`
//! from `engine_throughput`). Without the variable the emitter is inert, so
//! interactive `cargo bench` runs stay unchanged.
//!
//! The document shape (`schema` 1):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "gemm_backend_throughput",
//!   "records": [
//!     {"labels": {"size": "256x256x256", "multiplier": "ax-fpm"},
//!      "metrics": {"batched_macs_per_sec": 2.0e9, "speedup": 9.7}}
//!   ]
//! }
//! ```
//!
//! `labels` are strings (row identity), `metrics` are finite `f64`s.
//! [`validate`] checks exactly this shape and is run by CI's smoke job
//! (`check_bench_json` binary) against a freshly emitted file, so the
//! emitter and the schema cannot drift apart. [`parse`] returns the
//! [`Record`]s themselves; `check_bench_json compare <old> <new>` diffs two
//! artifacts row by row (matched on their full label set) and flags
//! throughput regressions — the intended way to produce before/after
//! numbers for PR descriptions. The writer emits a strict
//! subset of JSON (only `\"`, `\\`, and `\uXXXX` control escapes; no
//! non-finite numbers), and the validator is a parser for exactly that
//! subset — both sides are
//! dependency-free because the build environment has no registry access.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The environment variable that enables JSON emission and names the output
/// file. Prefer an absolute path: cargo runs bench binaries with the
/// *package* directory (`crates/bench`) as their working directory, so a
/// relative path does not resolve against the workspace root.
pub const ENV_VAR: &str = "DA_BENCH_JSON";

/// The schema version written and accepted.
pub const SCHEMA: u32 = 1;

/// One bench table row: string labels (identity) plus float metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Record {
    labels: BTreeMap<String, String>,
    metrics: BTreeMap<String, f64>,
}

impl Record {
    /// Start an empty record.
    pub fn new() -> Record {
        Record::default()
    }

    /// Attach a string label (row identity: size, model, multiplier, ...).
    pub fn label(mut self, key: &str, value: impl Into<String>) -> Record {
        self.labels.insert(key.to_string(), value.into());
        self
    }

    /// Attach a numeric metric. Non-finite values are a caller bug.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite (the schema forbids them).
    pub fn metric(mut self, key: &str, value: f64) -> Record {
        assert!(value.is_finite(), "metric {key} must be finite, got {value}");
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// The record's identity labels.
    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }

    /// The record's metrics.
    pub fn metrics(&self) -> &BTreeMap<String, f64> {
        &self.metrics
    }
}

/// A parsed bench document (see [`parse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// The emitting bench's name.
    pub bench: String,
    /// The table rows.
    pub records: Vec<Record>,
}

/// Env-gated emitter: buffers [`Record`]s and writes the document on
/// [`finish`](JsonEmitter::finish).
#[derive(Debug)]
pub struct JsonEmitter {
    bench: String,
    out: Option<PathBuf>,
    records: Vec<Record>,
}

impl JsonEmitter {
    /// An emitter for `bench`, active iff [`ENV_VAR`] is set.
    pub fn from_env(bench: &str) -> JsonEmitter {
        JsonEmitter {
            bench: bench.to_string(),
            out: std::env::var_os(ENV_VAR).map(PathBuf::from),
            records: Vec::new(),
        }
    }

    /// An emitter writing to an explicit path (tests).
    pub fn to_path(bench: &str, path: impl Into<PathBuf>) -> JsonEmitter {
        JsonEmitter { bench: bench.to_string(), out: Some(path.into()), records: Vec::new() }
    }

    /// Whether emission is enabled.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Buffer one record (no-op when disabled).
    pub fn record(&mut self, record: Record) {
        if self.enabled() {
            self.records.push(record);
        }
    }

    /// Serialize and write the document; returns the path written, if any.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (a bench invoked explicitly with
    /// `DA_BENCH_JSON` pointing at an unwritable path should fail loudly,
    /// not silently drop the artifact).
    pub fn finish(self) -> Option<PathBuf> {
        let path = self.out?;
        let doc = render(&self.bench, &self.records);
        debug_assert!(validate(&doc).is_ok(), "emitter wrote an invalid document");
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
        f.write_all(doc.as_bytes()).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        Some(path)
    }
}

/// Serialize the document (strict subset of JSON; see module docs).
fn render(bench: &str, records: &[Record]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{{\n  \"schema\": {SCHEMA},\n  \"bench\": \"{}\",\n", escape(bench)));
    s.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("    {\"labels\": {");
        for (j, (k, v)) in r.labels.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
        }
        s.push_str("}, \"metrics\": {");
        for (j, (k, v)) in r.metrics.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            // `{v:?}` prints f64 with enough digits to round-trip.
            s.push_str(&format!("\"{}\": {v:?}", escape(k)));
        }
        s.push_str(if i + 1 == records.len() { "}}\n" } else { "}},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate a document against the emitter's schema (see module docs).
/// Returns the number of records, or a description of the first violation.
pub fn validate(doc: &str) -> Result<usize, String> {
    parse(doc).map(|d| d.records.len())
}

/// Parse a document into its [`Record`]s, validating the schema along the
/// way (the `compare` mode of `check_bench_json` diffs two parses).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn parse(doc: &str) -> Result<BenchDoc, String> {
    let mut p = Parser { s: doc.as_bytes(), i: 0 };
    let parsed = p.document()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(parsed)
}

/// Validate a file on disk.
///
/// # Errors
///
/// Returns a description of the I/O failure or the first schema violation.
pub fn validate_file(path: &Path) -> Result<usize, String> {
    parse_file(path).map(|d| d.records.len())
}

/// Parse a file on disk.
///
/// # Errors
///
/// Returns a description of the I/O failure or the first schema violation.
pub fn parse_file(path: &Path) -> Result<BenchDoc, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse(&doc)
}

/// Recursive-descent parser for exactly the emitted subset.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), String> {
        self.ws();
        if self.s[self.i..].starts_with(tok.as_bytes()) {
            self.i += tok.len();
            Ok(())
        } else {
            Err(format!("expected {tok:?} at offset {}", self.i))
        }
    }

    fn peek(&mut self, tok: &str) -> bool {
        self.ws();
        self.s[self.i..].starts_with(tok.as_bytes())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.s.get(self.i + 1);
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 2..self.i + 6)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => out.push(c),
                                None => return Err(format!("bad \\u escape at offset {}", self.i)),
                            }
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 2;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.i));
                }
                Some(&c) => {
                    out.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii number");
        let v: f64 = text.parse().map_err(|e| format!("bad number {text:?} at {start}: {e}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite metric {text:?}"));
        }
        Ok(v)
    }

    /// `{ "schema": N, "bench": "...", "records": [...] }`
    fn document(&mut self) -> Result<BenchDoc, String> {
        self.expect("{")?;
        self.expect("\"schema\"")?;
        self.expect(":")?;
        let schema = self.number()?;
        if schema != f64::from(SCHEMA) {
            return Err(format!("unsupported schema {schema}"));
        }
        self.expect(",")?;
        self.expect("\"bench\"")?;
        self.expect(":")?;
        let bench = self.string()?;
        if bench.is_empty() {
            return Err("empty bench name".into());
        }
        self.expect(",")?;
        self.expect("\"records\"")?;
        self.expect(":")?;
        self.expect("[")?;
        let mut records = Vec::new();
        if !self.peek("]") {
            loop {
                records.push(self.record()?);
                if self.peek(",") {
                    self.expect(",")?;
                } else {
                    break;
                }
            }
        }
        self.expect("]")?;
        self.expect("}")?;
        Ok(BenchDoc { bench, records })
    }

    /// `{ "labels": {"k": "v", ...}, "metrics": {"k": 1.0, ...} }`
    fn record(&mut self) -> Result<Record, String> {
        let mut out = Record::new();
        self.expect("{")?;
        self.expect("\"labels\"")?;
        self.expect(":")?;
        self.expect("{")?;
        if !self.peek("}") {
            loop {
                let key = self.string()?;
                self.expect(":")?;
                let value = self.string()?;
                out.labels.insert(key, value);
                if self.peek(",") {
                    self.expect(",")?;
                } else {
                    break;
                }
            }
        }
        self.expect("}")?;
        self.expect(",")?;
        self.expect("\"metrics\"")?;
        self.expect(":")?;
        self.expect("{")?;
        if !self.peek("}") {
            loop {
                let key = self.string()?;
                self.expect(":")?;
                let value = self.number()?;
                out.metrics.insert(key, value);
                if self.peek(",") {
                    self.expect(",")?;
                } else {
                    break;
                }
            }
        }
        self.expect("}")?;
        self.expect("}")?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_validate() {
        let records = vec![
            Record::new()
                .label("size", "256x256x256")
                .label("multiplier", "ax-fpm")
                .metric("batched_macs_per_sec", 2.05e9)
                .metric("speedup", 9.7),
            Record::new().label("size", "64x64x64").metric("batched_macs_per_sec", 1.0),
        ];
        let doc = render("gemm_backend_throughput", &records);
        assert_eq!(validate(&doc), Ok(2));
    }

    #[test]
    fn empty_records_validate() {
        assert_eq!(validate(&render("engine_throughput", &[])), Ok(0));
    }

    #[test]
    fn parse_round_trips_records() {
        let records = vec![
            Record::new().label("size", "64x64x64").metric("macs", 1.5).metric("speedup", 2.0),
            Record::new().label("a", "x\"y").metric("m", -3.25e-2),
        ];
        let doc = parse(&render("gemm_backend_throughput", &records)).expect("parses");
        assert_eq!(doc.bench, "gemm_backend_throughput");
        assert_eq!(doc.records, records);
        assert_eq!(doc.records[0].labels()["size"], "64x64x64");
        assert_eq!(doc.records[0].metrics()["speedup"], 2.0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("").is_err());
        assert!(validate("{}").is_err());
        assert!(validate("{\"schema\": 2, \"bench\": \"x\", \"records\": []}").is_err());
        assert!(validate("{\"schema\": 1, \"bench\": \"\", \"records\": []}").is_err());
        let doc = render("x", &[Record::new().metric("m", 1.0)]);
        assert!(validate(&doc[..doc.len() - 3]).is_err(), "truncation must fail");
        assert!(validate(&doc.replace("1.0", "NaN")).is_err(), "non-finite must fail");
        let raw_ctl = "{\"schema\": 1, \"bench\": \"a\tb\", \"records\": []}";
        assert!(validate(raw_ctl).is_err(), "raw control bytes must fail");
    }

    #[test]
    fn control_characters_round_trip_escaped() {
        let doc = render("bench\nname", &[Record::new().label("k", "a\tb").metric("m", 1.0)]);
        assert!(doc.contains("\\u000a") && doc.contains("\\u0009"), "escaped: {doc}");
        assert_eq!(validate(&doc), Ok(1));
    }

    #[test]
    fn emitter_is_inert_without_path() {
        let mut e = JsonEmitter { bench: "x".into(), out: None, records: Vec::new() };
        e.record(Record::new().metric("m", 1.0));
        assert!(!e.enabled());
        assert_eq!(e.finish(), None);
    }

    #[test]
    fn emitter_writes_validatable_file() {
        let path = std::env::temp_dir().join(format!("da_bench_json_{}.json", std::process::id()));
        let mut e = JsonEmitter::to_path("gemm_backend_throughput", &path);
        assert!(e.enabled());
        e.record(Record::new().label("size", "64x64x64").metric("macs_per_sec", 5.4e8));
        let written = e.finish().expect("path configured");
        assert_eq!(validate_file(&written), Ok(1));
        std::fs::remove_file(&written).ok();
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_metrics_are_rejected_at_record_time() {
        let _ = Record::new().metric("m", f64::NAN);
    }
}
