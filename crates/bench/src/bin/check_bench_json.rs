//! Schema-check and diff `DA_BENCH_JSON` artifacts.
//!
//! Validate (CI smoke step):
//!
//! ```sh
//! check_bench_json <file.json>...
//! ```
//!
//! exits non-zero with a diagnostic if any file fails
//! `da_bench::json::validate`, prints the record count per file otherwise.
//!
//! Compare (the way to report numbers in PR descriptions):
//!
//! ```sh
//! check_bench_json compare <old.json> <new.json> [--threshold PCT]
//! ```
//!
//! matches records by their full label set, prints the per-row delta of
//! every shared metric, and flags **regressions**: throughput metrics
//! (`*_per_sec` and `speedup*` ratios) that dropped by more than the threshold
//! (default 10%). Exits non-zero if any row regressed, so the diff doubles
//! as a gate. Rows present in only one artifact are reported individually
//! (`[new row]` / `[removed row]`) *and* tallied in a closing summary, so a
//! row vanishing between artifacts — a bench silently dropping its int4 or
//! bitslice table, say — is impossible to miss in the diff output. Orphan
//! rows never fail the comparison (benches grow tables over time).

use std::path::Path;
use std::process::ExitCode;

use da_bench::json::{parse_file, BenchDoc, Record};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            eprintln!("usage: check_bench_json <file.json>...");
            eprintln!("       check_bench_json compare <old.json> <new.json> [--threshold PCT]");
            ExitCode::FAILURE
        }
        Some("compare") => compare_command(&args[1..]),
        _ => validate_command(&args),
    }
}

fn validate_command(files: &[String]) -> ExitCode {
    let mut ok = true;
    for arg in files {
        match da_bench::json::validate_file(Path::new(arg)) {
            Ok(n) => println!("{arg}: ok ({n} records)"),
            Err(e) => {
                eprintln!("{arg}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn compare_command(args: &[String]) -> ExitCode {
    let mut files: Vec<&String> = Vec::new();
    let mut threshold = 10.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => threshold = v,
                _ => {
                    eprintln!("--threshold needs a non-negative percentage");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(arg);
        }
    }
    let [old_path, new_path] = files[..] else {
        eprintln!("usage: check_bench_json compare <old.json> <new.json> [--threshold PCT]");
        return ExitCode::FAILURE;
    };
    let (old_doc, new_doc) =
        match (parse_file(Path::new(old_path)), parse_file(Path::new(new_path))) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) => {
                eprintln!("{old_path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
            (_, Err(e)) => {
                eprintln!("{new_path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        };
    if old_doc.bench != new_doc.bench {
        eprintln!("warning: comparing different benches ({} vs {})", old_doc.bench, new_doc.bench);
    }
    let outcome = compare(&old_doc, &new_doc, threshold);
    if !outcome.added.is_empty() || !outcome.removed.is_empty() {
        println!(
            "rows only in one artifact: {} added, {} removed",
            outcome.added.len(),
            outcome.removed.len()
        );
    }
    match outcome.regressions {
        0 => ExitCode::SUCCESS,
        n => {
            eprintln!("{n} metric(s) regressed beyond {threshold}%");
            ExitCode::FAILURE
        }
    }
}

/// A stable, human-readable row identity from a record's labels.
fn row_key(r: &Record) -> String {
    r.labels().iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
}

/// Whether a metric is a higher-is-better throughput figure (rates and
/// speedup ratios, whatever their suffix).
fn is_throughput(name: &str) -> bool {
    name.ends_with("_per_sec") || name.contains("speedup")
}

/// What a comparison found: flagged regressions plus the row keys present
/// in only one artifact. `main` prints the orphan tally; tests assert it.
struct CompareOutcome {
    regressions: usize,
    /// Row keys present only in the new artifact.
    added: Vec<String>,
    /// Row keys present only in the old artifact.
    removed: Vec<String>,
}

/// Print the per-row metric deltas; returns the flagged regressions and
/// the added/removed orphan rows.
fn compare(old_doc: &BenchDoc, new_doc: &BenchDoc, threshold: f64) -> CompareOutcome {
    println!(
        "comparing {} -> {} (regression threshold {threshold}%)",
        old_doc.bench, new_doc.bench
    );
    let mut outcome = CompareOutcome { regressions: 0, added: Vec::new(), removed: Vec::new() };
    let mut matched_old = vec![false; old_doc.records.len()];
    for new in &new_doc.records {
        let key = row_key(new);
        let old = old_doc.records.iter().position(|r| r.labels() == new.labels());
        let Some(oi) = old else {
            println!("  [new row]   {key}");
            outcome.added.push(key);
            continue;
        };
        matched_old[oi] = true;
        let old = &old_doc.records[oi];
        for (name, &new_v) in new.metrics() {
            let Some(&old_v) = old.metrics().get(name) else {
                println!("  [new metric] {key} :: {name} = {new_v:.4}");
                continue;
            };
            if old_v == 0.0 {
                continue;
            }
            let delta = (new_v - old_v) / old_v * 100.0;
            let flag = if is_throughput(name) && delta < -threshold {
                outcome.regressions += 1;
                "  REGRESSION"
            } else {
                ""
            };
            println!("  {key} :: {name}: {old_v:.4} -> {new_v:.4} ({delta:+.1}%){flag}");
        }
    }
    for (oi, seen) in matched_old.iter().enumerate() {
        if !seen {
            let key = row_key(&old_doc.records[oi]);
            println!("  [removed row] {key}");
            outcome.removed.push(key);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: Vec<Record>) -> BenchDoc {
        BenchDoc { bench: "gemm_backend_throughput".into(), records: rows }
    }

    fn row(path: &str, rate: f64) -> Record {
        Record::new().label("size", "64x64x64").label("path", path).metric("lut_macs_per_sec", rate)
    }

    #[test]
    fn orphan_rows_are_reported_but_do_not_regress() {
        let old = doc(vec![row("int8-lut", 3.0e9), row("bitslice", 1.0e8)]);
        let new = doc(vec![row("int8-lut", 3.1e9), row("int4-shuffle", 9.0e9)]);
        let out = compare(&old, &new, 10.0);
        assert_eq!(out.regressions, 0);
        assert_eq!(out.added, vec!["path=int4-shuffle size=64x64x64"]);
        assert_eq!(out.removed, vec!["path=bitslice size=64x64x64"]);
    }

    #[test]
    fn matched_rows_still_gate_on_throughput_drops() {
        let old = doc(vec![row("int8-lut", 3.0e9)]);
        let new = doc(vec![row("int8-lut", 1.0e9)]);
        let out = compare(&old, &new, 10.0);
        assert_eq!(out.regressions, 1);
        assert!(out.added.is_empty() && out.removed.is_empty());
    }

    #[test]
    fn identical_artifacts_have_no_orphans() {
        let rows = vec![row("int8-lut", 3.0e9), row("int4-shuffle", 9.0e9)];
        let out = compare(&doc(rows.clone()), &doc(rows), 10.0);
        assert_eq!(out.regressions, 0);
        assert!(out.added.is_empty() && out.removed.is_empty());
    }
}
