//! Schema-check `DA_BENCH_JSON` artifacts (CI smoke step).
//!
//! Usage: `check_bench_json <file.json>...` — exits non-zero with a
//! diagnostic if any file fails `da_bench::json::validate`, prints the
//! record count per file otherwise.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: check_bench_json <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for arg in &args {
        match da_bench::json::validate_file(Path::new(arg)) {
            Ok(n) => println!("{arg}: ok ({n} records)"),
            Err(e) => {
                eprintln!("{arg}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
