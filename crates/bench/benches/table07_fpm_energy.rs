//! Table 7: normalized energy and delay of the full FPMs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::array::ArrayMultiplierSpec;
use da_arith::energy::{fpm_cost, CostParams};
use da_core::experiments::energy::table7;

fn bench(c: &mut Criterion) {
    println!("\n{}", table7());

    let params = CostParams::default();
    c.bench_function("table07/fpm_cost_model", |b| {
        b.iter(|| black_box(fpm_cost(&ArrayMultiplierSpec::ax_mantissa(24), &params)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
