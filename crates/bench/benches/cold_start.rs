//! Cold-start benchmark: compiling a serving plan from scratch vs mapping a
//! saved snapshot (`da_nn::snapshot`), per multiplier kind × plan
//! precision, on LeNet-5.
//!
//! "Cold start" is the wall time from owning a trained network (or a
//! snapshot file) to a ready-to-serve [`InferencePlan`], plus the
//! time-to-first-inference on top of it. Compiling a quantized plan runs an
//! f32 calibration pass and builds one 256×256 product table per quantizer
//! pair — for gate-level wirings (HEAP) that is 65 536 full gate-level
//! evaluations per table, the dominant cost this snapshot path deletes:
//! loading performs no calibration and no LUT build, and the tables are
//! `mmap`ed zero-copy rather than rebuilt or even copied.
//!
//! `DA_BENCH_JSON=<path>` writes the rows as a machine-readable document
//! (scenario `cold_start`; see [`da_bench::json`]). `DA_BENCH_SMOKE=1`
//! restricts the sweep to the headline acceptance case — gate-level HEAP at
//! int8 — for CI's emit-and-schema-check smoke job.

use std::path::PathBuf;
use std::time::Instant;

use da_arith::MultiplierKind;
use da_bench::json::{JsonEmitter, Record};
use da_nn::engine::InferencePlan;
use da_nn::zoo::lenet5;
use da_tensor::Tensor;
use rand::SeedableRng;

/// Wall-clock milliseconds for one run of `f`.
fn wall_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("da-bench-cold-{}-{tag}.daplan", std::process::id()))
}

fn main() {
    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut emitter = JsonEmitter::from_env("cold_start");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    println!("Cold start: compile-from-network vs map-from-snapshot (LeNet-5; lower is");
    println!("better, speedup = compile / load; ttfi = plan ready -> first logits out)");
    println!();
    println!(
        "{:<12} {:<6} {:>12} {:>10} {:>9} {:>12} {:>11} {:>10}",
        "multiplier", "prec", "compile", "load", "speedup", "ttfi-compile", "ttfi-load", "snapshot"
    );

    let mut net = lenet5(10, &mut rng);
    let calibration = Tensor::rand_uniform(&[8, 1, 28, 28], 0.0, 1.0, &mut rng);
    let x1 = Tensor::rand_uniform(&[1, 1, 28, 28], 0.0, 1.0, &mut rng);

    for kind in MultiplierKind::ALL {
        if smoke && kind != MultiplierKind::Heap {
            continue;
        }
        let mult = kind.build();
        net.set_multiplier(Some(mult.clone()));
        let precisions: &[&str] = if smoke { &["int8"] } else { &["f32", "int8", "int4"] };
        for &precision in precisions {
            let (plan, compile_ms) = wall_ms(|| match precision {
                "f32" => InferencePlan::compile(&net, Some(mult.clone())),
                "int8" => InferencePlan::compile_quantized(&net, Some(mult.clone()), &calibration),
                _ => InferencePlan::compile_quantized_int4(&net, Some(mult.clone()), &calibration),
            });
            let plan = plan.expect("lenet5 compiles at every precision");
            let (_, ttfi_compile_ms) = wall_ms(|| plan.predict_batch(&x1));

            let path = snapshot_path(&format!("{}-{precision}", kind.as_str()));
            plan.save(&path).expect("snapshot save");
            let snapshot_bytes = std::fs::metadata(&path).expect("snapshot stat").len();

            let (loaded, load_ms) = wall_ms(|| InferencePlan::load(&path).expect("snapshot load"));
            let (first, ttfi_load_ms) = wall_ms(|| loaded.predict_batch(&x1));

            // The snapshot contract: serving from the mapping is
            // bit-identical to serving from the compiled plan.
            let want = plan.predict_batch(&x1);
            assert_eq!(
                first.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "loaded plan must serve bit-identically"
            );
            std::fs::remove_file(&path).ok();

            let speedup = compile_ms / load_ms;
            println!(
                "{:<12} {:<6} {:>10.1}ms {:>8.2}ms {:>8.1}x {:>10.2}ms {:>9.2}ms {:>8.0}KiB",
                kind.as_str(),
                precision,
                compile_ms,
                load_ms,
                speedup,
                ttfi_compile_ms,
                ttfi_load_ms,
                snapshot_bytes as f64 / 1024.0
            );
            emitter.record(
                Record::new()
                    .label("scenario", "cold_start")
                    .label("model", "lenet5")
                    .label("multiplier", kind.as_str())
                    .label("precision", precision)
                    .metric("compile_ms", compile_ms)
                    .metric("load_ms", load_ms)
                    .metric("speedup", speedup)
                    .metric("ttfi_compile_ms", compile_ms + ttfi_compile_ms)
                    .metric("ttfi_load_ms", load_ms + ttfi_load_ms)
                    .metric("snapshot_bytes", snapshot_bytes as f64),
            );
        }
    }

    if let Some(path) = emitter.finish() {
        println!("wrote {}", path.display());
    }
}
