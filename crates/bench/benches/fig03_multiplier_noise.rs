//! Figure 3: Ax-FPM noise profile — regeneration + multiplier throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::MultiplierKind;
use da_bench::bench_budget;
use da_core::experiments::profiles::fig3;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig3(&bench_budget()));

    let ax = MultiplierKind::AxFpm.build();
    let gate = da_arith::fpm::FloatMultiplier::ax_fpm();
    c.bench_function("fig03/ax_fpm_multiply_fast_path", |b| {
        b.iter(|| black_box(ax.multiply(black_box(0.37), black_box(0.82))))
    });
    c.bench_function("fig03/ax_fpm_multiply_gate_level", |b| {
        b.iter(|| black_box(gate.multiply_gate_level(black_box(0.37), black_box(0.82))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
