//! Table 10: transferability of exact-LeNet adversarials to HEAP-based and
//! Ax-FPM-based classifiers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::MultiplierKind;
use da_attacks::TargetModel;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::transfer::{table10, with_multiplier};

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", table10(&cache, &budget));

    // Kernel: HEAP-LeNet inference (the expensive gate-level target).
    let heap = with_multiplier(cache.lenet(&budget), MultiplierKind::Heap);
    let ds = cache.digits_test(1);
    let x = ds.images.batch_item(0);
    let mut group = c.benchmark_group("table10");
    group.sample_size(10);
    group.bench_function("heap_lenet_predict", |b| {
        b.iter(|| black_box(TargetModel::predict(&heap, black_box(&x))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
