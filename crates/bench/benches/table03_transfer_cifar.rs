//! Table 3: attack transferability, exact AlexNet → Ax-FPM AlexNet
//! (SynthObjects).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::MultiplierKind;
use da_attacks::TargetModel;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::transfer::{table3, with_multiplier};

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", table3(&cache, &budget));

    // Kernel: one DA-AlexNet inference (the table's inner evaluation step).
    let da = with_multiplier(cache.alexnet(&budget), MultiplierKind::AxFpm);
    let ds = cache.objects_test(1);
    let x = ds.images.batch_item(0);
    let mut group = c.benchmark_group("table03");
    group.sample_size(10);
    group.bench_function("da_alexnet_predict", |b| {
        b.iter(|| black_box(TargetModel::predict(&da, black_box(&x))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
