//! Ablation: cell port-map (wiring) sensitivity of the AMA5 array.
//!
//! DESIGN.md §4/§9: the paper's Figure-3 inflation depends on an undisclosed
//! wiring choice. This bench sweeps every input-port permutation of the AMA5
//! cells and reports the resulting multiplier-level error profile — showing
//! that only the canonical wiring reproduces the published characterization,
//! one of the contested aspects of the defense.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::array::{ArrayMultiplierSpec, CellAssignment, CpaKind, PortMap};
use da_arith::fpm::FloatMultiplier;
use da_arith::metrics::error_stats;
use da_arith::AdderKind;

fn bench(c: &mut Criterion) {
    println!("\nAblation: AMA5 array wiring sensitivity (20k samples each)");
    println!("{:<22} {:>8} {:>8} {:>11}", "wiring", "MRED", "NMED", "inflation");
    for pm in PortMap::ALL {
        for (cpa_name, cpa) in [
            ("ama5-cpa", CpaKind::Ripple { kind: AdderKind::Ama5, swap: false }),
            ("exact-cpa", CpaKind::Exact),
        ] {
            let spec = ArrayMultiplierSpec {
                width: 24,
                cells: CellAssignment::Uniform(AdderKind::Ama5),
                port_map: pm,
                cpa,
            };
            let fpm = FloatMultiplier::with_core(format!("{pm}/{cpa_name}"), spec);
            let stats = error_stats(&fpm, 20_000, 42, (0.0, 1.0));
            println!(
                "{:<22} {:>8.3} {:>8.3} {:>10.1}%",
                format!("{pm} {cpa_name}"),
                stats.mred,
                stats.nmed,
                stats.inflation_rate * 100.0
            );
        }
    }
    println!("(canonical = 'A=pp,B=sum,C=carry ama5-cpa': ~96-100% inflation, MRED ~0.33-0.39)");

    let canonical = FloatMultiplier::ax_fpm();
    c.bench_function("ablation/canonical_wiring_multiply", |b| {
        b.iter(|| black_box(canonical.multiply_gate_level(black_box(0.61), black_box(0.43))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
