//! Figures 10 & 11: MSE and PSNR of white-box adversarials (DeepFool, C&W)
//! against exact and DA classifiers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_attacks::metrics::{mse, psnr};
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::whitebox::{fig8_fig10, fig9_fig11};
use da_tensor::Tensor;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    for report in [fig8_fig10(&cache, &budget), fig9_fig11(&cache, &budget)] {
        println!(
            "\nFig 10/11 [{}]: MSE exact {:.5} vs DA {:.5} (ratio {:.2}x) | PSNR exact {:.2} dB vs DA {:.2} dB (drop {:.2} dB)",
            report.attack,
            report.exact.mean_mse(),
            report.approx.mean_mse(),
            report.mse_ratio(),
            report.exact.mean_psnr(),
            report.approx.mean_psnr(),
            report.psnr_drop(),
        );
    }

    // Kernel: the metric computations themselves.
    let a = Tensor::filled(&[1, 28, 28], 0.5);
    let b = Tensor::filled(&[1, 28, 28], 0.47);
    c.bench_function("fig10_11/mse_psnr_pair", |bch| {
        bch.iter(|| (black_box(mse(&a, &b)), black_box(psnr(&a, &b))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
