//! Figures 8 & 9: white-box DeepFool / C&W L2 perturbation price,
//! exact vs DA classifiers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_attacks::gradient::DeepFool;
use da_attacks::Attack;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::whitebox::{fig8_fig10, fig9_fig11};

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    let df = fig8_fig10(&cache, &budget);
    println!("\n{df}");
    let cw = fig9_fig11(&cache, &budget);
    println!("{cw}");
    println!(
        "series (Fig 8, DF L2 per sample)   exact: {:?}",
        df.exact.l2.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!(
        "                                   DA   : {:?}",
        df.approx.l2.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // Kernel: one DeepFool run against the exact model.
    let model = cache.lenet(&budget);
    let ds = cache.digits_test(1);
    let x = ds.images.batch_item(0);
    let attack = DeepFool::new(40, 0.02);
    let mut group = c.benchmark_group("fig08_09");
    group.sample_size(10);
    group.bench_function("deepfool_exact_one", |b| {
        b.iter(|| black_box(attack.run(&model, black_box(&x), ds.labels[0])))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
