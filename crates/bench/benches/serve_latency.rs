//! End-to-end serving latency through the TCP front end (`da_nn::net`).
//!
//! Boots a quantized LeNet-5 [`BatchServer`] behind an in-process
//! [`NetServer`] on a loopback socket and hammers it with concurrent
//! synchronous clients — the full production path: framing, reactor,
//! bounded queue, micro-batching, reply framing. Reported per scenario:
//! client-observed p50/p99 request latency, aggregate throughput, and the
//! realised mean batch size (how well the adaptive flush deadline is
//! coalescing under that load).
//!
//! `DA_BENCH_JSON=<path>` writes the rows as a machine-readable document
//! (scenario `serve_latency`; see [`da_bench::json`]); `DA_BENCH_SMOKE=1`
//! restricts the sweep to the lightest scenario for CI's
//! emit-and-schema-check smoke job. The same schema is emitted by
//! `examples/serve_loadgen.rs` against an out-of-process `da-serve`, so
//! the two documents are `check_bench_json`-comparable.

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_latency: the socket front end requires a Unix platform");
}

#[cfg(unix)]
fn main() {
    use std::time::{Duration, Instant};

    use da_arith::MultiplierKind;
    use da_bench::json::{JsonEmitter, Record};
    use da_datasets::digits::synth_digits;
    use da_nn::engine::InferencePlan;
    use da_nn::net::{Client, NetConfig, NetServer};
    use da_nn::serve::{BatchServer, ServeConfig};
    use da_nn::zoo::lenet5;
    use rand::SeedableRng;

    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut emitter = JsonEmitter::from_env("serve_latency");

    // One compile, shared by every scenario via the snapshot path — the
    // bench measures serving, not calibration.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = lenet5(10, &mut rng);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let calibration = synth_digits(32, 7).images;
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("LeNet-5 quantizes");
    let snap = std::env::temp_dir().join(format!("da-bench-serve-{}.daplan", std::process::id()));
    plan.save(&snap).expect("snapshot save");

    println!("Serve latency through the TCP front end (quantized LeNet-5, loopback)");
    println!();
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>11}",
        "scenario", "clients", "p50", "p99", "items/s", "mean batch"
    );

    let scenarios: &[(&str, usize, usize)] = if smoke {
        &[("light", 2, 16)]
    } else {
        &[("light", 1, 64), ("moderate", 4, 64), ("bursty", 8, 32)]
    };

    for &(name, clients, requests) in scenarios {
        let server =
            BatchServer::from_snapshot(&snap, ServeConfig::default()).expect("snapshot serves");
        let front =
            NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        let (addr, handle, join) = front.spawn();

        let data = synth_digits(clients * requests, 42);
        let start = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let images = &data.images;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        client
                            .set_read_timeout(Some(Duration::from_secs(30)))
                            .expect("read timeout");
                        (0..requests)
                            .map(|j| {
                                let item = images.batch_item(c * requests + j);
                                let t0 = Instant::now();
                                client
                                    .infer(item.shape(), item.data())
                                    .expect("transport")
                                    .expect("served");
                                t0.elapsed().as_secs_f64() * 1e3
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            let mut all: Vec<f64> =
                handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
            all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            all
        });
        let elapsed = start.elapsed().as_secs_f64();

        let mut probe = Client::connect(addr).expect("connect for stats");
        let stats = probe.stats().expect("stats");
        let (batches, items) = (stats.batches, stats.items);
        let mean_batch = if batches == 0 { 0.0 } else { items as f64 / batches as f64 };
        probe.shutdown_server().expect("shutdown handshake");
        drop(probe);
        handle.shutdown();
        join.join().expect("reactor thread").expect("reactor exit");

        let total = clients * requests;
        let p50 = percentile(&latencies, 50.0);
        let p99 = percentile(&latencies, 99.0);
        let items_per_sec = total as f64 / elapsed;
        println!(
            "{name:<22} {clients:>8} {p50:>8.3}ms {p99:>8.3}ms {items_per_sec:>12.0} {mean_batch:>11.2}"
        );

        emitter.record(
            Record::new()
                .label("scenario", "serve_latency")
                .label("load", name)
                .label("transport", "tcp-loopback")
                .label("clients", clients.to_string())
                .label("requests_per_client", requests.to_string())
                .metric("p50_ms", p50)
                .metric("p99_ms", p99)
                .metric("items_per_sec", items_per_sec)
                .metric("mean_batch", mean_batch),
        );
    }

    std::fs::remove_file(&snap).ok();
    if let Some(path) = emitter.finish() {
        println!();
        println!("bench JSON written to {}", path.display());
    }
}

/// `q`-th percentile of an ascending-sorted slice (nearest-rank).
#[cfg(unix)]
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}
