//! Figure 15: noise profiles of Ax-FPM vs HEAP side by side.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::MultiplierKind;
use da_bench::bench_budget;
use da_core::experiments::profiles::fig15;

fn bench(c: &mut Criterion) {
    let (ax, heap) = fig15(&bench_budget());
    println!("\n{ax}");
    println!("{heap}");

    let m = MultiplierKind::Heap.build();
    c.bench_function("fig15/heap_multiply", |b| {
        b.iter(|| black_box(m.multiply(black_box(0.37), black_box(0.82))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
