//! Table 4: black-box (substitute model) attack success rates (SynthDigits).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_attacks::substitute::query_labels;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::blackbox::table4;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", table4(&cache, &budget));

    // Kernel: the adversary's query step (victim labeling).
    let victim = cache.lenet(&budget);
    let queries = cache.digits_test(16);
    let mut group = c.benchmark_group("table04");
    group.sample_size(20);
    group.bench_function("victim_query_16", |b| {
        b.iter(|| black_box(query_labels(&victim, black_box(&queries.images))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
