//! Figure 12: cumulative distribution of classification confidence,
//! exact vs DA.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_attacks::TargetModel;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::confidence::fig12;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", fig12(&cache, &budget));

    // Kernel: one probability evaluation on the exact model.
    let model = cache.lenet(&budget);
    let ds = cache.digits_test(1);
    let x = ds.images.batch_item(0);
    c.bench_function("fig12/probabilities_one", |b| {
        b.iter(|| black_box(TargetModel::probabilities(&model, black_box(&x))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
