//! Figure 13: Bfloat16 multiplication noise profile.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::MultiplierKind;
use da_bench::bench_budget;
use da_core::experiments::profiles::fig13;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig13(&bench_budget()));

    let bf = MultiplierKind::Bfloat16.build();
    c.bench_function("fig13/bfloat16_multiply", |b| {
        b.iter(|| black_box(bf.multiply(black_box(0.37), black_box(0.82))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
