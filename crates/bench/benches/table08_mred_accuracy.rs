//! Table 8: CNN accuracy and MRED/NMED of exact / HEAP / Ax-FPM multipliers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::metrics::error_stats;
use da_arith::MultiplierKind;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::accuracy::table8;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", table8(&cache, &budget));

    let heap = MultiplierKind::Heap.build();
    c.bench_function("table08/heap_error_stats_1k", |b| {
        b.iter(|| black_box(error_stats(&*heap, 1_000, 8, (0.0, 1.0))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
