//! Table 2: attack transferability, exact LeNet-5 → Ax-FPM LeNet-5
//! (SynthDigits).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_attacks::gradient::Fgsm;
use da_attacks::{Attack, TargetModel};
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::transfer::table2;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", table2(&cache, &budget));

    // Kernel: craft one FGSM adversarial on the exact model.
    let model = cache.lenet(&budget);
    let ds = cache.digits_test(1);
    let x = ds.images.batch_item(0);
    let label = ds.labels[0];
    let attack = Fgsm::new(0.25);
    let mut group = c.benchmark_group("table02");
    group.sample_size(20);
    group.bench_function("fgsm_craft_one", |b| {
        b.iter(|| black_box(attack.run(&model, black_box(&x), label)))
    });
    group.bench_function("exact_lenet_predict", |b| {
        b.iter(|| black_box(TargetModel::predict(&model, black_box(&x))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
