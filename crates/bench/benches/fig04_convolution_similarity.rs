//! Figure 4: exact vs approximate convolution vs input/filter similarity.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_core::experiments::fig4::fig4;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig4(6));

    c.bench_function("fig04/similarity_series", |b| b.iter(|| black_box(fig4(6))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
