//! Table 5: Defensive Approximation vs Defensive Quantization
//! transferability (SynthObjects).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_attacks::TargetModel;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::dq::table5;
use da_nn::zoo::DqMode;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    let table = table5(&cache, &budget);
    println!("\n{table}");
    let (da, dq) = table.mean_rates();
    println!(
        "mean transfer: DA {:.0}% vs DQ-full {:.0}% (paper: DA ~2x more robust)",
        da * 100.0,
        dq * 100.0
    );

    // Kernel: a fully quantized DQ inference.
    let dq_net = cache.dq_convnet(&budget, DqMode::Full);
    let ds = cache.objects_test(1);
    let x = ds.images.batch_item(0);
    let mut group = c.benchmark_group("table05");
    group.sample_size(20);
    group.bench_function("dq_full_predict", |b| {
        b.iter(|| black_box(TargetModel::predict(&dq_net, black_box(&x))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
