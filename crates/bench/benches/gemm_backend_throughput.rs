//! GEMM backend throughput: the seed's per-scalar dyn-dispatch path vs the
//! batched slice-kernel + memoized-LUT backend, in MACs/s — plus the
//! **int8 LUT-gather GEMM** (`da_arith::quantized::lut_gemm`) per
//! multiplier kind. Int8 rows (`<kind>-int8`) compare against that kind's
//! *batched f32* rate (first numeric column), not the scalar baseline: the
//! product table absorbs the whole hardware model, so the gather runs at
//! one speed for every kind — a modest win over the closed-form lane
//! kernels and orders of magnitude over gate-level HEAP. Int4 rows
//! (`<kind>-int4`) time the in-register shuffle GEMM (`lut4_gemm`) and
//! compare against the int8 gather rate on the same shape.
//!
//! This is the perf baseline for future scaling PRs (SIMD, quantized int
//! paths, sharding): run `cargo bench --bench gemm_backend_throughput` and
//! compare the printed table. Sizes follow the issue spec: 64×64×64 and
//! 256×256×256. The scalar baseline for HEAP at 256³ simulates ~16.8M
//! gate-level multiplies and is skipped unless `DA_BENCH_FULL=1`.
//!
//! `DA_BENCH_JSON=<path>` additionally writes the table as a
//! machine-readable document (see [`da_bench::json`]); `DA_BENCH_SMOKE=1`
//! restricts the run to 64³ with one timed rep (CI's emit-and-schema-check
//! smoke job).

use std::time::Instant;

use da_arith::quantized::{
    lut4_gemm, lut_gemm, Lut4Order, ProductLut, ProductLut4, QuantParams, QuantParams4,
};
use da_arith::MultiplierKind;
use da_bench::json::{JsonEmitter, Record};
use da_nn::layers::{gemm_with, matmul_with_scalar};
use da_tensor::Tensor;
use rand::SeedableRng;

/// Time `f` (best of `reps` runs, after one warmup) and return MACs/s.
fn macs_per_sec(macs: usize, reps: usize, mut f: impl FnMut() -> Tensor) -> f64 {
    let mut best = f64::INFINITY;
    let _warmup = f();
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    macs as f64 / best
}

fn human(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} GMAC/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} MMAC/s", rate / 1e6)
    } else {
        format!("{:.1} kMAC/s", rate / 1e3)
    }
}

fn main() {
    let full = std::env::var_os("DA_BENCH_FULL").is_some();
    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut emitter = JsonEmitter::from_env("gemm_backend_throughput");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    println!("GEMM backend throughput (batched slice kernels + memoized significand LUTs");
    println!("vs the seed's one-virtual-call-per-MAC loop; higher is better)");
    println!();
    println!(
        "{:<12} {:<14} {:>16} {:>16} {:>9}",
        "size", "multiplier", "scalar-dyn", "batched", "speedup"
    );

    let sizes: &[(usize, usize, usize)] =
        if smoke { &[(64, 64, 64)] } else { &[(64, 64, 64), (256, 256, 256)] };
    for &(m, k, n) in sizes {
        let macs = m * k * n;
        let reps = if smoke {
            1
        } else if macs <= 1 << 19 {
            5
        } else {
            3
        };
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);

        // Continuous uniform operands never repeat a significand pair, so
        // they show the worst case for the memo LUT; the "heap-q8" row uses
        // 8-bit-quantized operands (the realistic low-entropy regime of
        // quantized weights/activations) where the LUT pays off.
        let quantize = |t: &Tensor| t.map(|v| (v * 127.0).round() / 127.0);
        let (aq, bq) = (quantize(&a), quantize(&b));

        // Int8 LUT-gather GEMM: code matrices for the same shape, quantized
        // over the operand ranges (the per-kind product table is built from
        // the actual multiplier, so this is the quantized serving path's
        // inner loop).
        let aq_params = QuantParams::from_range(-1.0, 1.0);
        let bq_params = QuantParams::from_range(-1.0, 1.0);
        let mut qa_codes = vec![0u8; m * k];
        aq_params.quantize_slice(a.data(), &mut qa_codes);
        let mut qb_codes = vec![0u8; k * n];
        bq_params.quantize_slice(b.data(), &mut qb_codes);

        // Int4 weight codes for the in-register shuffle GEMM: activations
        // keep their u8 codes, the weight operand drops to 16 codes so the
        // 256×16 product table fits in registers (4 rows of 16 lanes).
        let b4_params = QuantParams4::from_range(-1.0, 1.0);
        let mut qb4_codes = vec![0u8; k * n];
        b4_params.quantize_slice(b.data(), &mut qb4_codes);

        for kind in MultiplierKind::ALL {
            let mult = kind.build();
            // Gate-level HEAP at 256³ needs minutes per scalar run.
            let scalar_feasible = full || kind != MultiplierKind::Heap || macs <= 1 << 19;

            let batched = macs_per_sec(macs, reps, || gemm_with(&*mult, &a, &b));
            let scalar = if scalar_feasible {
                Some(macs_per_sec(macs, reps, || matmul_with_scalar(&*mult, &a, &b)))
            } else {
                None
            };
            print_row(&format!("{m}x{k}x{n}"), kind.as_str(), scalar, batched);
            emit_row(&mut emitter, &format!("{m}x{k}x{n}"), kind.as_str(), scalar, batched);

            if kind == MultiplierKind::Heap && scalar_feasible {
                let batched_q = macs_per_sec(macs, reps, || gemm_with(&*mult, &aq, &bq));
                let scalar_q = macs_per_sec(macs, reps, || matmul_with_scalar(&*mult, &aq, &bq));
                print_row(&format!("{m}x{k}x{n}"), "heap-q8", Some(scalar_q), batched_q);
                emit_row(
                    &mut emitter,
                    &format!("{m}x{k}x{n}"),
                    "heap-q8",
                    Some(scalar_q),
                    batched_q,
                );
            }

            if kind == MultiplierKind::Heap {
                // The table-free bit-sliced gate-level backend: GEMM through
                // the fused multi-term axpy entry point, which runs cores
                // without a closed form on `da_arith::BitslicedArray` (eight
                // 64-lane sub-blocks per plane sweep, autovectorized to
                // AVX-512/AVX2 boolean ops under runtime dispatch). This is
                // the path rotating wirings ride — no precomputed table to
                // invalidate.
                let ad = a.data();
                let bd = b.data();
                let mut acc_bs = vec![0.0f32; m * n];
                let bitslice_rate = macs_per_sec(macs, reps.max(3), || {
                    acc_bs.fill(0.0);
                    for r in 0..m {
                        mult.axpy_fused(
                            &ad[r * k..(r + 1) * k],
                            bd,
                            &mut acc_bs[r * n..(r + 1) * n],
                        );
                    }
                    std::hint::black_box(acc_bs[0]);
                    Tensor::zeros(&[1])
                });
                print_row(&format!("{m}x{k}x{n}"), "heap-bitslice", scalar, bitslice_rate);
                let mut r = Record::new()
                    .label("size", format!("{m}x{k}x{n}"))
                    .label("multiplier", kind.as_str())
                    .label("path", "bitslice")
                    .metric("bitslice_macs_per_sec", bitslice_rate)
                    .metric("batched_f32_macs_per_sec", batched)
                    .metric("speedup_vs_batched_f32", bitslice_rate / batched);
                if let Some(s) = scalar {
                    r = r
                        .metric("scalar_macs_per_sec", s)
                        .metric("speedup_vs_scalar", bitslice_rate / s);
                }
                emitter.record(r);
            }

            // The int8 LUT-gather row: one table build per kind, then a
            // pure gather GEMM — the same speed for every multiplier (the
            // hardware model lives entirely in the table).
            let lut = ProductLut::build(&*mult, aq_params, bq_params);
            let mut acc = vec![0.0f32; m * n];
            let lut_rate = macs_per_sec(macs, reps, || {
                acc.fill(0.0);
                lut_gemm(&lut, &qa_codes, m, k, &qb_codes, n, &mut acc, n);
                std::hint::black_box(acc[0]);
                Tensor::zeros(&[1])
            });
            println!(
                "{:<12} {:<14} {:>16} {:>16} {:>8.1}x",
                format!("{m}x{k}x{n}"),
                format!("{}-int8", kind.as_str()),
                human(batched),
                human(lut_rate),
                lut_rate / batched
            );
            emitter.record(
                Record::new()
                    .label("size", format!("{m}x{k}x{n}"))
                    .label("multiplier", kind.as_str())
                    .label("path", "int8-lut")
                    .metric("lut_macs_per_sec", lut_rate)
                    .metric("batched_f32_macs_per_sec", batched)
                    .metric("speedup_vs_batched_f32", lut_rate / batched),
            );

            // The int4 in-register shuffle row: the weight operand narrows
            // to 16 codes, turning the hardware gather into a permute of
            // four register-resident table rows. The point of comparison is
            // the int8 gather rate on the same shape — same table semantics,
            // cheaper indexing.
            let lut4 = ProductLut4::build(&*mult, aq_params, b4_params, Lut4Order::ActivationsLeft);
            let mut acc4 = vec![0.0f32; m * n];
            let lut4_rate = macs_per_sec(macs, reps, || {
                acc4.fill(0.0);
                lut4_gemm(&lut4, &qa_codes, m, k, &qb4_codes, n, &mut acc4, n);
                std::hint::black_box(acc4[0]);
                Tensor::zeros(&[1])
            });
            println!(
                "{:<12} {:<14} {:>16} {:>16} {:>8.1}x",
                format!("{m}x{k}x{n}"),
                format!("{}-int4", kind.as_str()),
                human(lut_rate),
                human(lut4_rate),
                lut4_rate / lut_rate
            );
            emitter.record(
                Record::new()
                    .label("size", format!("{m}x{k}x{n}"))
                    .label("multiplier", kind.as_str())
                    .label("path", "int4-shuffle")
                    .metric("lut4_macs_per_sec", lut4_rate)
                    .metric("int8_lut_macs_per_sec", lut_rate)
                    .metric("speedup_vs_int8_gather", lut4_rate / lut_rate)
                    .metric("batched_f32_macs_per_sec", batched)
                    .metric("speedup_vs_batched_f32", lut4_rate / batched),
            );
        }
        println!();
    }
    if let Some(path) = emitter.finish() {
        println!("wrote {}", path.display());
    }
}

fn emit_row(emitter: &mut JsonEmitter, size: &str, kind: &str, scalar: Option<f64>, batched: f64) {
    let mut r = Record::new()
        .label("size", size)
        .label("multiplier", kind)
        .metric("batched_macs_per_sec", batched);
    if let Some(s) = scalar {
        r = r.metric("scalar_macs_per_sec", s).metric("speedup", batched / s);
    }
    emitter.record(r);
}

fn print_row(size: &str, kind: &str, scalar: Option<f64>, batched: f64) {
    match scalar {
        Some(s) => println!(
            "{:<12} {:<14} {:>16} {:>16} {:>8.1}x",
            size,
            kind,
            human(s),
            human(batched),
            batched / s
        ),
        None => println!(
            "{:<12} {:<14} {:>16} {:>16} {:>9}",
            size,
            kind,
            "(skipped)",
            human(batched),
            "-"
        ),
    }
}
