//! GEMM backend throughput: the seed's per-scalar dyn-dispatch path vs the
//! batched slice-kernel + memoized-LUT backend, in MACs/s.
//!
//! This is the perf baseline for future scaling PRs (SIMD, quantized int
//! paths, sharding): run `cargo bench --bench gemm_backend_throughput` and
//! compare the printed table. Sizes follow the issue spec: 64×64×64 and
//! 256×256×256. The scalar baseline for HEAP at 256³ simulates ~16.8M
//! gate-level multiplies and is skipped unless `DA_BENCH_FULL=1`.
//!
//! `DA_BENCH_JSON=<path>` additionally writes the table as a
//! machine-readable document (see [`da_bench::json`]); `DA_BENCH_SMOKE=1`
//! restricts the run to 64³ with one timed rep (CI's emit-and-schema-check
//! smoke job).

use std::time::Instant;

use da_arith::MultiplierKind;
use da_bench::json::{JsonEmitter, Record};
use da_nn::layers::{gemm_with, matmul_with_scalar};
use da_tensor::Tensor;
use rand::SeedableRng;

/// Time `f` (best of `reps` runs, after one warmup) and return MACs/s.
fn macs_per_sec(macs: usize, reps: usize, mut f: impl FnMut() -> Tensor) -> f64 {
    let mut best = f64::INFINITY;
    let _warmup = f();
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    macs as f64 / best
}

fn human(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} GMAC/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} MMAC/s", rate / 1e6)
    } else {
        format!("{:.1} kMAC/s", rate / 1e3)
    }
}

fn main() {
    let full = std::env::var_os("DA_BENCH_FULL").is_some();
    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut emitter = JsonEmitter::from_env("gemm_backend_throughput");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    println!("GEMM backend throughput (batched slice kernels + memoized significand LUTs");
    println!("vs the seed's one-virtual-call-per-MAC loop; higher is better)");
    println!();
    println!(
        "{:<12} {:<14} {:>16} {:>16} {:>9}",
        "size", "multiplier", "scalar-dyn", "batched", "speedup"
    );

    let sizes: &[(usize, usize, usize)] =
        if smoke { &[(64, 64, 64)] } else { &[(64, 64, 64), (256, 256, 256)] };
    for &(m, k, n) in sizes {
        let macs = m * k * n;
        let reps = if smoke {
            1
        } else if macs <= 1 << 19 {
            5
        } else {
            3
        };
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);

        // Continuous uniform operands never repeat a significand pair, so
        // they show the worst case for the memo LUT; the "heap-q8" row uses
        // 8-bit-quantized operands (the realistic low-entropy regime of
        // quantized weights/activations) where the LUT pays off.
        let quantize = |t: &Tensor| t.map(|v| (v * 127.0).round() / 127.0);
        let (aq, bq) = (quantize(&a), quantize(&b));

        for kind in MultiplierKind::ALL {
            let mult = kind.build();
            // Gate-level HEAP at 256³ needs minutes per scalar run.
            let scalar_feasible = full || kind != MultiplierKind::Heap || macs <= 1 << 19;

            let batched = macs_per_sec(macs, reps, || gemm_with(&*mult, &a, &b));
            let scalar = if scalar_feasible {
                Some(macs_per_sec(macs, reps, || matmul_with_scalar(&*mult, &a, &b)))
            } else {
                None
            };
            print_row(&format!("{m}x{k}x{n}"), kind.as_str(), scalar, batched);
            emit_row(&mut emitter, &format!("{m}x{k}x{n}"), kind.as_str(), scalar, batched);

            if kind == MultiplierKind::Heap && scalar_feasible {
                let batched_q = macs_per_sec(macs, reps, || gemm_with(&*mult, &aq, &bq));
                let scalar_q = macs_per_sec(macs, reps, || matmul_with_scalar(&*mult, &aq, &bq));
                print_row(&format!("{m}x{k}x{n}"), "heap-q8", Some(scalar_q), batched_q);
                emit_row(
                    &mut emitter,
                    &format!("{m}x{k}x{n}"),
                    "heap-q8",
                    Some(scalar_q),
                    batched_q,
                );
            }
        }
        println!();
    }
    if let Some(path) = emitter.finish() {
        println!("wrote {}", path.display());
    }
}

fn emit_row(emitter: &mut JsonEmitter, size: &str, kind: &str, scalar: Option<f64>, batched: f64) {
    let mut r = Record::new()
        .label("size", size)
        .label("multiplier", kind)
        .metric("batched_macs_per_sec", batched);
    if let Some(s) = scalar {
        r = r.metric("scalar_macs_per_sec", s).metric("speedup", batched / s);
    }
    emitter.record(r);
}

fn print_row(size: &str, kind: &str, scalar: Option<f64>, batched: f64) {
    match scalar {
        Some(s) => println!(
            "{:<12} {:<14} {:>16} {:>16} {:>8.1}x",
            size,
            kind,
            human(s),
            human(batched),
            batched / s
        ),
        None => println!(
            "{:<12} {:<14} {:>16} {:>16} {:>9}",
            size,
            kind,
            "(skipped)",
            human(batched),
            "-"
        ),
    }
}
