//! Table 9: normalized energy/delay of the 24×24 mantissa multipliers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::array::{ArrayMultiplier, ArrayMultiplierSpec};
use da_arith::heap::heap_mantissa_spec;
use da_core::experiments::energy::table9;

fn bench(c: &mut Criterion) {
    println!("\n{}", table9());

    // Kernel: one gate-level 24×24 multiplication per design.
    let exact = ArrayMultiplier::new(ArrayMultiplierSpec::exact(24));
    let ax = ArrayMultiplier::new(ArrayMultiplierSpec::ax_mantissa(24));
    let heap = ArrayMultiplier::new(heap_mantissa_spec());
    let (a, b) = (0xA5_A5A5u64, 0xC3_3C3Cu64);
    c.bench_function("table09/exact_24x24", |bch| bch.iter(|| black_box(exact.multiply(a, b))));
    c.bench_function("table09/ax_24x24", |bch| bch.iter(|| black_box(ax.multiply(a, b))));
    c.bench_function("table09/heap_24x24", |bch| bch.iter(|| black_box(heap.multiply(a, b))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
