//! Table 6: clean accuracy of Float32 / DA / DQ / Bfloat16 models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_arith::MultiplierKind;
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::accuracy::table6;
use da_core::experiments::transfer::with_multiplier;
use da_nn::train::evaluate_accuracy;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    println!("\n{}", table6(&cache, &budget));

    // Kernel: accuracy evaluation of the DA LeNet on a small batch.
    let da = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);
    let test = cache.digits_test(32);
    let mut group = c.benchmark_group("table06");
    group.sample_size(10);
    group.bench_function("da_lenet_accuracy_32", |b| {
        b.iter(|| black_box(evaluate_accuracy(&da, &test.images, &test.labels, 32)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
