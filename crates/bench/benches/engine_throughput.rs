//! Serving-engine throughput: compiled [`InferencePlan`]s vs the per-layer
//! `Network::forward(Mode::Eval)` path, in items/s.
//!
//! This is the perf baseline for the serving layer (ROADMAP: SIMD slice
//! kernels and int8 GEMM plug in next): run
//! `cargo bench --bench engine_throughput` and compare the printed table.
//! Configurations follow the issue spec: an MNIST-style CNN (LeNet-5,
//! 28×28×1) and a CIFAR-style CNN (AlexNet, 32×32×3), each under the exact
//! multiplier, the paper's Ax-FPM, and Bfloat16, at single-item and batched
//! serving shapes.

use std::time::Instant;

use da_arith::MultiplierKind;
use da_nn::engine::InferencePlan;
use da_nn::zoo::{alexnet_cifar, lenet5};
use da_nn::{Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

/// Time `f` (best of `reps` runs, after one warmup) and return items/s.
fn items_per_sec(items: usize, reps: usize, mut f: impl FnMut() -> Tensor) -> f64 {
    let mut best = f64::INFINITY;
    let _warmup = f();
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    items as f64 / best
}

fn human(rate: f64) -> String {
    if rate >= 1000.0 {
        format!("{:.2} kitem/s", rate / 1000.0)
    } else {
        format!("{rate:.1} item/s")
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    println!("Serving-engine throughput (compiled plans: pre-decomposed weights, fused");
    println!("conv tiles, workspace reuse — vs the per-layer eval forward; higher is better)");
    println!();
    println!(
        "{:<10} {:<12} {:>6} {:>16} {:>16} {:>9}",
        "model", "multiplier", "batch", "unplanned", "planned", "speedup"
    );

    let models: [(&str, Network, Vec<usize>); 2] = [
        ("lenet5", lenet5(10, &mut rng), vec![1, 28, 28]),
        ("alexnet", alexnet_cifar(10, &mut rng), vec![3, 32, 32]),
    ];

    for (name, mut net, item_shape) in models {
        for kind in [MultiplierKind::Exact, MultiplierKind::AxFpm, MultiplierKind::Bfloat16] {
            let mult = kind.build();
            net.set_multiplier(Some(mult.clone()));
            let plan = InferencePlan::compile(&net, Some(mult)).expect("zoo models compile");
            for batch in [1usize, 8] {
                let mut shape = vec![batch];
                shape.extend_from_slice(&item_shape);
                let x = Tensor::rand_uniform(&shape, 0.0, 1.0, &mut rng);
                let reps = if batch == 1 { 5 } else { 3 };
                let unplanned = items_per_sec(batch, reps, || net.forward(&x, Mode::Eval).0);
                let planned = items_per_sec(batch, reps, || plan.predict_batch(&x));
                println!(
                    "{:<10} {:<12} {:>6} {:>16} {:>16} {:>8.2}x",
                    name,
                    kind.as_str(),
                    batch,
                    human(unplanned),
                    human(planned),
                    planned / unplanned
                );
            }
        }
        println!();
    }
}
