//! Serving-engine throughput: compiled [`InferencePlan`]s vs the per-layer
//! `Network::forward(Mode::Eval)` path, in items/s — plus the **int8
//! plan** (`InferencePlan::compile_quantized`, LUT-gather GEMMs) against
//! the planned f32 path, and a concurrent-load scenario for the
//! cross-request batch server.
//!
//! This is the perf baseline for the serving layer (ROADMAP: SIMD slice
//! kernels and int8 GEMM plug in next): run
//! `cargo bench --bench engine_throughput` and compare the printed tables.
//! Configurations follow the issue spec: an MNIST-style CNN (LeNet-5,
//! 28×28×1) and a CIFAR-style CNN (AlexNet, 32×32×3), each under the exact
//! multiplier, the paper's Ax-FPM, and Bfloat16, at single-item and batched
//! serving shapes. `DA_BENCH_JSON=<path>` writes the tables as a
//! machine-readable document (see [`da_bench::json`]); `DA_BENCH_SMOKE=1`
//! restricts the run to LeNet-5 × Ax-FPM at batch 1 and skips the
//! concurrent-load scenario (CI's emit-and-schema-check smoke job). The second table then replays single-sample traffic from
//! N submitter threads through `da_nn::serve::BatchServer` (micro-batching,
//! shard pool of plan replicas) against a sequential one-at-a-time baseline
//! on the same plan.

use std::time::{Duration, Instant};

use da_arith::MultiplierKind;
use da_bench::json::{JsonEmitter, Record};
use da_nn::engine::InferencePlan;
use da_nn::serve::{BatchServer, Pending, ServeConfig};
use da_nn::zoo::{alexnet_cifar, lenet5};
use da_nn::{Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

/// Submitter threads in the concurrent-load scenario.
const SUBMITTERS: usize = 8;
/// Samples each submitter sends.
const PER_SUBMITTER: usize = 8;

/// Time `f` (best of `reps` runs, after one warmup) and return items/s.
fn items_per_sec(items: usize, reps: usize, mut f: impl FnMut() -> Tensor) -> f64 {
    let mut best = f64::INFINITY;
    let _warmup = f();
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(out);
        best = best.min(dt);
    }
    items as f64 / best
}

fn human(rate: f64) -> String {
    if rate >= 1000.0 {
        format!("{:.2} kitem/s", rate / 1000.0)
    } else {
        format!("{rate:.1} item/s")
    }
}

fn main() {
    let smoke = std::env::var_os("DA_BENCH_SMOKE").is_some();
    let mut emitter = JsonEmitter::from_env("engine_throughput");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    println!("Serving-engine throughput (compiled plans: pre-decomposed weights, fused");
    println!("conv tiles, workspace reuse — vs the per-layer eval forward; higher is better)");
    println!();
    println!(
        "{:<10} {:<12} {:>6} {:>14} {:>14} {:>8} {:>14} {:>8}",
        "model", "multiplier", "batch", "unplanned", "planned", "speedup", "int8-plan", "q-speedup"
    );

    let models: [(&str, Network, Vec<usize>); 2] = [
        ("lenet5", lenet5(10, &mut rng), vec![1, 28, 28]),
        ("alexnet", alexnet_cifar(10, &mut rng), vec![3, 32, 32]),
    ];

    for (name, mut net, item_shape) in models {
        if smoke && name != "lenet5" {
            continue;
        }
        // HEAP is the quantized path's headline: the gate-level f32 plan
        // simulates an array multiplier per MAC (memoized at best), while
        // the int8 plan gathers from a table built from those same gates —
        // identical hardware model, serving at closed-form speeds. Batch 1
        // only: the f32 side needs ~0.2 s per item.
        let kinds: &[MultiplierKind] = if name == "lenet5" {
            &[
                MultiplierKind::Exact,
                MultiplierKind::AxFpm,
                MultiplierKind::Bfloat16,
                MultiplierKind::Heap,
            ]
        } else {
            &[MultiplierKind::Exact, MultiplierKind::AxFpm, MultiplierKind::Bfloat16]
        };
        for &kind in kinds {
            if smoke && kind != MultiplierKind::AxFpm {
                continue;
            }
            let mult = kind.build();
            net.set_multiplier(Some(mult.clone()));
            let plan = InferencePlan::compile(&net, Some(mult)).expect("zoo models compile");
            // Int8 plan for the same deployment: calibrated on a small
            // random batch from the serving distribution.
            let mut calib_shape = vec![8];
            calib_shape.extend_from_slice(&item_shape);
            let calibration = Tensor::rand_uniform(&calib_shape, 0.0, 1.0, &mut rng);
            let qplan =
                InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
                    .expect("zoo models quantize");
            let batches: &[usize] =
                if smoke || kind == MultiplierKind::Heap { &[1] } else { &[1, 8] };
            for &batch in batches {
                let mut shape = vec![batch];
                shape.extend_from_slice(&item_shape);
                let x = Tensor::rand_uniform(&shape, 0.0, 1.0, &mut rng);
                let reps = if smoke || kind == MultiplierKind::Heap {
                    1
                } else if batch == 1 {
                    5
                } else {
                    3
                };
                let unplanned = items_per_sec(batch, reps, || net.forward(&x, Mode::Eval).0);
                let planned = items_per_sec(batch, reps, || plan.predict_batch(&x));
                let quantized = items_per_sec(batch, reps, || qplan.predict_batch(&x));
                println!(
                    "{:<10} {:<12} {:>6} {:>14} {:>14} {:>7.2}x {:>14} {:>7.2}x",
                    name,
                    kind.as_str(),
                    batch,
                    human(unplanned),
                    human(planned),
                    planned / unplanned,
                    human(quantized),
                    quantized / planned
                );
                emitter.record(
                    Record::new()
                        .label("model", name)
                        .label("multiplier", kind.as_str())
                        .label("batch", batch.to_string())
                        .metric("unplanned_items_per_sec", unplanned)
                        .metric("planned_items_per_sec", planned)
                        .metric("speedup", planned / unplanned)
                        .metric("quantized_items_per_sec", quantized)
                        .metric("quantized_speedup_vs_planned", quantized / planned),
                );
            }
        }
        println!();
    }

    if !smoke {
        concurrent_load(&mut rng, &mut emitter);
    }
    if let Some(path) = emitter.finish() {
        println!("wrote {}", path.display());
    }
}

/// Wall-clock seconds for one run of `f`, best of `reps` (after a warmup).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Concurrent-load scenario: N submitter threads of single samples through
/// the micro-batching server vs the same samples served one at a time on
/// one plan (the pre-serve deployment: sequential single-item requests).
fn concurrent_load(rng: &mut rand::rngs::StdRng, emitter: &mut JsonEmitter) {
    let items = SUBMITTERS * PER_SUBMITTER;
    println!("Cross-request micro-batching ({SUBMITTERS} submitter threads x {PER_SUBMITTER} single-sample");
    println!("requests vs the same {items} requests served sequentially; bit-identical logits)");
    println!();
    println!(
        "{:<10} {:<12} {:>16} {:>16} {:>9} {:>11}",
        "model", "multiplier", "sequential", "batch-served", "speedup", "mean batch"
    );

    let models: [(&str, Network, Vec<usize>); 2] = [
        ("lenet5", lenet5(10, rng), vec![1, 28, 28]),
        ("alexnet", alexnet_cifar(10, rng), vec![3, 32, 32]),
    ];
    for (name, mut net, item_shape) in models {
        for kind in [MultiplierKind::Exact, MultiplierKind::AxFpm, MultiplierKind::Bfloat16] {
            let mult = kind.build();
            net.set_multiplier(Some(mult.clone()));
            let plan = InferencePlan::compile(&net, Some(mult)).expect("zoo models compile");
            let mut shape = vec![1];
            shape.extend_from_slice(&item_shape);
            let samples: Vec<Tensor> =
                (0..items).map(|_| Tensor::rand_uniform(&item_shape, 0.0, 1.0, rng)).collect();
            let single: Vec<Tensor> =
                samples.iter().map(|s| Tensor::from_vec(s.data().to_vec(), &shape)).collect();

            let reps = if name == "lenet5" { 3 } else { 2 };
            let seq = best_secs(reps, || {
                for s in &single {
                    std::hint::black_box(plan.predict_batch(s));
                }
            });

            let server = BatchServer::compile(
                &net,
                ServeConfig {
                    max_batch: 8,
                    flush_deadline: Duration::from_micros(200),
                    queue_capacity: 64,
                    ..ServeConfig::default()
                },
            )
            .expect("zoo models compile");
            let served = best_secs(reps, || {
                std::thread::scope(|scope| {
                    for t in 0..SUBMITTERS {
                        let server = &server;
                        let samples = &samples;
                        scope.spawn(move || {
                            let pending: Vec<Pending> = (0..PER_SUBMITTER)
                                .map(|j| {
                                    server
                                        .submit(&samples[t * PER_SUBMITTER + j])
                                        .expect("server accepting")
                                })
                                .collect();
                            for p in pending {
                                std::hint::black_box(p.wait().expect("server serving"));
                            }
                        });
                    }
                });
            });
            let stats = server.stats();
            println!(
                "{:<10} {:<12} {:>16} {:>16} {:>8.2}x {:>11.2}",
                name,
                kind.as_str(),
                human(items as f64 / seq),
                human(items as f64 / served),
                seq / served,
                stats.mean_batch()
            );
            emitter.record(
                Record::new()
                    .label("model", name)
                    .label("multiplier", kind.as_str())
                    .label("scenario", "concurrent_load")
                    .metric("sequential_items_per_sec", items as f64 / seq)
                    .metric("batch_served_items_per_sec", items as f64 / served)
                    .metric("mean_batch", stats.mean_batch()),
            );
        }
        println!();
    }
}
