//! Figure 16: final convolution layer feature-map energy under exact,
//! Ax-FPM, and HEAP multipliers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use da_bench::{bench_budget, bench_cache};
use da_core::experiments::heatmap::fig16;
use da_tensor::Tensor;

fn bench(c: &mut Criterion) {
    let cache = bench_cache();
    let budget = bench_budget();
    let report = fig16(&cache, &budget);
    println!("\n{report}");
    println!(
        "feature-energy ratios vs exact: Ax-FPM {:.3}, HEAP {:.3} (paper: Ax-FPM boosts, HEAP lowers)",
        report.mean_ratio(1),
        report.mean_ratio(2)
    );

    // Kernel: the intermediate-activation extraction.
    let net = cache.lenet(&budget);
    let ds = cache.digits_test(1);
    let x = Tensor::stack(&[ds.images.batch_item(0)]);
    let mut group = c.benchmark_group("fig16");
    group.sample_size(20);
    group.bench_function("activation_at_final_conv", |b| {
        b.iter(|| black_box(net.activation_at(black_box(&x), 4)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
