//! Property-based tests of attack invariants and distance metrics.

use proptest::prelude::*;
use rand::SeedableRng;

use da_attacks::gradient::{Fgsm, Pgd};
use da_attacks::metrics::{l0, l2, linf, mse, psnr};
use da_attacks::{Attack, TargetModel};
use da_nn::layers::{Dense, Flatten, Relu};
use da_nn::Network;
use da_tensor::Tensor;

fn model(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("prop")
        .push(Flatten)
        .push(Dense::new(9, 8, &mut rng))
        .push(Relu)
        .push(Dense::new(8, 3, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FGSM and PGD always respect their L∞ budget and the valid range.
    #[test]
    fn linf_attacks_respect_budget(
        x in proptest::collection::vec(0.0f32..1.0, 9),
        eps in 0.01f32..0.4,
        label in 0usize..3,
        seed in 0u64..50,
    ) {
        let net = model(seed);
        let img = Tensor::from_vec(x, &[1, 3, 3]);
        for adv in [
            Fgsm::new(eps).run(&net, &img, label),
            Pgd::new(eps, eps / 4.0, 8, seed).run(&net, &img, label),
        ] {
            prop_assert!(linf(&adv, &img) <= eps as f64 + 1e-5);
            prop_assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Metric axioms: identity, symmetry, L∞ ≤ L2 ≤ √n·L∞.
    #[test]
    fn metric_axioms(
        a in proptest::collection::vec(0.0f32..1.0, 12),
        b in proptest::collection::vec(0.0f32..1.0, 12),
    ) {
        let ta = Tensor::from_vec(a, &[12]);
        let tb = Tensor::from_vec(b, &[12]);
        prop_assert_eq!(l2(&ta, &ta), 0.0);
        prop_assert_eq!(l0(&ta, &ta), 0);
        prop_assert!((l2(&ta, &tb) - l2(&tb, &ta)).abs() < 1e-12);
        prop_assert!(linf(&ta, &tb) <= l2(&ta, &tb) + 1e-9);
        prop_assert!(l2(&ta, &tb) <= (12f64).sqrt() * linf(&ta, &tb) + 1e-9);
        // MSE/PSNR consistency.
        let m = mse(&ta, &tb);
        if m > 0.0 {
            let p = psnr(&ta, &tb);
            prop_assert!((p - 20.0 * (1.0 / m.sqrt()).log10()).abs() < 1e-9);
        }
    }

    /// Attack outputs never contain NaN, even on degenerate inputs.
    #[test]
    fn attacks_never_produce_nan(
        fill in 0.0f32..1.0,
        label in 0usize..3,
    ) {
        let net = model(3);
        let img = Tensor::filled(&[1, 3, 3], fill);
        let adv = Fgsm::new(0.1).run(&net, &img, label);
        prop_assert!(adv.data().iter().all(|v| v.is_finite()));
    }

    /// Prediction is invariant under logit-preserving re-evaluation (the
    /// model interface is pure).
    #[test]
    fn target_model_is_pure(x in proptest::collection::vec(0.0f32..1.0, 9)) {
        let net = model(11);
        let img = Tensor::from_vec(x, &[1, 3, 3]);
        prop_assert_eq!(
            TargetModel::predict(&net, &img),
            TargetModel::predict(&net, &img)
        );
        prop_assert_eq!(TargetModel::logits(&net, &img), TargetModel::logits(&net, &img));
    }
}
