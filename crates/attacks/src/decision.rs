//! Decision-based attacks: Boundary Attack \[8\] and HopSkipJump \[11\]. Both
//! use only the model's final label.

use rand::SeedableRng;

use da_tensor::Tensor;

use crate::metrics::l2;
use crate::traits::{clip01, Attack, TargetModel};

/// Find an adversarial starting point by blending the original with
/// uniform-noise images (decision access only).
fn find_adversarial_init(
    model: &dyn TargetModel,
    x: &Tensor,
    label: usize,
    rng: &mut rand::rngs::StdRng,
) -> Option<Tensor> {
    // Pure-noise trials.
    for _ in 0..40 {
        let candidate = Tensor::rand_uniform(x.shape(), 0.0, 1.0, rng);
        if model.predict(&candidate) != label {
            return Some(candidate);
        }
    }
    // Large-blend trials as a fallback.
    for _ in 0..40 {
        let noise = Tensor::rand_uniform(x.shape(), 0.0, 1.0, rng);
        let candidate = x.zip_map(&noise, |a, b| 0.1 * a + 0.9 * b);
        if model.predict(&candidate) != label {
            return Some(candidate);
        }
    }
    None
}

/// Binary-search the decision boundary between a clean `x` and an
/// adversarial `adv`, returning the adversarial-side midpoint.
fn binary_search_boundary(
    model: &dyn TargetModel,
    x: &Tensor,
    adv: &Tensor,
    label: usize,
    steps: usize,
) -> Tensor {
    let mut lo = 0.0f32; // fraction of adv at which still clean
    let mut hi = 1.0f32; // fraction of adv known adversarial
    for _ in 0..steps {
        let mid = (lo + hi) / 2.0;
        let blend = x.zip_map(adv, |a, b| a * (1.0 - mid) + b * mid);
        if model.predict(&blend) != label {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    x.zip_map(adv, |a, b| a * (1.0 - hi) + b * hi)
}

/// The Boundary Attack: a random walk along the decision boundary shrinking
/// the distance to the original image.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryAttack {
    steps: usize,
    seed: u64,
}

impl BoundaryAttack {
    /// Boundary Attack with a walk of `steps` proposals.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn new(steps: usize, seed: u64) -> Self {
        assert!(steps > 0, "need at least one step");
        BoundaryAttack { steps, seed }
    }
}

impl Attack for BoundaryAttack {
    fn name(&self) -> &str {
        "BA"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let Some(init) = find_adversarial_init(model, x, label, &mut rng) else {
            return x.clone();
        };
        let mut adv = binary_search_boundary(model, x, &init, label, 12);
        let mut spherical_step = 0.1f32;
        let mut source_step = 0.1f32;

        for _ in 0..self.steps {
            let dist = l2(&adv, x) as f32;
            if dist < 1e-4 {
                break;
            }
            // Orthogonal (spherical) perturbation proposal.
            let noise = Tensor::randn(x.shape(), 1.0, &mut rng);
            let diff = x.zip_map(&adv, |a, b| a - b);
            let diff_norm_sq = diff.data().iter().map(|v| v * v).sum::<f32>().max(1e-12);
            let dot: f32 = noise.data().iter().zip(diff.data()).map(|(n, d)| n * d).sum();
            let mut orth = noise.zip_map(&diff, |n, d| n - dot / diff_norm_sq * d);
            let orth_norm = orth.l2_norm().max(1e-9);
            orth.scale(spherical_step * dist / orth_norm);

            let candidate = clip01(adv.zip_map(&orth, |a, o| a + o));
            let spherical_ok = model.predict(&candidate) != label;
            if spherical_ok {
                // Step toward the original.
                let stepped = clip01(candidate.zip_map(&diff, |c, d| c + source_step * d));
                if model.predict(&stepped) != label && l2(&stepped, x) < l2(&adv, x) {
                    adv = stepped;
                    source_step = (source_step * 1.1).min(0.5);
                } else if l2(&candidate, x) <= l2(&adv, x) {
                    adv = candidate;
                    source_step = (source_step * 0.9).max(1e-3);
                }
                spherical_step = (spherical_step * 1.05).min(0.5);
            } else {
                spherical_step = (spherical_step * 0.9).max(1e-3);
            }
        }
        adv
    }
}

/// HopSkipJumpAttack: decision-based attack with Monte-Carlo gradient
/// estimation at the boundary and geometric step-size search.
#[derive(Debug, Clone, Copy)]
pub struct HopSkipJump {
    iterations: usize,
    gradient_samples: usize,
    seed: u64,
}

impl HopSkipJump {
    /// HSJ with `iterations` boundary refinements and `gradient_samples`
    /// Monte-Carlo probes per refinement.
    ///
    /// # Panics
    ///
    /// Panics on a zero budget.
    pub fn new(iterations: usize, gradient_samples: usize, seed: u64) -> Self {
        assert!(iterations > 0 && gradient_samples > 0, "degenerate HSJ budget");
        HopSkipJump { iterations, gradient_samples, seed }
    }

    /// A moderate default budget.
    pub fn standard(seed: u64) -> Self {
        HopSkipJump::new(12, 24, seed)
    }
}

impl Attack for HopSkipJump {
    fn name(&self) -> &str {
        "HSJ"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let Some(init) = find_adversarial_init(model, x, label, &mut rng) else {
            return x.clone();
        };
        let mut adv = binary_search_boundary(model, x, &init, label, 14);
        let d = x.len() as f32;

        for it in 1..=self.iterations {
            let dist = l2(&adv, x) as f32;
            if dist < 1e-4 {
                break;
            }
            // Monte-Carlo gradient-direction estimate at the boundary point.
            let delta = (dist / d.sqrt()).max(1e-3);
            let mut estimate = Tensor::zeros(x.shape());
            let mut signs = Vec::with_capacity(self.gradient_samples);
            let mut probes = Vec::with_capacity(self.gradient_samples);
            for _ in 0..self.gradient_samples {
                let u = Tensor::randn(x.shape(), 1.0, &mut rng);
                let norm = u.l2_norm().max(1e-9);
                let probe = clip01(adv.zip_map(&u, |a, n| a + delta * n / norm));
                let phi = if model.predict(&probe) != label { 1.0f32 } else { -1.0 };
                signs.push(phi);
                probes.push(u);
            }
            let mean_sign: f32 = signs.iter().sum::<f32>() / signs.len() as f32;
            for (phi, u) in signs.iter().zip(&probes) {
                estimate.add_scaled(u, phi - mean_sign);
            }
            let est_norm = estimate.l2_norm();
            if est_norm < 1e-9 {
                continue;
            }
            estimate.scale(1.0 / est_norm);

            // Geometric step-size search along the estimated direction.
            let mut step = dist / (it as f32).sqrt();
            let mut moved = false;
            for _ in 0..10 {
                let candidate = clip01(adv.zip_map(&estimate, |a, g| a + step * g));
                if model.predict(&candidate) != label {
                    adv = candidate;
                    moved = true;
                    break;
                }
                step /= 2.0;
            }
            if moved {
                // Project back to the boundary toward the original.
                adv = binary_search_boundary(model, x, &adv, label, 10);
            }
        }
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::DecisionOnly;
    use da_nn::layers::{Dense, Flatten, Relu};
    use da_nn::optim::Adam;
    use da_nn::train::{train, TrainConfig};
    use da_nn::Network;
    use rand::SeedableRng;

    fn trained_model() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let n = 200;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let mut img = Tensor::rand_uniform(&[1, 4, 4], 0.0, 0.2, &mut rng);
            for y in 0..4 {
                for x in 0..2 {
                    let col = if label == 0 { x } else { x + 2 };
                    img[[0, y, col]] = rand::Rng::gen_range(&mut rng, 0.75..1.0);
                }
            }
            images.push(img);
            labels.push(label);
        }
        let xs = Tensor::stack(&images);
        let mut net = Network::new("decision-test")
            .push(Flatten)
            .push(Dense::new(16, 12, &mut rng))
            .push(Relu)
            .push(Dense::new(12, 2, &mut rng));
        let cfg = TrainConfig { epochs: 20, batch_size: 16, seed: 2, verbose: false };
        let report = train(&mut net, &xs, &labels, &cfg, &mut Adam::new(0.01));
        assert!(report.final_accuracy > 0.95);
        (net, images.into_iter().zip(labels).take(5).collect())
    }

    fn check_decision_attack(attack: &dyn Attack, min_success: usize) {
        let (net, samples) = trained_model();
        let black_box = DecisionOnly(&net);
        let mut successes = 0;
        for (x, label) in &samples {
            if black_box.predict(x) != *label {
                continue;
            }
            let adv = attack.run(&black_box, x, *label);
            assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            if black_box.predict(&adv) != *label {
                successes += 1;
            }
        }
        assert!(
            successes >= min_success,
            "{} fooled only {successes}/{}",
            attack.name(),
            samples.len()
        );
    }

    #[test]
    fn boundary_attack_succeeds_without_gradients() {
        check_decision_attack(&BoundaryAttack::new(120, 3), 4);
    }

    #[test]
    fn hopskipjump_succeeds_without_gradients() {
        check_decision_attack(&HopSkipJump::standard(4), 4);
    }

    #[test]
    fn hsj_beats_boundary_init_distance() {
        // The refined adversarial must be closer than a raw noise init.
        let (net, samples) = trained_model();
        let (x, label) = &samples[0];
        let adv = HopSkipJump::standard(6).run(&net, x, *label);
        if crate::TargetModel::predict(&net, &adv) != *label {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            let init = find_adversarial_init(&net, x, *label, &mut rng).expect("init");
            assert!(l2(&adv, x) < l2(&init, x));
        }
    }

    #[test]
    fn binary_search_lands_on_adversarial_side() {
        let (net, samples) = trained_model();
        let (x, label) = &samples[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let init = find_adversarial_init(&net, x, *label, &mut rng).expect("init");
        let boundary = binary_search_boundary(&net, x, &init, *label, 12);
        assert_ne!(crate::TargetModel::predict(&net, &boundary), *label);
        assert!(l2(&boundary, x) <= l2(&init, x) + 1e-6);
    }

    #[test]
    fn attacks_are_deterministic_in_seed() {
        let (net, samples) = trained_model();
        let (x, label) = &samples[1];
        let a = BoundaryAttack::new(40, 11).run(&net, x, *label);
        let b = BoundaryAttack::new(40, 11).run(&net, x, *label);
        assert_eq!(a, b);
        let c = HopSkipJump::standard(11).run(&net, x, *label);
        let d = HopSkipJump::standard(11).run(&net, x, *label);
        assert_eq!(c, d);
    }
}
