//! The adversarial-attack suite of the paper's Table 1.
//!
//! | Method | Category | Norm | Module |
//! |---|---|---|---|
//! | FGSM | gradient-based | L∞ | [`gradient::Fgsm`] |
//! | PGD | gradient-based | L∞ | [`gradient::Pgd`] |
//! | JSMA | gradient-based | L0 | [`gradient::Jsma`] |
//! | C&W | gradient-based | L2 | [`gradient::CarliniWagnerL2`] |
//! | DeepFool | gradient-based | L2 | [`gradient::DeepFool`] |
//! | LSA | score-based | L2 | [`score::LocalSearch`] |
//! | BA | decision-based | L2 | [`decision::BoundaryAttack`] |
//! | HSJ | decision-based | L2 | [`decision::HopSkipJump`] |
//!
//! All attacks target the [`TargetModel`] trait, so the same code attacks
//! exact, Ax-FPM, HEAP, DQ, and Bfloat16 classifiers. Score- and
//! decision-based attacks provably use only the prediction interface (the
//! [`DecisionOnly`] wrapper panics on gradient access and is used in tests).
//! [`served::ServedModel`] routes a network's non-gradient queries through
//! the `da_nn::serve` micro-batching server, so evaluation harnesses attack
//! the same serving path production traffic uses — bit-identically.
//!
//! Attacks are deterministic: stochastic steps derive from a seed carried by
//! the attack value.
//!
//! [`DecisionOnly`]: traits::DecisionOnly

pub mod decision;
pub mod gradient;
pub mod harness;
pub mod metrics;
pub mod score;
pub mod served;
pub mod substitute;
pub mod traits;

pub use harness::{evaluate_transfer, AttackSuccess, TransferReport};
pub use served::ServedModel;
pub use traits::{Attack, TargetModel};
