//! The model interface attacks operate on, and the attack abstraction.

use da_nn::loss::argmax_logits;
use da_nn::Network;
use da_tensor::Tensor;

/// A classifier under attack, exposing the three access levels of the
/// paper's threat models (§3.1): decisions, scores, and gradients.
///
/// Inputs are single images `[C, H, W]` with values in `[0, 1]`.
pub trait TargetModel: Send + Sync {
    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Raw logits for one image.
    fn logits(&self, x: &Tensor) -> Vec<f32>;

    /// Cross-entropy loss and its input gradient (white-box access; under an
    /// approximate multiplier this is the BPDA straight-through gradient).
    fn loss_gradient(&self, x: &Tensor, label: usize) -> (f32, Tensor);

    /// Input gradient of one logit (white-box access).
    fn class_gradient(&self, x: &Tensor, class: usize) -> Tensor;

    /// Softmax probabilities (score-based access).
    fn probabilities(&self, x: &Tensor) -> Vec<f32> {
        let logits = self.logits(x);
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Predicted label (decision-based access).
    fn predict(&self, x: &Tensor) -> usize {
        let logits = self.logits(x);
        argmax_logits(&logits)
    }

    /// Predicted labels for a whole `[N, C, H, W]` batch.
    ///
    /// The default loops [`predict`](TargetModel::predict) per image; models
    /// backed by batched inference (like [`Network`]) override it with one
    /// batched forward pass through the compiled serving engine
    /// (`da_nn::engine`: pre-decomposed weights, fused conv tiles, reused
    /// workspaces), which is bit-identical per image.
    fn predict_batch(&self, images: &Tensor) -> Vec<usize> {
        (0..images.shape()[0]).map(|i| self.predict(&images.batch_item(i))).collect()
    }
}

impl TargetModel for Network {
    fn num_classes(&self) -> usize {
        // The classifier head's bias length is the class count.
        self.params().last().expect("non-empty network").shape()[0]
    }

    fn logits(&self, x: &Tensor) -> Vec<f32> {
        let batch = Tensor::stack(std::slice::from_ref(x));
        Network::logits(self, &batch).into_vec()
    }

    fn loss_gradient(&self, x: &Tensor, label: usize) -> (f32, Tensor) {
        let batch = Tensor::stack(std::slice::from_ref(x));
        let (loss, grad) = Network::input_gradient(self, &batch, &[label]);
        (loss, grad.batch_item(0))
    }

    fn class_gradient(&self, x: &Tensor, class: usize) -> Tensor {
        let batch = Tensor::stack(std::slice::from_ref(x));
        Network::class_gradient(self, &batch, class).batch_item(0)
    }

    fn predict_batch(&self, images: &Tensor) -> Vec<usize> {
        let logits = Network::logits(self, images);
        let classes = logits.shape()[1];
        logits.data().chunks(classes).map(argmax_logits).collect()
    }
}

/// Wrapper enforcing decision/score-only access: any gradient call panics.
///
/// Used in tests to prove that LSA, Boundary Attack, and HopSkipJump are
/// genuinely black-box (paper Table 1 categories).
pub struct DecisionOnly<'a>(pub &'a dyn TargetModel);

impl TargetModel for DecisionOnly<'_> {
    fn num_classes(&self) -> usize {
        self.0.num_classes()
    }

    fn logits(&self, x: &Tensor) -> Vec<f32> {
        self.0.logits(x)
    }

    fn loss_gradient(&self, _x: &Tensor, _label: usize) -> (f32, Tensor) {
        panic!("decision-only model: loss_gradient is not available");
    }

    fn class_gradient(&self, _x: &Tensor, _class: usize) -> Tensor {
        panic!("decision-only model: class_gradient is not available");
    }
}

/// An adversarial-example generator.
pub trait Attack: Send + Sync {
    /// Stable attack name as it appears in the paper's tables
    /// ("FGSM", "PGD", "JSMA", "C&W", "DF", "LSA", "BA", "HSJ").
    fn name(&self) -> &str;

    /// Craft a candidate adversarial for `(x, label)` against `model`.
    ///
    /// The returned image is clipped to `[0, 1]`. It may fail to fool the
    /// model; callers decide success via `model.predict`.
    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor;
}

/// Clip helper shared by attack implementations.
pub(crate) fn clip01(mut x: Tensor) -> Tensor {
    x.clamp_inplace(0.0, 1.0);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_nn::layers::{Dense, Flatten, Relu};
    use rand::SeedableRng;

    pub(crate) fn tiny_model() -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        Network::new("tiny")
            .push(Flatten)
            .push(Dense::new(16, 12, &mut rng))
            .push(Relu)
            .push(Dense::new(12, 3, &mut rng))
    }

    #[test]
    fn network_implements_target_model() {
        let net = tiny_model();
        let x =
            Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, &mut rand::rngs::StdRng::seed_from_u64(2));
        assert_eq!(net.num_classes(), 3);
        assert_eq!(TargetModel::logits(&net, &x).len(), 3);
        let probs = TargetModel::probabilities(&net, &x);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let pred = TargetModel::predict(&net, &x);
        assert!(pred < 3);
        let (_, grad) = TargetModel::loss_gradient(&net, &x, 0);
        assert_eq!(grad.shape(), x.shape());
    }

    #[test]
    fn decision_only_forwards_predictions() {
        let net = tiny_model();
        let x =
            Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, &mut rand::rngs::StdRng::seed_from_u64(3));
        let wrapped = DecisionOnly(&net);
        assert_eq!(wrapped.predict(&x), TargetModel::predict(&net, &x));
        assert_eq!(wrapped.num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "decision-only model")]
    fn decision_only_blocks_gradients() {
        let net = tiny_model();
        let x = Tensor::zeros(&[1, 4, 4]);
        let _ = DecisionOnly(&net).loss_gradient(&x, 0);
    }
}
