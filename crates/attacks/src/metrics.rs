//! Perturbation distance metrics (paper §2.1) and image-quality measures
//! (§5.3: MSE, PSNR).

use da_tensor::Tensor;

/// L0 "norm": number of differing elements (above `1e-6` tolerance).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn l0(a: &Tensor, b: &Tensor) -> usize {
    assert_eq!(a.shape(), b.shape(), "l0 shape mismatch");
    a.data().iter().zip(b.data()).filter(|(x, y)| (*x - *y).abs() > 1e-6).count()
}

/// Euclidean (L2) distance.
pub fn l2(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "l2 shape mismatch");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Chebyshev (L∞) distance.
pub fn linf(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "linf shape mismatch");
    a.data().iter().zip(b.data()).map(|(x, y)| ((*x - *y) as f64).abs()).fold(0.0, f64::max)
}

/// Mean squared error.
pub fn mse(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Peak signal-to-noise ratio in dB for images in `[0, 1]`
/// (`PSNR = 20·log10(MAX / √MSE)` with `MAX = 1`). Identical images give
/// `f64::INFINITY`.
pub fn psnr(a: &Tensor, b: &Tensor) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (1.0 / m.sqrt()).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Tensor, Tensor) {
        let a = Tensor::from_vec(vec![0.0, 0.5, 1.0, 0.25], &[4]);
        let b = Tensor::from_vec(vec![0.0, 0.75, 1.0, 0.25], &[4]);
        (a, b)
    }

    #[test]
    fn l0_counts_changed_elements() {
        let (a, b) = pair();
        assert_eq!(l0(&a, &b), 1);
        assert_eq!(l0(&a, &a), 0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let (a, b) = pair();
        assert!((l2(&a, &b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn linf_takes_max() {
        let (a, b) = pair();
        assert!((linf(&a, &b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mse_and_psnr_are_consistent() {
        let (a, b) = pair();
        let m = mse(&a, &b);
        assert!((m - 0.0625 / 4.0).abs() < 1e-9);
        let p = psnr(&a, &b);
        assert!((p - 20.0 * (1.0 / m.sqrt()).log10()).abs() < 1e-9);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let (a, _) = pair();
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn lower_psnr_means_more_distortion() {
        let a = Tensor::zeros(&[16]);
        let slight = Tensor::filled(&[16], 0.01);
        let heavy = Tensor::filled(&[16], 0.3);
        assert!(psnr(&a, &slight) > psnr(&a, &heavy));
    }

    #[test]
    fn metric_identities() {
        // d(a,a)=0; symmetry; triangle inequality spot-check for L2.
        let (a, b) = pair();
        let c = Tensor::from_vec(vec![0.1, 0.1, 0.9, 0.3], &[4]);
        assert_eq!(l2(&a, &a), 0.0);
        assert_eq!(l2(&a, &b), l2(&b, &a));
        assert!(l2(&a, &c) <= l2(&a, &b) + l2(&b, &c) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_mismatched_shapes() {
        let _ = l2(&Tensor::zeros(&[2]), &Tensor::zeros(&[3]));
    }
}
