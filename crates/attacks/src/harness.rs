//! Transferability evaluation harness (the machinery behind the paper's
//! Tables 2, 3, 4, 5, and 10).

use da_tensor::Tensor;

use crate::metrics;
use crate::traits::{Attack, TargetModel};

/// Outcome of one crafted adversarial example.
#[derive(Debug, Clone)]
pub struct AttackSuccess {
    /// The adversarial image.
    pub adversarial: Tensor,
    /// True label of the source image.
    pub label: usize,
    /// Did it fool the model it was crafted on?
    pub fooled_source: bool,
    /// Did it fool the transfer-target model?
    pub fooled_target: bool,
    /// L2 distance to the clean image.
    pub l2: f64,
    /// L∞ distance to the clean image.
    pub linf: f64,
}

/// Aggregated transferability of one attack between two models.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Attack name (paper row label).
    pub attack: String,
    /// Examples attempted (correctly classified by the source model).
    pub attempted: usize,
    /// Examples that fooled the source model.
    pub source_successes: usize,
    /// Of those, examples that also fooled the target model.
    pub target_successes: usize,
}

impl TransferReport {
    /// Success rate on the source model (the paper's "Exact" column,
    /// typically 100% by construction).
    pub fn source_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.source_successes as f64 / self.attempted as f64
        }
    }

    /// Transfer rate: the fraction of source-successful adversarials that
    /// also fool the target (the paper's "Approximate" column).
    pub fn transfer_rate(&self) -> f64 {
        if self.source_successes == 0 {
            0.0
        } else {
            self.target_successes as f64 / self.source_successes as f64
        }
    }
}

impl std::fmt::Display for TransferReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<6} source {:>5.1}%  transfer {:>5.1}%  ({} samples)",
            self.attack,
            self.source_rate() * 100.0,
            self.transfer_rate() * 100.0,
            self.attempted
        )
    }
}

/// Craft adversarials with `attack` against `source` and replay them on
/// `target` (the paper's transferability protocol, Figure 5).
///
/// Only images the source model classifies correctly are attacked. Returns
/// the aggregate report and per-example outcomes.
///
/// Batch structure: the clean filter and both replay passes go through
/// [`TargetModel::predict_batch`], so models backed by the serving stack
/// (`Network`'s compiled plans, or a [`crate::served::ServedModel`] riding
/// the cross-request batch server) evaluate the whole set as coalesced
/// batches — bit-identical to per-image prediction.
pub fn evaluate_transfer(
    attack: &dyn Attack,
    source: &dyn TargetModel,
    target: &dyn TargetModel,
    images: &Tensor,
    labels: &[usize],
) -> (TransferReport, Vec<AttackSuccess>) {
    assert_eq!(images.shape()[0], labels.len(), "one label per image");
    let mut attempted = 0usize;

    // One batched forward pass filters the clean set.
    let clean_predictions = source.predict_batch(images);

    // Crafting is per-image (attacks are sequential query loops).
    let mut crafted: Vec<(f64, f64, Tensor, usize)> = Vec::new();
    for i in 0..labels.len() {
        let x = images.batch_item(i);
        let label = labels[i];
        if clean_predictions[i] != label {
            continue; // only attack correctly classified inputs
        }
        attempted += 1;
        let adv = attack.run(source, &x, label);
        crafted.push((metrics::l2(&adv, &x), metrics::linf(&adv, &x), adv, label));
    }

    // Replay the crafted examples on the source as one batch, then only the
    // source-fooling subset on the target (the others cannot transfer).
    let mut outcomes = Vec::with_capacity(crafted.len());
    let mut source_successes = 0usize;
    let mut target_successes = 0usize;
    if !crafted.is_empty() {
        let advs: Vec<Tensor> = crafted.iter().map(|(_, _, adv, _)| adv.clone()).collect();
        let source_replay = source.predict_batch(&Tensor::stack(&advs));
        let fooling: Vec<Tensor> = crafted
            .iter()
            .zip(&source_replay)
            .filter(|((_, _, _, label), pred)| **pred != *label)
            .map(|((_, _, adv, _), _)| adv.clone())
            .collect();
        let mut target_replay = if fooling.is_empty() {
            Vec::new()
        } else {
            target.predict_batch(&Tensor::stack(&fooling))
        }
        .into_iter();
        for (i, (l2, linf, adversarial, label)) in crafted.into_iter().enumerate() {
            let fooled_source = source_replay[i] != label;
            let fooled_target =
                fooled_source && target_replay.next().expect("one replay per fooling adv") != label;
            source_successes += usize::from(fooled_source);
            target_successes += usize::from(fooled_target);
            outcomes.push(AttackSuccess {
                adversarial,
                label,
                fooled_source,
                fooled_target,
                l2,
                linf,
            });
        }
    }

    (
        TransferReport {
            attack: attack.name().to_string(),
            attempted,
            source_successes,
            target_successes,
        },
        outcomes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::Fgsm;
    use da_nn::layers::{Dense, Flatten, Relu};
    use da_nn::optim::Adam;
    use da_nn::train::{train, TrainConfig};
    use da_nn::Network;
    use rand::SeedableRng;

    fn data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let mut img = Tensor::rand_uniform(&[1, 4, 4], 0.15, 0.4, &mut rng);
            for y in 0..4 {
                for x in 0..2 {
                    let col = if label == 0 { x } else { x + 2 };
                    img[[0, y, col]] = rand::Rng::gen_range(&mut rng, 0.45..0.65);
                }
            }
            images.push(img);
            labels.push(label);
        }
        (Tensor::stack(&images), labels)
    }

    fn trained(seed: u64) -> Network {
        let (xs, ys) = data(200, 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Network::new("harness-test")
            .push(Flatten)
            .push(Dense::new(16, 12, &mut rng))
            .push(Relu)
            .push(Dense::new(12, 2, &mut rng));
        let cfg = TrainConfig { epochs: 20, batch_size: 16, seed, verbose: false };
        train(&mut net, &xs, &ys, &cfg, &mut Adam::new(0.01));
        net
    }

    #[test]
    fn self_transfer_is_total() {
        // Crafting and evaluating on the same model: every source success is
        // a target success by definition.
        let net = trained(1);
        let (xs, ys) = data(12, 200);
        let (report, outcomes) = evaluate_transfer(&Fgsm::new(0.3), &net, &net, &xs, &ys);
        assert_eq!(report.source_successes, report.target_successes);
        assert!(report.source_rate() > 0.5);
        assert_eq!(outcomes.len(), report.attempted);
        assert!((report.transfer_rate() - 1.0).abs() < 1e-9 || report.source_successes == 0);
    }

    #[test]
    fn transfer_to_different_model_is_partial_or_less() {
        let a = trained(1);
        let b = trained(99);
        let (xs, ys) = data(12, 300);
        let (report, _) = evaluate_transfer(&Fgsm::new(0.3), &a, &b, &xs, &ys);
        assert!(report.target_successes <= report.source_successes);
    }

    #[test]
    fn outcomes_record_distances() {
        let net = trained(2);
        let (xs, ys) = data(6, 400);
        let (_, outcomes) = evaluate_transfer(&Fgsm::new(0.2), &net, &net, &xs, &ys);
        for o in &outcomes {
            assert!(o.linf <= 0.2 + 1e-6);
            assert!(o.l2 >= o.linf); // L2 dominates L∞ on multi-pixel changes
        }
    }

    #[test]
    fn display_formats_rates() {
        let r = TransferReport {
            attack: "FGSM".into(),
            attempted: 10,
            source_successes: 10,
            target_successes: 3,
        };
        let s = r.to_string();
        assert!(s.contains("100.0%"), "{s}");
        assert!(s.contains("30.0%"), "{s}");
    }
}
