//! Serving-path targets: a [`TargetModel`] whose inference rides a
//! cross-request batch server.
//!
//! The paper's threat model attacks a *deployed* classifier, and the
//! deployment path here is `da_nn::serve`: single-sample queries are
//! coalesced into micro-batches and executed on a shard pool of compiled
//! plan replicas. [`ServedModel`] routes every decision/score query of an
//! attack — `logits`, `predict`, `probabilities`, and the harness's batched
//! `predict_batch` clean filter and replay — through a
//! [`BatchServer`], while gradient queries (white-box access) delegate to
//! the wrapped [`Network`]'s per-layer backward pass, exactly as before.
//!
//! Because batching is bit-identical to serial inference (the serve
//! module's core contract), attack trajectories and transfer rates are
//! unchanged by the routing — only the serving machinery underneath moves.

use da_nn::loss::argmax_logits;
use da_nn::serve::{BatchServer, ServeConfig};
use da_nn::Network;
use da_tensor::Tensor;

use crate::traits::TargetModel;

/// A [`Network`] served through a [`BatchServer`] for all non-gradient
/// queries.
///
/// # Examples
///
/// ```
/// use da_attacks::served::ServedModel;
/// use da_attacks::TargetModel;
/// use da_nn::layers::{Dense, Flatten};
/// use da_nn::Network;
/// use da_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Network::new("t").push(Flatten).push(Dense::new(9, 4, &mut rng));
/// let served = ServedModel::new(&net).expect("dense stacks compile");
/// let x = Tensor::zeros(&[1, 3, 3]);
/// assert_eq!(served.predict(&x), TargetModel::predict(&net, &x));
/// ```
pub struct ServedModel<'a> {
    network: &'a Network,
    server: BatchServer,
}

impl<'a> ServedModel<'a> {
    /// Serve `network` with a crafting-friendly configuration: zero flush
    /// deadline (a lone attacker's request never idles waiting for
    /// batchmates; batches still form whenever submissions outpace workers)
    /// and a queue deep enough for batched replays.
    ///
    /// `None` when the layer stack has no compiled form — callers fall back
    /// to attacking the [`Network`] directly.
    pub fn new(network: &'a Network) -> Option<ServedModel<'a>> {
        // Capped worker count: crafting is a sequential query loop with at
        // most one batched replay in flight, so replicas beyond a few only
        // cost memory (each worker snapshots the full prepared weights) —
        // evaluation harnesses often hold several ServedModels at once.
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
        ServedModel::with_config(
            network,
            ServeConfig {
                workers,
                max_batch: 32,
                flush_deadline: std::time::Duration::ZERO,
                queue_capacity: 256,
                ..ServeConfig::default()
            },
        )
    }

    /// [`ServedModel::new`] with explicit serving knobs.
    pub fn with_config(network: &'a Network, config: ServeConfig) -> Option<ServedModel<'a>> {
        assert!(config.workers >= 1, "a served model needs at least one worker");
        let server = BatchServer::compile(network, config)?;
        Some(ServedModel { network, server })
    }

    /// The batch server behind the model (stats, staleness checks).
    pub fn server(&self) -> &BatchServer {
        &self.server
    }

    /// The wrapped network (gradient path).
    pub fn network(&self) -> &Network {
        self.network
    }
}

impl TargetModel for ServedModel<'_> {
    fn num_classes(&self) -> usize {
        self.network.num_classes()
    }

    fn logits(&self, x: &Tensor) -> Vec<f32> {
        self.server.logits(x).expect("batch server serving").into_vec()
    }

    fn loss_gradient(&self, x: &Tensor, label: usize) -> (f32, Tensor) {
        // Explicit trait dispatch: `Network` also has an inherent (batched)
        // `class_gradient`, and these take per-image inputs.
        TargetModel::loss_gradient(self.network, x, label)
    }

    fn class_gradient(&self, x: &Tensor, class: usize) -> Tensor {
        TargetModel::class_gradient(self.network, x, class)
    }

    fn predict_batch(&self, images: &Tensor) -> Vec<usize> {
        // `BatchServer::predict_batch` owns the submit-all-then-wait window
        // that lets the queue coalesce the items into micro-batches. The
        // harness owns its private server for the model's whole lifetime,
        // so a serve failure here is a bug, not an operational condition.
        let logits = self.server.predict_batch(images).expect("private batch server serving");
        let classes: usize = logits.shape()[1..].iter().product();
        logits.data().chunks(classes).map(argmax_logits).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_arith::MultiplierKind;
    use da_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use rand::SeedableRng;

    fn tiny_cnn(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("served-tiny")
            .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 4, &mut rng))
    }

    #[test]
    fn served_queries_match_direct_network_queries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for kind in [None, Some(MultiplierKind::AxFpm)] {
            let mut net = tiny_cnn(8);
            net.set_multiplier(kind.map(|k| k.build()));
            let served = ServedModel::new(&net).expect("compilable");
            let x = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng);
            let direct: Vec<f32> = TargetModel::logits(&net, &x);
            let routed = TargetModel::logits(&served, &x);
            assert_eq!(direct, routed, "{kind:?}");
            assert_eq!(TargetModel::predict(&served, &x), TargetModel::predict(&net, &x));
            assert_eq!(served.num_classes(), 4);
        }
    }

    #[test]
    fn served_predict_batch_matches_network() {
        let net = tiny_cnn(10);
        let served = ServedModel::new(&net).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let batch = Tensor::rand_uniform(&[9, 1, 8, 8], 0.0, 1.0, &mut rng);
        assert_eq!(served.predict_batch(&batch), TargetModel::predict_batch(&net, &batch));
        assert_eq!(served.server().stats().items, 9);
    }

    #[test]
    fn gradients_delegate_to_the_network() {
        let net = tiny_cnn(12);
        let served = ServedModel::new(&net).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let x = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng);
        let (loss_s, grad_s) = served.loss_gradient(&x, 1);
        let (loss_n, grad_n) = TargetModel::loss_gradient(&net, &x, 1);
        assert_eq!(loss_s.to_bits(), loss_n.to_bits());
        assert_eq!(grad_s, grad_n);
        assert_eq!(served.class_gradient(&x, 2), TargetModel::class_gradient(&net, &x, 2));
    }

    #[test]
    fn uncompilable_stack_declines() {
        struct Opaque;
        impl da_nn::Layer for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn forward(&self, x: &Tensor, _mode: da_nn::Mode) -> (Tensor, da_nn::Cache) {
                (x.clone(), da_nn::Cache::none())
            }
            fn backward(&self, _cache: &da_nn::Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
                (grad.clone(), Vec::new())
            }
        }
        let net = Network::new("opaque").push(Opaque);
        assert!(ServedModel::new(&net).is_none());
    }
}
