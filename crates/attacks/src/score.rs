//! Score-based attacks: the Local Search Attack (LSA) of Narodytska &
//! Kasiviswanathan \[47\].

use rand::{Rng, SeedableRng};

use da_tensor::Tensor;

use crate::traits::{clip01, Attack, TargetModel};

/// Local Search Attack: greedy score-based search that perturbs small pixel
/// neighborhoods, keeping the modifications that most reduce the true
/// class's probability. Uses only [`TargetModel::probabilities`].
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    /// Rounds of local search.
    rounds: usize,
    /// Candidate pixels sampled per round.
    candidates: usize,
    /// Pixels applied per round.
    apply_per_round: usize,
    /// Perturbation magnitude.
    strength: f32,
    seed: u64,
}

impl LocalSearch {
    /// LSA with the given search budget.
    ///
    /// # Panics
    ///
    /// Panics on degenerate budgets.
    pub fn new(
        rounds: usize,
        candidates: usize,
        apply_per_round: usize,
        strength: f32,
        seed: u64,
    ) -> Self {
        assert!(rounds > 0 && candidates > 0 && apply_per_round > 0, "degenerate LSA budget");
        assert!(strength > 0.0, "strength must be positive");
        LocalSearch { rounds, candidates, apply_per_round, strength, seed }
    }

    /// A moderate default budget.
    pub fn standard(seed: u64) -> Self {
        LocalSearch::new(16, 48, 4, 0.9, seed)
    }
}

impl Attack for LocalSearch {
    fn name(&self) -> &str {
        "LSA"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut adv = x.clone();
        let n = x.len();

        for _ in 0..self.rounds {
            if model.predict(&adv) != label {
                break;
            }
            // Score each candidate pixel by the true-class probability after
            // pushing it toward its far extreme.
            let mut scored: Vec<(f32, usize, f32)> = Vec::with_capacity(self.candidates);
            for _ in 0..self.candidates {
                let i = rng.gen_range(0..n);
                let current = adv.data()[i];
                let flipped = if current > 0.5 {
                    (current - self.strength).max(0.0)
                } else {
                    (current + self.strength).min(1.0)
                };
                let mut probe = adv.clone();
                probe.data_mut()[i] = flipped;
                let p_true = model.probabilities(&probe)[label];
                scored.push((p_true, i, flipped));
            }
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite probs"));
            for &(_, i, value) in scored.iter().take(self.apply_per_round) {
                adv.data_mut()[i] = value;
            }
        }
        clip01(adv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::DecisionOnly;
    use da_nn::layers::{Dense, Flatten, Relu};
    use da_nn::optim::Adam;
    use da_nn::train::{train, TrainConfig};
    use da_nn::Network;
    use rand::SeedableRng;

    fn trained_model() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let n = 200;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let mut img = Tensor::rand_uniform(&[1, 4, 4], 0.0, 0.2, &mut rng);
            for y in 0..4 {
                for x in 0..2 {
                    let col = if label == 0 { x } else { x + 2 };
                    img[[0, y, col]] = rand::Rng::gen_range(&mut rng, 0.75..1.0);
                }
            }
            images.push(img);
            labels.push(label);
        }
        let xs = Tensor::stack(&images);
        let mut net = Network::new("lsa-test")
            .push(Flatten)
            .push(Dense::new(16, 12, &mut rng))
            .push(Relu)
            .push(Dense::new(12, 2, &mut rng));
        let cfg = TrainConfig { epochs: 20, batch_size: 16, seed: 2, verbose: false };
        let report = train(&mut net, &xs, &labels, &cfg, &mut Adam::new(0.01));
        assert!(report.final_accuracy > 0.95);
        (net, images.into_iter().zip(labels).take(6).collect())
    }

    #[test]
    fn lsa_fools_the_model_with_scores_only() {
        let (net, samples) = trained_model();
        // DecisionOnly panics on any gradient access, proving the category.
        let black_box = DecisionOnly(&net);
        let attack = LocalSearch::standard(5);
        let mut successes = 0;
        for (x, label) in &samples {
            if black_box.predict(x) != *label {
                continue;
            }
            let adv = attack.run(&black_box, x, *label);
            assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            if black_box.predict(&adv) != *label {
                successes += 1;
            }
        }
        assert!(successes >= 4, "LSA fooled only {successes}/6");
    }

    #[test]
    fn lsa_is_deterministic_in_seed() {
        let (net, samples) = trained_model();
        let (x, label) = &samples[0];
        let a = LocalSearch::standard(9).run(&net, x, *label);
        let b = LocalSearch::standard(9).run(&net, x, *label);
        assert_eq!(a, b);
    }

    #[test]
    fn lsa_stops_early_once_successful() {
        // A model that always predicts class 1: for label 0, the input is
        // already "adversarial", so LSA must return it untouched.
        let (net, samples) = trained_model();
        let (x, _) = &samples[0];
        let wrong_label = 1 - crate::TargetModel::predict(&net, x);
        let adv = LocalSearch::standard(3).run(&net, x, wrong_label);
        assert_eq!(adv, *x);
    }

    #[test]
    #[should_panic(expected = "degenerate LSA budget")]
    fn rejects_zero_rounds() {
        let _ = LocalSearch::new(0, 10, 1, 0.5, 0);
    }
}
