//! Gradient-based attacks: FGSM, PGD, JSMA, C&W-L2, and DeepFool.

use rand::SeedableRng;

use da_tensor::Tensor;

use crate::traits::{clip01, Attack, TargetModel};

/// Fast Gradient Sign Method \[20\]: one L∞ step of size `eps` along the sign
/// of the loss gradient.
///
/// # Examples
///
/// ```no_run
/// use da_attacks::gradient::Fgsm;
/// use da_attacks::Attack;
/// # let model: da_nn::Network = unimplemented!();
/// # let (x, label) = (da_tensor::Tensor::zeros(&[1, 28, 28]), 3);
/// let adv = Fgsm::new(0.2).run(&model, &x, label);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fgsm {
    eps: f32,
}

impl Fgsm {
    /// FGSM with L∞ budget `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not positive.
    pub fn new(eps: f32) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        Fgsm { eps }
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &str {
        "FGSM"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let (_, grad) = model.loss_gradient(x, label);
        clip01(x.zip_map(&grad, |v, g| v + self.eps * g.signum()))
    }
}

/// Projected Gradient Descent \[41\]: iterated FGSM with projection back onto
/// the `eps` L∞ ball, from a random start.
#[derive(Debug, Clone, Copy)]
pub struct Pgd {
    eps: f32,
    alpha: f32,
    steps: usize,
    seed: u64,
}

impl Pgd {
    /// PGD with ball radius `eps`, step `alpha`, and `steps` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `eps` or `alpha` is not positive or `steps` is zero.
    pub fn new(eps: f32, alpha: f32, steps: usize, seed: u64) -> Self {
        assert!(eps > 0.0 && alpha > 0.0 && steps > 0, "degenerate PGD config");
        Pgd { eps, alpha, steps, seed }
    }
}

impl Attack for Pgd {
    fn name(&self) -> &str {
        "PGD"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let start = Tensor::rand_uniform(x.shape(), -self.eps, self.eps, &mut rng);
        let mut adv = clip01(x.zip_map(&start, |v, r| v + r));
        for _ in 0..self.steps {
            let (_, grad) = model.loss_gradient(&adv, label);
            adv = adv.zip_map(&grad, |v, g| v + self.alpha * g.signum());
            // Project onto the eps-ball around x, then the valid range.
            adv = adv.zip_map(x, |v, orig| v.clamp(orig - self.eps, orig + self.eps));
            adv = clip01(adv);
        }
        adv
    }
}

/// Jacobian-based Saliency Map Attack \[54\]: greedy L0 attack that saturates
/// the pixel pair with the highest saliency toward the runner-up class.
#[derive(Debug, Clone, Copy)]
pub struct Jsma {
    /// Maximum fraction of pixels modified.
    gamma: f32,
}

impl Jsma {
    /// JSMA allowed to touch at most `gamma` of the pixels.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < gamma <= 1`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Jsma { gamma }
    }
}

impl Attack for Jsma {
    fn name(&self) -> &str {
        "JSMA"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let mut adv = x.clone();
        // Target the current runner-up class.
        let probs = model.probabilities(x);
        let target = probs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != label)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(j, _)| j)
            .expect("at least two classes");

        let budget = ((x.len() as f32 * self.gamma) as usize).max(2);
        let mut touched = 0usize;
        let mut saturated = vec![false; x.len()];

        while touched < budget {
            if model.predict(&adv) == target {
                break;
            }
            let g_target = model.class_gradient(&adv, target);
            // Σ_{j≠t} ∂Z_j/∂x = ∂(Σ_j Z_j)/∂x − ∂Z_t/∂x; accumulate per class.
            let mut g_others = Tensor::zeros(x.shape());
            for j in 0..model.num_classes() {
                if j != target {
                    g_others.add_assign(&model.class_gradient(&adv, j));
                }
            }

            // Single-pixel saliency (the pairwise search reduces to the two
            // best single scores because the score is additive in the pair).
            let mut best: Option<(usize, f32)> = None;
            let mut second: Option<(usize, f32)> = None;
            for i in 0..x.len() {
                if saturated[i] {
                    continue;
                }
                let a = g_target.data()[i];
                let b = g_others.data()[i];
                if a <= 0.0 || b >= 0.0 {
                    continue; // classic JSMA admissibility condition
                }
                let score = a * (-b);
                match best {
                    Some((_, bs)) if score <= bs => match second {
                        Some((_, ss)) if score <= ss => {}
                        _ => second = Some((i, score)),
                    },
                    _ => {
                        second = best;
                        best = Some((i, score));
                    }
                }
            }

            let picks: Vec<usize> = [best, second].iter().flatten().map(|&(i, _)| i).collect();
            if picks.is_empty() {
                break; // saliency map exhausted
            }
            for i in picks {
                adv.data_mut()[i] = 1.0; // θ = +1: saturate the pixel
                saturated[i] = true;
                touched += 1;
            }
        }
        adv
    }
}

/// Carlini & Wagner L2 attack \[10\]: tanh-space optimization of
/// `‖x' − x‖² + c · max(Z_label − max_{j≠label} Z_j, −κ)` with binary search
/// over `c`.
#[derive(Debug, Clone, Copy)]
pub struct CarliniWagnerL2 {
    steps: usize,
    lr: f32,
    initial_c: f32,
    kappa: f32,
    binary_search_steps: usize,
}

impl CarliniWagnerL2 {
    /// C&W with `steps` optimizer iterations per `c` and
    /// `binary_search_steps` rounds of `c` search.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations.
    pub fn new(
        steps: usize,
        lr: f32,
        initial_c: f32,
        kappa: f32,
        binary_search_steps: usize,
    ) -> Self {
        assert!(steps > 0 && binary_search_steps > 0, "need iterations");
        assert!(lr > 0.0 && initial_c > 0.0 && kappa >= 0.0, "degenerate C&W config");
        CarliniWagnerL2 { steps, lr, initial_c, kappa, binary_search_steps }
    }

    /// The paper-scale default (moderate budget).
    pub fn standard() -> Self {
        CarliniWagnerL2::new(60, 0.05, 1.0, 0.0, 3)
    }
}

impl Attack for CarliniWagnerL2 {
    fn name(&self) -> &str {
        "C&W"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        // w-space parameterization: x' = (tanh(w) + 1) / 2 stays in [0, 1].
        let to_w = |v: f32| (2.0 * v.clamp(1e-4, 1.0 - 1e-4) - 1.0).atanh();
        let from_w = |w: f32| (w.tanh() + 1.0) / 2.0;

        let mut c = self.initial_c;
        let mut c_lo = 0.0f32;
        let mut c_hi = f32::INFINITY;
        let mut best: Option<(f64, Tensor)> = None;

        for _ in 0..self.binary_search_steps {
            let mut w = x.map(to_w);
            // Adam state.
            let mut m = Tensor::zeros(x.shape());
            let mut v = Tensor::zeros(x.shape());
            let mut success_this_c = false;

            for t in 1..=self.steps {
                let adv = w.map(from_w);
                let logits = model.logits(&adv);
                let (other_class, other_logit) = logits
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != label)
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, &l)| (j, l))
                    .expect("at least two classes");
                let margin = logits[label] - other_logit;

                if margin < -self.kappa {
                    success_this_c = true;
                    let dist = crate::metrics::l2(&adv, x);
                    if best.as_ref().map(|(d, _)| dist < *d).unwrap_or(true) {
                        best = Some((dist, adv.clone()));
                    }
                }

                // ∂/∂x' of the objective.
                let mut grad = adv.zip_map(x, |a, o| 2.0 * (a - o));
                if margin > -self.kappa {
                    let g_label = model.class_gradient(&adv, label);
                    let g_other = model.class_gradient(&adv, other_class);
                    grad.add_scaled(&g_label.zip_map(&g_other, |a, b| a - b), c);
                }
                // Chain through the tanh reparameterization:
                // dx'/dw = (1 − tanh²(w)) / 2.
                let grad_w = grad.zip_map(&w, |g, wv| g * (1.0 - wv.tanh().powi(2)) / 2.0);

                // Adam step.
                let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
                m.scale(b1);
                m.add_scaled(&grad_w, 1.0 - b1);
                v.scale(b2);
                v.add_scaled(&grad_w.map(|g| g * g), 1.0 - b2);
                let (bc1, bc2) = (1.0 - b1.powi(t as i32), 1.0 - b2.powi(t as i32));
                for ((wv, mv), vv) in w.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                    *wv -= self.lr * (mv / bc1) / ((vv / bc2).sqrt() + eps);
                }
            }

            // Binary search over c: shrink on success, grow on failure.
            if success_this_c {
                c_hi = c;
                c = (c_lo + c_hi) / 2.0;
            } else {
                c_lo = c;
                c = if c_hi.is_finite() { (c_lo + c_hi) / 2.0 } else { c * 10.0 };
            }
        }

        best.map(|(_, adv)| adv).unwrap_or_else(|| x.clone())
    }
}

/// DeepFool \[45\]: iterative minimal-L2 push across the nearest linearized
/// decision boundary.
#[derive(Debug, Clone, Copy)]
pub struct DeepFool {
    max_iter: usize,
    overshoot: f32,
}

impl DeepFool {
    /// DeepFool with at most `max_iter` linearization steps and the standard
    /// `overshoot` (0.02 in the original paper).
    ///
    /// # Panics
    ///
    /// Panics if `max_iter` is zero or `overshoot` negative.
    pub fn new(max_iter: usize, overshoot: f32) -> Self {
        assert!(max_iter > 0, "need at least one iteration");
        assert!(overshoot >= 0.0, "overshoot must be non-negative");
        DeepFool { max_iter, overshoot }
    }
}

impl Attack for DeepFool {
    fn name(&self) -> &str {
        "DF"
    }

    fn run(&self, model: &dyn TargetModel, x: &Tensor, label: usize) -> Tensor {
        let mut adv = x.clone();
        let mut total_r = Tensor::zeros(x.shape());
        for _ in 0..self.max_iter {
            if model.predict(&adv) != label {
                break;
            }
            let logits = model.logits(&adv);
            let g_label = model.class_gradient(&adv, label);

            // Nearest boundary across all other classes.
            let mut best: Option<(f64, Tensor, f32)> = None;
            for k in 0..model.num_classes() {
                if k == label {
                    continue;
                }
                let w_k = model.class_gradient(&adv, k).zip_map(&g_label, |a, b| a - b);
                let f_k = logits[k] - logits[label];
                let w_norm = w_k.l2_norm().max(1e-9);
                let dist = (f_k.abs() / w_norm) as f64;
                if best.as_ref().map(|(d, _, _)| dist < *d).unwrap_or(true) {
                    best = Some((dist, w_k, f_k));
                }
            }
            let (_, w_k, f_k) = best.expect("at least two classes");
            let w_norm_sq = w_k.data().iter().map(|v| v * v).sum::<f32>().max(1e-12);
            let scale = (f_k.abs() + 1e-4) / w_norm_sq;
            total_r.add_scaled(&w_k, scale);
            adv = clip01(x.zip_map(&total_r, |orig, r| orig + (1.0 + self.overshoot) * r));
        }
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use da_nn::layers::{Dense, Flatten, Relu};
    use da_nn::optim::Adam;
    use da_nn::train::{train, TrainConfig};
    use da_nn::Network;
    use rand::SeedableRng;

    /// A small trained model on a separable 2-class image problem:
    /// class 0 = bright left half, class 1 = bright right half.
    fn trained_model() -> (Network, Vec<(Tensor, usize)>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 240;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let mut img = Tensor::rand_uniform(&[1, 4, 4], 0.15, 0.4, &mut rng);
            for y in 0..4 {
                for x in 0..2 {
                    let col = if label == 0 { x } else { x + 2 };
                    img[[0, y, col]] = rand::Rng::gen_range(&mut rng, 0.45..0.65);
                }
            }
            images.push(img);
            labels.push(label);
        }
        let xs = Tensor::stack(&images);
        let mut net = Network::new("attack-test")
            .push(Flatten)
            .push(Dense::new(16, 16, &mut rng))
            .push(Relu)
            .push(Dense::new(16, 2, &mut rng));
        let cfg = TrainConfig { epochs: 20, batch_size: 16, seed: 2, verbose: false };
        let report = train(&mut net, &xs, &labels, &cfg, &mut Adam::new(0.01));
        assert!(report.final_accuracy > 0.95, "test model failed to train");
        let samples = images.into_iter().zip(labels).take(8).collect();
        (net, samples)
    }

    fn check_attack_succeeds(attack: &dyn Attack, min_success: usize) {
        let (net, samples) = trained_model();
        let mut successes = 0;
        for (x, label) in &samples {
            if crate::TargetModel::predict(&net, x) != *label {
                continue;
            }
            let adv = attack.run(&net, x, *label);
            assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)), "range violated");
            if crate::TargetModel::predict(&net, &adv) != *label {
                successes += 1;
            }
        }
        assert!(
            successes >= min_success,
            "{} fooled only {successes} of {} samples",
            attack.name(),
            samples.len()
        );
    }

    #[test]
    fn fgsm_fools_the_model() {
        check_attack_succeeds(&Fgsm::new(0.25), 5);
    }

    #[test]
    fn pgd_fools_the_model() {
        check_attack_succeeds(&Pgd::new(0.2, 0.05, 20, 7), 6);
    }

    #[test]
    fn cw_fools_the_model() {
        check_attack_succeeds(&CarliniWagnerL2::standard(), 6);
    }

    #[test]
    fn deepfool_fools_the_model() {
        check_attack_succeeds(&DeepFool::new(30, 0.02), 6);
    }

    #[test]
    fn jsma_fools_the_model() {
        check_attack_succeeds(&Jsma::new(0.8), 4);
    }

    #[test]
    fn fgsm_respects_linf_budget() {
        let (net, samples) = trained_model();
        let eps = 0.1;
        for (x, label) in &samples {
            let adv = Fgsm::new(eps).run(&net, x, *label);
            assert!(metrics::linf(&adv, x) <= eps as f64 + 1e-6);
        }
    }

    #[test]
    fn pgd_respects_linf_budget() {
        let (net, samples) = trained_model();
        let eps = 0.15;
        for (x, label) in &samples {
            let adv = Pgd::new(eps, 0.04, 15, 3).run(&net, x, *label);
            assert!(metrics::linf(&adv, x) <= eps as f64 + 1e-6);
        }
    }

    #[test]
    fn jsma_is_sparse() {
        let (net, samples) = trained_model();
        let gamma = 0.4;
        for (x, label) in &samples {
            let adv = Jsma::new(gamma).run(&net, x, *label);
            assert!(
                metrics::l0(&adv, x) <= (x.len() as f32 * gamma) as usize + 2,
                "JSMA touched too many pixels"
            );
        }
    }

    #[test]
    fn cw_produces_smaller_l2_than_fgsm() {
        // The minimal-norm attack must beat the one-shot attack on distance,
        // among samples where both succeed.
        let (net, samples) = trained_model();
        let cw = CarliniWagnerL2::standard();
        let fgsm = Fgsm::new(0.25);
        let mut cw_total = 0.0;
        let mut fgsm_total = 0.0;
        let mut counted = 0;
        for (x, label) in &samples {
            let a = cw.run(&net, x, *label);
            let b = fgsm.run(&net, x, *label);
            if crate::TargetModel::predict(&net, &a) != *label
                && crate::TargetModel::predict(&net, &b) != *label
            {
                cw_total += metrics::l2(&a, x);
                fgsm_total += metrics::l2(&b, x);
                counted += 1;
            }
        }
        assert!(counted >= 3, "not enough joint successes");
        assert!(cw_total < fgsm_total, "C&W {cw_total} vs FGSM {fgsm_total}");
    }

    #[test]
    fn pgd_is_deterministic_in_seed() {
        let (net, samples) = trained_model();
        let (x, label) = &samples[0];
        let a = Pgd::new(0.2, 0.05, 10, 42).run(&net, x, *label);
        let b = Pgd::new(0.2, 0.05, 10, 42).run(&net, x, *label);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn fgsm_rejects_zero_eps() {
        let _ = Fgsm::new(0.0);
    }
}
