//! The black-box substitute-model pipeline (paper §5.3, Figure 6): query the
//! victim for labels, train a proxy, attack the proxy, replay on the victim.

use da_nn::optim::Adam;
use da_nn::train::{train, TrainConfig};
use da_nn::Network;
use da_tensor::Tensor;

use crate::traits::TargetModel;

/// Configuration of substitute training.
#[derive(Debug, Clone)]
pub struct SubstituteConfig {
    /// Training epochs on the victim-labeled queries.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (Adam).
    pub lr: f32,
    /// Seed for shuffling and stochastic layers.
    pub seed: u64,
}

impl Default for SubstituteConfig {
    fn default() -> Self {
        SubstituteConfig { epochs: 5, batch_size: 32, lr: 1e-3, seed: 0 }
    }
}

/// Label `queries` by the victim's decisions — the reverse-engineering step.
pub fn query_labels(victim: &dyn TargetModel, queries: &Tensor) -> Vec<usize> {
    (0..queries.shape()[0]).map(|i| victim.predict(&queries.batch_item(i))).collect()
}

/// Train `substitute` (an untrained architecture) to imitate `victim` on the
/// given query set. Returns the fraction of queries where the substitute
/// agrees with the victim after training.
pub fn train_substitute(
    substitute: &mut Network,
    victim: &dyn TargetModel,
    queries: &Tensor,
    config: &SubstituteConfig,
) -> f32 {
    let labels = query_labels(victim, queries);
    let train_config = TrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        seed: config.seed,
        verbose: false,
    };
    let report = train(substitute, queries, &labels, &train_config, &mut Adam::new(config.lr));
    report.final_accuracy
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_nn::layers::{Dense, Flatten, Relu};
    use rand::SeedableRng;

    /// Victim: a fixed linear rule (bright left half = class 0).
    struct RuleVictim;

    impl TargetModel for RuleVictim {
        fn num_classes(&self) -> usize {
            2
        }

        fn logits(&self, x: &Tensor) -> Vec<f32> {
            let mut left = 0.0;
            let mut right = 0.0;
            for y in 0..4 {
                for c in 0..2 {
                    left += x[[0, y, c]];
                    right += x[[0, y, c + 2]];
                }
            }
            vec![left - right, right - left]
        }

        fn loss_gradient(&self, _x: &Tensor, _label: usize) -> (f32, Tensor) {
            panic!("victim gradients are not available in a black-box setting");
        }

        fn class_gradient(&self, _x: &Tensor, _class: usize) -> Tensor {
            panic!("victim gradients are not available in a black-box setting");
        }
    }

    fn substitute_arch(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("substitute")
            .push(Flatten)
            .push(Dense::new(16, 32, &mut rng))
            .push(Relu)
            .push(Dense::new(32, 2, &mut rng))
    }

    #[test]
    fn substitute_learns_the_victim_decision_rule() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let queries = Tensor::rand_uniform(&[400, 1, 4, 4], 0.0, 1.0, &mut rng);
        let mut substitute = substitute_arch(2);
        let config = SubstituteConfig { epochs: 30, ..SubstituteConfig::default() };
        let agreement = train_substitute(&mut substitute, &RuleVictim, &queries, &config);
        assert!(agreement > 0.9, "substitute agreement {agreement}");
    }

    #[test]
    fn query_labels_match_victim_predictions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let queries = Tensor::rand_uniform(&[10, 1, 4, 4], 0.0, 1.0, &mut rng);
        let labels = query_labels(&RuleVictim, &queries);
        for (i, &l) in labels.iter().enumerate() {
            assert_eq!(l, RuleVictim.predict(&queries.batch_item(i)));
        }
    }

    #[test]
    fn substitute_attack_transfers_to_victim() {
        // End-to-end black-box pipeline: train proxy, FGSM on proxy, replay.
        use crate::gradient::Fgsm;
        use crate::Attack;

        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let queries = Tensor::rand_uniform(&[400, 1, 4, 4], 0.0, 1.0, &mut rng);
        let mut substitute = substitute_arch(5);
        let config = SubstituteConfig { epochs: 30, ..SubstituteConfig::default() };
        train_substitute(&mut substitute, &RuleVictim, &queries, &config);

        let attack = Fgsm::new(0.5);
        let mut transferred = 0;
        let mut attempted = 0;
        for i in 0..30 {
            let x = queries.batch_item(i);
            let label = RuleVictim.predict(&x);
            let adv = attack.run(&substitute, &x, label);
            if crate::TargetModel::predict(&substitute, &adv) != label {
                attempted += 1;
                if RuleVictim.predict(&adv) != label {
                    transferred += 1;
                }
            }
        }
        assert!(attempted >= 10, "proxy attack mostly failed ({attempted})");
        assert!(
            transferred * 2 >= attempted,
            "black-box transfer too weak: {transferred}/{attempted}"
        );
    }
}
