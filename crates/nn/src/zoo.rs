//! The paper's model architectures (§5.1 and Appendix B).
//!
//! All constructors are deterministic in the given RNG, so a seeded RNG
//! reproduces byte-identical initial weights.

use rand::Rng;

use crate::layers::{BatchNorm, Conv2d, Dense, Dropout, Flatten, MaxPool2d, QuantAct, Relu};
use crate::Network;

/// LeNet-5 for 28×28×1 inputs (paper §5.1): two convolution layers, two
/// max-pooling layers, and two fully connected layers before the classifier
/// head, with ReLU activations.
///
/// # Examples
///
/// ```
/// use da_nn::zoo::lenet5;
/// use da_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = lenet5(10, &mut rng);
/// let x = Tensor::zeros(&[1, 1, 28, 28]);
/// assert_eq!(net.logits(&x).shape(), &[1, 10]);
/// ```
pub fn lenet5<R: Rng>(num_classes: usize, rng: &mut R) -> Network {
    Network::new("lenet5")
        .push(Conv2d::new(1, 6, 5, 1, 0, rng)) // 28 -> 24
        .push(Relu)
        .push(MaxPool2d::new(2, 2)) // 24 -> 12
        .push(Conv2d::new(6, 16, 5, 1, 0, rng)) // 12 -> 8
        .push(Relu)
        .push(MaxPool2d::new(2, 2)) // 8 -> 4
        .push(Flatten) // 16·4·4 = 256
        .push(Dense::new(256, 120, rng))
        .push(Relu)
        .push(Dense::new(120, 84, rng))
        .push(Relu)
        .push(Dense::new(84, num_classes, rng))
}

/// The CIFAR-scale AlexNet of §5.1: five convolution layers, three
/// max-pooling layers, and three fully connected layers with ReLU and
/// dropout. Channel counts are scaled to the 32×32×3 input (the paper's
/// CIFAR-10 configuration); see DESIGN.md for the sizing rationale.
pub fn alexnet_cifar<R: Rng>(num_classes: usize, rng: &mut R) -> Network {
    Network::new("alexnet")
        .push(Conv2d::new(3, 16, 3, 1, 1, rng)) // 32
        .push(Relu)
        .push(MaxPool2d::new(2, 2)) // 16
        .push(Conv2d::new(16, 32, 3, 1, 1, rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2)) // 8
        .push(Conv2d::new(32, 48, 3, 1, 1, rng))
        .push(Relu)
        .push(Conv2d::new(48, 48, 3, 1, 1, rng))
        .push(Relu)
        .push(Conv2d::new(48, 32, 3, 1, 1, rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2)) // 4
        .push(Flatten) // 32·4·4 = 512
        .push(Dense::new(512, 128, rng))
        .push(Relu)
        .push(Dropout::new(0.5))
        .push(Dense::new(128, 64, rng))
        .push(Relu)
        .push(Dense::new(64, num_classes, rng))
}

/// Quantization mode of the Defensive Quantization ConvNet (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DqMode {
    /// No quantization (the float reference of Table 5).
    Float,
    /// Weights quantized only ("Weight Quantized" column).
    WeightOnly,
    /// Weights and activations quantized ("Fully Quantized" column).
    Full,
}

/// The Defensive Quantization ConvNet of Appendix B (Table 11): six
/// convolution blocks with batch normalization and three dense blocks, with
/// DoReFa quantization at `bits` per `mode`. Channel counts are scaled to
/// this reproduction's 32×32×3 synthetic CIFAR inputs.
pub fn dq_convnet<R: Rng>(num_classes: usize, mode: DqMode, bits: u32, rng: &mut R) -> Network {
    let name = match mode {
        DqMode::Float => "dq-float".to_string(),
        DqMode::WeightOnly => format!("dq-weight{bits}"),
        DqMode::Full => format!("dq-full{bits}"),
    };
    let qw = |c: Conv2d| -> Conv2d {
        match mode {
            DqMode::Float => c,
            _ => c.with_weight_bits(bits),
        }
    };
    let qd = |d: Dense| -> Dense {
        match mode {
            DqMode::Float => d,
            _ => d.with_weight_bits(bits),
        }
    };

    let mut net = Network::new(name);
    // Block 1: conv, BN, act — then conv, pool, BN, act (Table 11 order).
    net = net.push(qw(Conv2d::new(3, 16, 3, 1, 1, rng))).push(BatchNorm::new(16));
    net = push_act(net, mode, bits);
    net = net
        .push(qw(Conv2d::new(16, 16, 3, 1, 1, rng)))
        .push(MaxPool2d::new(2, 2)) // 16
        .push(BatchNorm::new(16));
    net = push_act(net, mode, bits);
    // Block 2.
    net = net.push(qw(Conv2d::new(16, 32, 3, 1, 1, rng))).push(BatchNorm::new(32));
    net = push_act(net, mode, bits);
    net = net
        .push(qw(Conv2d::new(32, 32, 3, 1, 1, rng)))
        .push(MaxPool2d::new(2, 2)) // 8
        .push(BatchNorm::new(32));
    net = push_act(net, mode, bits);
    // Block 3.
    net = net.push(qw(Conv2d::new(32, 48, 3, 1, 1, rng))).push(BatchNorm::new(48));
    net = push_act(net, mode, bits);
    net = net
        .push(qw(Conv2d::new(48, 48, 3, 1, 1, rng)))
        .push(MaxPool2d::new(2, 2)) // 4
        .push(BatchNorm::new(48));
    net = push_act(net, mode, bits);
    // Dense blocks.
    net = net
        .push(Flatten) // 48·4·4 = 768
        .push(qd(Dense::new(768, 128, rng)))
        .push(BatchNorm::new(128));
    net = push_act(net, mode, bits);
    net = net.push(qd(Dense::new(128, 64, rng))).push(BatchNorm::new(64));
    net = push_act(net, mode, bits);
    net.push(Dense::new(64, num_classes, rng))
}

/// Activation: quantized ReLU for [`DqMode::Full`], plain ReLU otherwise.
fn push_act(net: Network, mode: DqMode, bits: u32) -> Network {
    match mode {
        DqMode::Full => net.push(Relu).push(QuantAct::new(bits)),
        _ => net.push(Relu),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_tensor::Tensor;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn lenet5_shapes_and_depth() {
        let mut rng = rng(1);
        let net = lenet5(10, &mut rng);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        assert_eq!(net.logits(&x).shape(), &[2, 10]);
        // 2 conv + 2 pool + 2 hidden dense + classifier + activations + flatten.
        assert_eq!(net.depth(), 12);
    }

    #[test]
    fn alexnet_has_five_convs_three_pools_three_dense() {
        let mut rng = rng(2);
        let net = alexnet_cifar(10, &mut rng);
        let names = net.layer_names();
        assert_eq!(names.iter().filter(|n| **n == "conv2d").count(), 5);
        assert_eq!(names.iter().filter(|n| **n == "maxpool2d").count(), 3);
        assert_eq!(names.iter().filter(|n| **n == "dense").count(), 3);
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        assert_eq!(net.logits(&x).shape(), &[1, 10]);
    }

    #[test]
    fn dq_variants_forward_and_differ() {
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        for mode in [DqMode::Float, DqMode::WeightOnly, DqMode::Full] {
            let mut r = rng(3);
            let net = dq_convnet(10, mode, 4, &mut r);
            assert_eq!(net.logits(&x).shape(), &[1, 10], "{mode:?}");
        }
        // Same seed, different modes: weight quantization changes outputs.
        let mut r1 = rng(4);
        let mut r2 = rng(4);
        let float = dq_convnet(10, DqMode::Float, 4, &mut r1);
        let quant = dq_convnet(10, DqMode::WeightOnly, 4, &mut r2);
        let mut rx = rng(5);
        let x = Tensor::randn(&[1, 3, 32, 32], 1.0, &mut rx);
        assert_ne!(float.logits(&x), quant.logits(&x));
    }

    #[test]
    fn dq_full_contains_quantized_activations() {
        let mut r = rng(6);
        let net = dq_convnet(10, DqMode::Full, 4, &mut r);
        assert!(net.layer_names().contains(&"quant-act"));
        let mut r = rng(6);
        let net = dq_convnet(10, DqMode::WeightOnly, 4, &mut r);
        assert!(!net.layer_names().contains(&"quant-act"));
    }

    #[test]
    fn constructors_are_deterministic_in_seed() {
        let mut a = rng(7);
        let mut b = rng(7);
        let na = lenet5(10, &mut a);
        let nb = lenet5(10, &mut b);
        let x = Tensor::randn(&[1, 1, 28, 28], 1.0, &mut rng(8));
        assert_eq!(na.logits(&x), nb.logits(&x));
    }
}
