//! Wire framing and message codec for the serving protocol.
//!
//! # Frame layout
//!
//! Every frame on the wire is a `u32` little-endian length prefix followed
//! by that many payload bytes. The prefix counts the payload only — not
//! itself — and must be at least 1 (the opcode) and at most the
//! connection's frame limit ([`DEFAULT_MAX_FRAME`] unless configured).
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 LE    | payload: len bytes        |
//! +----------------+---------------------------+
//!                    ^ payload[0] = opcode
//! ```
//!
//! # Payloads
//!
//! All integers are little-endian; floats are IEEE-754 `f32` bit patterns.
//! Request opcodes have the high bit clear, replies have it set.
//!
//! | opcode | message      | body |
//! |--------|--------------|------|
//! | `0x01` | INFER        | `req_id: u64`, `deadline_us: u32`, `rank: u8`, `rank × dim: u32`, `prod(dims) × f32` |
//! | `0x02` | PING         | empty |
//! | `0x03` | STATS        | empty |
//! | `0x04` | SHUTDOWN     | empty |
//! | `0x05` | RELOAD       | `path_len: u16`, `path_len` UTF-8 bytes |
//! | `0x81` | INFER_OK     | `req_id: u64`, `flags: u8`, `rank: u8`, `rank × dim: u32`, `prod(dims) × f32` |
//! | `0x82` | INFER_ERR    | `req_id: u64`, `code: u8`, `retry_after_us: u32`, `msg_len: u16`, `msg_len` UTF-8 bytes |
//! | `0x83` | PONG         | empty |
//! | `0x84` | STATS_REPLY  | `count: u16`, `count × counter: u64` (see [`stats`]) |
//! | `0x85` | SHUTDOWN_ACK | empty |
//! | `0x86` | RELOAD_REPLY | `ok: u8`, `generation: u64`, `msg_len: u16`, `msg_len` UTF-8 bytes |
//!
//! An INFER's dims describe **one sample** (no batch axis — the server owns
//! batching); `req_id` is an opaque caller token echoed in the matching
//! reply, letting clients pipeline requests and match replies out of order.
//! A reply is exactly one of INFER_OK / INFER_ERR per INFER, in completion
//! order, not submission order. `deadline_us` is the request's time budget
//! in microseconds measured from server admission, `0` meaning "use the
//! server's default"; a request the server cannot execute inside its budget
//! is shed with [`ErrCode::DeadlineExceeded`] instead of running late.
//!
//! INFER_OK's `flags` byte carries per-reply serving metadata: bit 0 set
//! means the reply was computed by the server's *degraded* (brownout)
//! fallback plan rather than the primary. Unknown flag bits are reserved
//! and must be ignored by clients. INFER_ERR's `retry_after_us` is the
//! server's backlog-clearance hint for [`ErrCode::Overloaded`]-family
//! sheds — how long (µs) a well-behaved client should wait before
//! retrying; `0` means "no hint". STATS_REPLY is a length-prefixed
//! counter list so servers can append counters without breaking older
//! clients: indices are fixed forever (see [`stats`]), readers ignore
//! counters past the ones they know and zero-fill counters the server
//! has not sent.
//!
//! RELOAD asks the server to hot-swap its plan snapshot: an empty `path`
//! means "re-map the snapshot the server was started from", a non-empty
//! path names the replacement `.daplan`. The reply carries `ok` (1 = the
//! swap happened), the now-current plan generation, and a diagnostic
//! message on failure — a rejected reload (corrupt or unreadable
//! replacement) leaves the previous plans serving.
//!
//! # Hostile-input posture
//!
//! [`decode`] never trusts a length it has not bounded: rank is capped at
//! [`MAX_RANK`], the element count is recomputed with checked arithmetic,
//! and every field's extent is validated against the actual payload size
//! *before* any allocation — the same discipline as the snapshot reader.
//! Trailing bytes after a well-formed body are a protocol error, so a
//! corrupted length prefix cannot silently mis-frame the stream.

use std::collections::VecDeque;

/// Default per-connection frame ceiling: 16 MiB, comfortably above any
/// single-sample tensor this workspace serves while keeping one hostile
/// length prefix from reserving unbounded memory.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Maximum tensor rank a frame may carry (matches the tensor crate's
/// practical ceiling; serving uses rank ≤ 4).
pub const MAX_RANK: usize = 8;

/// Upper bound on the STATS_REPLY counter count — far above anything the
/// server emits, low enough that a hostile prefix cannot reserve memory.
pub const MAX_STATS_COUNTERS: usize = 256;

/// Fixed counter indices for the STATS_REPLY list. Positions are
/// append-only wire ABI: new counters take the next index, existing ones
/// never move, so an old client reading a new server simply ignores the
/// tail (and a new client reading an old server zero-fills it).
pub mod stats {
    /// Batches dispatched to workers.
    pub const BATCHES: usize = 0;
    /// Items served across all batches.
    pub const ITEMS: usize = 1;
    /// Current adaptive flush deadline, nanoseconds.
    pub const FLUSH_DEADLINE_NS: usize = 2;
    /// Worker panics survived by respawn.
    pub const WORKER_RESTARTS: usize = 3;
    /// Requests shed because their deadline passed before execution.
    pub const DEADLINE_EXPIRED: usize = 4;
    /// Plan generation (bumps on every successful hot reload).
    pub const GENERATION: usize = 5;
    /// Requests shed by admission-time overload control.
    pub const SHED_TOTAL: usize = 6;
    /// Items answered by the degraded (brownout) fallback plan.
    pub const DEGRADED_TOTAL: usize = 7;
    /// Requests refused by the token-bucket rate limiter.
    pub const RATE_LIMITED: usize = 8;
    /// EWMA of per-item service time, nanoseconds (0 until warmed up).
    pub const EWMA_SERVICE_NS: usize = 9;
    /// Hot reloads rejected (corrupt, unreadable, or shape-incompatible).
    pub const RELOADS_REJECTED: usize = 10;
    /// Number of counters the current server emits.
    pub const COUNT: usize = 11;
}

/// Why a frame or payload was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Length prefix exceeds the connection's frame limit.
    Oversized { len: usize, max: usize },
    /// Length prefix was zero — a frame must at least carry an opcode.
    Empty,
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// The body does not match the opcode's layout (truncated field,
    /// trailing bytes, rank/dims out of bounds, bad UTF-8 …).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit of {max}")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Machine-readable failure category carried by INFER_ERR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// Server overloaded and the request was shed (clients may retry).
    Overloaded = 1,
    /// Server is draining; no new work is accepted.
    ShuttingDown = 2,
    /// The plan rejected the request (e.g. shape mismatch with the model).
    Execution = 3,
    /// The client violated the wire protocol; the connection closes after
    /// this reply.
    Protocol = 4,
    /// The request's deadline passed before it could execute; it was shed
    /// without running (retrying with a larger budget may succeed).
    DeadlineExceeded = 5,
}

impl ErrCode {
    fn from_u8(v: u8) -> Option<ErrCode> {
        match v {
            1 => Some(ErrCode::Overloaded),
            2 => Some(ErrCode::ShuttingDown),
            3 => Some(ErrCode::Execution),
            4 => Some(ErrCode::Protocol),
            5 => Some(ErrCode::DeadlineExceeded),
            _ => None,
        }
    }
}

/// A decoded protocol message (request or reply).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Run one sample through the model. `deadline_us` is the request's
    /// time budget in microseconds from admission (`0` = server default).
    Infer { req_id: u64, deadline_us: u32, shape: Vec<usize>, data: Vec<f32> },
    /// Liveness probe.
    Ping,
    /// Ask for serving statistics.
    Stats,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,
    /// Hot-swap the served plan snapshot (empty `path` = the snapshot the
    /// server was started from).
    Reload { path: String },
    /// Logits for the matching `Infer`. `degraded` is set when the reply
    /// was computed by the server's brownout fallback plan.
    InferOk { req_id: u64, degraded: bool, shape: Vec<usize>, data: Vec<f32> },
    /// The matching `Infer` failed; `req_id` 0 marks connection-level
    /// protocol errors that have no request to blame. `retry_after_us` is
    /// the server's retry hint for overload sheds (`0` = no hint).
    InferErr { req_id: u64, code: ErrCode, retry_after_us: u32, msg: String },
    /// Reply to `Ping`.
    Pong,
    /// Reply to `Stats`: the counter list, indexed per [`stats`].
    StatsReply { counters: Vec<u64> },
    /// Reply to `Shutdown`: drain has begun.
    ShutdownAck,
    /// Reply to `Reload`: whether the swap happened, the now-current plan
    /// generation, and a diagnostic message when it did not.
    ReloadReply { ok: bool, generation: u64, msg: String },
}

const OP_INFER: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_RELOAD: u8 = 0x05;
const OP_INFER_OK: u8 = 0x81;
const OP_INFER_ERR: u8 = 0x82;
const OP_PONG: u8 = 0x83;
const OP_STATS_REPLY: u8 = 0x84;
const OP_SHUTDOWN_ACK: u8 = 0x85;
const OP_RELOAD_REPLY: u8 = 0x86;

/// INFER_OK `flags` bit 0: reply served by the degraded fallback plan.
const FLAG_DEGRADED: u8 = 0x01;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn put_tensor_body(out: &mut Vec<u8>, shape: &[usize], data: &[f32]) {
    assert!(shape.len() <= MAX_RANK, "tensor rank {} exceeds wire limit", shape.len());
    out.push(shape.len() as u8);
    for &d in shape {
        let d = u32::try_from(d).expect("dimension fits the wire format");
        out.extend_from_slice(&d.to_le_bytes());
    }
    debug_assert_eq!(shape.iter().product::<usize>(), data.len());
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encode a message as a complete frame (length prefix included).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    match msg {
        Message::Infer { req_id, deadline_us, shape, data } => {
            payload.push(OP_INFER);
            payload.extend_from_slice(&req_id.to_le_bytes());
            payload.extend_from_slice(&deadline_us.to_le_bytes());
            put_tensor_body(&mut payload, shape, data);
        }
        Message::InferOk { req_id, degraded, shape, data } => {
            payload.push(OP_INFER_OK);
            payload.extend_from_slice(&req_id.to_le_bytes());
            payload.push(u8::from(*degraded) & FLAG_DEGRADED);
            put_tensor_body(&mut payload, shape, data);
        }
        Message::InferErr { req_id, code, retry_after_us, msg } => {
            payload.push(OP_INFER_ERR);
            payload.extend_from_slice(&req_id.to_le_bytes());
            payload.push(*code as u8);
            payload.extend_from_slice(&retry_after_us.to_le_bytes());
            put_str(&mut payload, msg);
        }
        Message::Ping => payload.push(OP_PING),
        Message::Pong => payload.push(OP_PONG),
        Message::Stats => payload.push(OP_STATS),
        Message::StatsReply { counters } => {
            assert!(counters.len() <= MAX_STATS_COUNTERS, "stats counter list too long");
            payload.push(OP_STATS_REPLY);
            payload.extend_from_slice(&(counters.len() as u16).to_le_bytes());
            for &c in counters {
                payload.extend_from_slice(&c.to_le_bytes());
            }
        }
        Message::Shutdown => payload.push(OP_SHUTDOWN),
        Message::ShutdownAck => payload.push(OP_SHUTDOWN_ACK),
        Message::Reload { path } => {
            payload.push(OP_RELOAD);
            put_str(&mut payload, path);
        }
        Message::ReloadReply { ok, generation, msg } => {
            payload.push(OP_RELOAD_REPLY);
            payload.push(u8::from(*ok));
            payload.extend_from_slice(&generation.to_le_bytes());
            put_str(&mut payload, msg);
        }
    }
    // A silent `as u32` here would mis-frame the stream for any payload of
    // 4 GiB or more; failing loudly is the only safe option on a protocol
    // whose prefix cannot represent the length.
    let len = u32::try_from(payload.len()).expect("frame payload exceeds the u32 length prefix");
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Bounds-checked little-endian reader over a payload (the snapshot
/// reader's `MetaCursor`, specialised to the wire format).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FrameError::Malformed("truncated field"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Length-prefixed UTF-8 string (`len: u16`, `len` bytes).
    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        Ok(std::str::from_utf8(bytes)
            .map_err(|_| FrameError::Malformed("string is not UTF-8"))?
            .to_string())
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after body"))
        }
    }

    /// Tensor body: rank, dims, floats. Every extent is validated against
    /// the bytes actually present before the data vector is allocated.
    fn tensor(&mut self) -> Result<(Vec<usize>, Vec<f32>), FrameError> {
        let rank = self.u8()? as usize;
        if rank > MAX_RANK {
            return Err(FrameError::Malformed("rank exceeds limit"));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut elems: usize = 1;
        for _ in 0..rank {
            let d = self.u32()? as usize;
            elems = elems.checked_mul(d).ok_or(FrameError::Malformed("dims overflow"))?;
            shape.push(d);
        }
        // The remaining bytes must be exactly elems f32s — checked before
        // allocating, so a huge claimed dim on a short payload costs
        // nothing.
        let remaining = self.buf.len() - self.pos;
        if remaining != elems.checked_mul(4).ok_or(FrameError::Malformed("dims overflow"))? {
            return Err(FrameError::Malformed("data length mismatches dims"));
        }
        let bytes = self.take(remaining)?;
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok((shape, data))
    }
}

/// Decode one frame payload (everything after the length prefix).
pub fn decode(payload: &[u8]) -> Result<Message, FrameError> {
    if payload.is_empty() {
        return Err(FrameError::Empty);
    }
    let mut c = Cursor { buf: payload, pos: 1 };
    let msg = match payload[0] {
        OP_INFER => {
            let req_id = c.u64()?;
            let deadline_us = c.u32()?;
            let (shape, data) = c.tensor()?;
            Message::Infer { req_id, deadline_us, shape, data }
        }
        OP_INFER_OK => {
            let req_id = c.u64()?;
            // Unknown flag bits are reserved-and-ignored so a newer server
            // can annotate replies without breaking this client.
            let flags = c.u8()?;
            let (shape, data) = c.tensor()?;
            Message::InferOk { req_id, degraded: flags & FLAG_DEGRADED != 0, shape, data }
        }
        OP_INFER_ERR => {
            let req_id = c.u64()?;
            let code =
                ErrCode::from_u8(c.u8()?).ok_or(FrameError::Malformed("unknown error code"))?;
            let retry_after_us = c.u32()?;
            let msg = c.string()?;
            Message::InferErr { req_id, code, retry_after_us, msg }
        }
        OP_PING => Message::Ping,
        OP_PONG => Message::Pong,
        OP_STATS => Message::Stats,
        OP_STATS_REPLY => {
            let count = c.u16()? as usize;
            if count > MAX_STATS_COUNTERS {
                return Err(FrameError::Malformed("stats counter count exceeds limit"));
            }
            // Validate the full extent before allocating: count × 8 bytes
            // must be exactly what remains.
            if c.buf.len() - c.pos != count * 8 {
                return Err(FrameError::Malformed("stats counter list length mismatch"));
            }
            let mut counters = Vec::with_capacity(count);
            for _ in 0..count {
                counters.push(c.u64()?);
            }
            Message::StatsReply { counters }
        }
        OP_SHUTDOWN => Message::Shutdown,
        OP_SHUTDOWN_ACK => Message::ShutdownAck,
        OP_RELOAD => Message::Reload { path: c.string()? },
        OP_RELOAD_REPLY => {
            let ok = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed("reload ok flag out of range")),
            };
            let generation = c.u64()?;
            let msg = c.string()?;
            Message::ReloadReply { ok, generation, msg }
        }
        op => return Err(FrameError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(msg)
}

/// Incremental frame extractor for a non-blocking byte stream.
///
/// Feed whatever `read` returned with [`push`](FrameDecoder::push); pull
/// complete payloads with [`next_payload`](FrameDecoder::next_payload). A
/// partial prefix or partial body simply yields `None` until more bytes
/// arrive — the reactor's answer to short reads. An oversized length
/// prefix is reported *immediately*, before the body arrives, so a hostile
/// prefix cannot make the server buffer toward a limit it will never
/// accept.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
    /// Parsed-but-unconsumed body length, once the prefix is complete.
    pending_len: Option<usize>,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet returned as a payload.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extract the next complete payload, if the buffer holds one.
    ///
    /// `max_frame` bounds the length prefix; violations are sticky in the
    /// sense that the caller is expected to close the connection (the
    /// decoder does not resynchronise — there is no framing to recover on
    /// a length-prefixed stream with a corrupt prefix).
    pub fn next_payload(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
        let len = match self.pending_len {
            Some(len) => len,
            None => {
                if self.buf.len() < 4 {
                    return Ok(None);
                }
                let mut prefix = [0u8; 4];
                for (i, slot) in prefix.iter_mut().enumerate() {
                    *slot = self.buf[i];
                }
                let len = u32::from_le_bytes(prefix) as usize;
                if len == 0 {
                    return Err(FrameError::Empty);
                }
                if len > max_frame {
                    return Err(FrameError::Oversized { len, max: max_frame });
                }
                self.buf.drain(..4);
                self.pending_len = Some(len);
                len
            }
        };
        if self.buf.len() < len {
            return Ok(None);
        }
        self.pending_len = None;
        Ok(Some(self.buf.drain(..len).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let frame = encode(&msg);
        let (prefix, payload) = frame.split_at(4);
        let len = u32::from_le_bytes(prefix.try_into().expect("prefix")) as usize;
        assert_eq!(len, payload.len());
        assert_eq!(decode(payload).expect("decodes"), msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Infer {
            req_id: 7,
            deadline_us: 0,
            shape: vec![1, 8, 8],
            data: (0..64).map(|i| i as f32 * 0.5).collect(),
        });
        round_trip(Message::Infer {
            req_id: 8,
            deadline_us: u32::MAX,
            shape: vec![2],
            data: vec![1.0, 2.0],
        });
        round_trip(Message::InferOk {
            req_id: u64::MAX,
            degraded: false,
            shape: vec![10],
            data: vec![0.0; 10],
        });
        round_trip(Message::InferOk {
            req_id: 9,
            degraded: true,
            shape: vec![2],
            data: vec![1.5, -2.5],
        });
        round_trip(Message::InferErr {
            req_id: 3,
            code: ErrCode::Execution,
            retry_after_us: 0,
            msg: "shape mismatch".into(),
        });
        round_trip(Message::InferErr {
            req_id: 4,
            code: ErrCode::DeadlineExceeded,
            retry_after_us: 0,
            msg: "deadline exceeded".into(),
        });
        round_trip(Message::InferErr {
            req_id: 5,
            code: ErrCode::Overloaded,
            retry_after_us: 12_500,
            msg: "queue would blow the deadline".into(),
        });
        round_trip(Message::Ping);
        round_trip(Message::Pong);
        round_trip(Message::Stats);
        round_trip(Message::StatsReply { counters: vec![] });
        round_trip(Message::StatsReply { counters: vec![1, 9, 250_000, 2, 3, 4] });
        round_trip(Message::StatsReply { counters: (0..stats::COUNT as u64).collect() });
        round_trip(Message::Shutdown);
        round_trip(Message::ShutdownAck);
        round_trip(Message::Reload { path: String::new() });
        round_trip(Message::Reload { path: "/tmp/replacement.daplan".into() });
        round_trip(Message::ReloadReply { ok: true, generation: 5, msg: String::new() });
        round_trip(Message::ReloadReply {
            ok: false,
            generation: 2,
            msg: "checksum mismatch".into(),
        });
    }

    #[test]
    fn scalar_tensor_round_trips() {
        // Rank 0: product of no dims is 1 element.
        round_trip(Message::Infer { req_id: 1, deadline_us: 0, shape: vec![], data: vec![4.25] });
    }

    #[test]
    fn hostile_reload_frames_are_rejected() {
        // ok flag out of range.
        let mut p = vec![OP_RELOAD_REPLY];
        p.push(2);
        p.extend_from_slice(&0_u64.to_le_bytes());
        p.extend_from_slice(&0_u16.to_le_bytes());
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Path length prefix longer than the payload.
        let mut p = vec![OP_RELOAD];
        p.extend_from_slice(&64_u16.to_le_bytes());
        p.push(b'x');
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Non-UTF-8 path.
        let mut p = vec![OP_RELOAD];
        p.extend_from_slice(&2_u16.to_le_bytes());
        p.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn unknown_infer_ok_flag_bits_are_ignored() {
        // A newer server setting reserved flag bits must not break this
        // decoder — bit 0 is read, the rest are ignored.
        let frame = encode(&Message::InferOk {
            req_id: 11,
            degraded: false,
            shape: vec![1],
            data: vec![3.0],
        });
        let mut payload = frame[4..].to_vec();
        payload[9] = 0xfe; // flags byte: every reserved bit set, bit 0 clear
        match decode(&payload).expect("decodes despite reserved flags") {
            Message::InferOk { req_id, degraded, .. } => {
                assert_eq!(req_id, 11);
                assert!(!degraded);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn stats_reply_tolerates_counters_this_build_does_not_know() {
        // Forward compatibility: a server two versions ahead sends more
        // counters than `stats::COUNT`; the decode must still succeed.
        let future = Message::StatsReply { counters: (0..stats::COUNT as u64 + 7).collect() };
        round_trip(future);
    }

    #[test]
    fn hostile_stats_replies_are_rejected() {
        // Counter count larger than the payload actually carries.
        let mut p = vec![OP_STATS_REPLY];
        p.extend_from_slice(&4_u16.to_le_bytes());
        p.extend_from_slice(&7_u64.to_le_bytes());
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Count over the hard cap is rejected before any allocation.
        let mut p = vec![OP_STATS_REPLY];
        p.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Trailing bytes beyond the declared counters.
        let mut p = vec![OP_STATS_REPLY];
        p.extend_from_slice(&1_u16.to_le_bytes());
        p.extend_from_slice(&7_u64.to_le_bytes());
        p.push(0xaa);
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn nonfinite_floats_survive_the_wire_bit_for_bit() {
        let data = vec![f32::NAN, f32::INFINITY, -0.0, f32::MIN_POSITIVE];
        let frame = encode(&Message::InferOk {
            req_id: 2,
            degraded: false,
            shape: vec![4],
            data: data.clone(),
        });
        match decode(&frame[4..]).expect("decodes") {
            Message::InferOk { data: got, .. } => {
                let want: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
                let have: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                assert_eq!(want, have);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let msg = Message::Infer {
            req_id: 42,
            deadline_us: 1_000,
            shape: vec![2, 3],
            data: vec![1.0; 6],
        };
        let frame = encode(&msg);
        let mut dec = FrameDecoder::new();
        for (i, b) in frame.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_payload(DEFAULT_MAX_FRAME).expect("no error");
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                let payload = got.expect("complete at last byte");
                assert_eq!(decode(&payload).expect("decodes"), msg);
            }
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_extracts_back_to_back_frames_from_one_read() {
        let a = encode(&Message::Ping);
        let b = encode(&Message::Stats);
        let mut dec = FrameDecoder::new();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        dec.push(&joined);
        let p1 = dec.next_payload(DEFAULT_MAX_FRAME).expect("ok").expect("first");
        let p2 = dec.next_payload(DEFAULT_MAX_FRAME).expect("ok").expect("second");
        assert_eq!(decode(&p1).expect("decodes"), Message::Ping);
        assert_eq!(decode(&p2).expect("decodes"), Message::Stats);
        assert!(dec.next_payload(DEFAULT_MAX_FRAME).expect("ok").is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_the_body_arrives() {
        let mut dec = FrameDecoder::new();
        dec.push(&(1_u32 << 30).to_le_bytes());
        match dec.next_payload(DEFAULT_MAX_FRAME) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, 1 << 30);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&0_u32.to_le_bytes());
        assert_eq!(dec.next_payload(DEFAULT_MAX_FRAME), Err(FrameError::Empty));
    }

    #[test]
    fn hostile_payloads_are_rejected_without_allocation_or_panic() {
        // Claimed rank exceeds the limit.
        let mut p = vec![OP_INFER];
        p.extend_from_slice(&1_u64.to_le_bytes());
        p.extend_from_slice(&0_u32.to_le_bytes()); // deadline_us
        p.push(9);
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Huge dim on a short payload: checked_mul + length comparison
        // rejects before any data vector exists.
        let mut p = vec![OP_INFER];
        p.extend_from_slice(&1_u64.to_le_bytes());
        p.extend_from_slice(&0_u32.to_le_bytes()); // deadline_us
        p.push(2);
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Truncated: rank says 2 dims but only one is present.
        let mut p = vec![OP_INFER];
        p.extend_from_slice(&1_u64.to_le_bytes());
        p.extend_from_slice(&0_u32.to_le_bytes()); // deadline_us
        p.push(2);
        p.extend_from_slice(&4_u32.to_le_bytes());
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Trailing garbage after a well-formed PING body.
        assert!(matches!(decode(&[OP_PING, 0xff]), Err(FrameError::Malformed(_))));

        // Unknown opcode.
        assert!(matches!(decode(&[0x7f]), Err(FrameError::UnknownOpcode(0x7f))));

        // Error message that is not UTF-8.
        let mut p = vec![OP_INFER_ERR];
        p.extend_from_slice(&1_u64.to_le_bytes());
        p.push(ErrCode::Protocol as u8);
        p.extend_from_slice(&0_u32.to_le_bytes()); // retry_after_us
        p.extend_from_slice(&2_u16.to_le_bytes());
        p.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));

        // Data length disagrees with dims.
        let mut p = vec![OP_INFER];
        p.extend_from_slice(&1_u64.to_le_bytes());
        p.extend_from_slice(&0_u32.to_le_bytes()); // deadline_us
        p.push(1);
        p.extend_from_slice(&2_u32.to_le_bytes());
        p.extend_from_slice(&1.0_f32.to_le_bytes()); // dims say 2 floats
        assert!(matches!(decode(&p), Err(FrameError::Malformed(_))));
    }
}
