//! A small blocking client for the serving protocol.
//!
//! This is the reference peer for [`crate::net::server`]: tests, the
//! loopback load generator, and operational tooling all speak through it.
//! It is deliberately synchronous — one `TcpStream`, blocking reads — but
//! supports pipelining: [`send_infer`](Client::send_infer) queues a request
//! without waiting, [`recv_reply`](Client::recv_reply) blocks for the next
//! reply frame, and callers match them by `req_id` (replies arrive in
//! completion order, not submission order).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::net::frame::{self, ErrCode, FrameDecoder, Message, DEFAULT_MAX_FRAME};

/// One reply to an `INFER`: logits on success, `(code, message)` on
/// failure.
pub type InferResult = Result<(Vec<usize>, Vec<f32>), (ErrCode, String)>;

/// Blocking protocol client (see module docs).
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    /// Frame ceiling applied to *replies*; mirrors the server default.
    pub max_frame: usize,
}

impl Client {
    /// Connect with Nagle disabled (single-request latency matters more
    /// than syscall counts here).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Bound how long [`recv_reply`](Client::recv_reply) may block.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Direct access to the underlying stream (tests use this to simulate
    /// abrupt disconnects and half-written frames).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Send any message as one frame.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.stream.write_all(&frame::encode(msg))
    }

    /// Block until one complete reply frame arrives and decode it.
    pub fn recv_reply(&mut self) -> io::Result<Message> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.decoder.next_payload(self.max_frame) {
                Ok(Some(payload)) => {
                    return frame::decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.decoder.push(&buf[..n]);
        }
    }

    /// Queue an `INFER` without waiting; returns the request id to match
    /// against [`recv_reply`](Client::recv_reply).
    pub fn send_infer(&mut self, shape: &[usize], data: &[f32]) -> io::Result<u64> {
        let req_id = self.next_id;
        self.next_id += 1;
        self.send(&Message::Infer { req_id, shape: shape.to_vec(), data: data.to_vec() })?;
        Ok(req_id)
    }

    /// One synchronous inference round trip.
    pub fn infer(&mut self, shape: &[usize], data: &[f32]) -> io::Result<InferResult> {
        let want = self.send_infer(shape, data)?;
        match self.recv_reply()? {
            Message::InferOk { req_id, shape, data } if req_id == want => Ok(Ok((shape, data))),
            Message::InferErr { req_id, code, msg } if req_id == want => Ok(Err((code, msg))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to synchronous infer: {other:?}"),
            )),
        }
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Message::Ping)?;
        match self.recv_reply()? {
            Message::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Fetch serving counters: `(batches, items, flush_deadline_ns)`.
    pub fn stats(&mut self) -> io::Result<(u64, u64, u64)> {
        self.send(&Message::Stats)?;
        match self.recv_reply()? {
            Message::StatsReply { batches, items, flush_deadline_ns } => {
                Ok((batches, items, flush_deadline_ns))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS_REPLY, got {other:?}"),
            )),
        }
    }

    /// Ask the server to drain and exit; returns once the drain is
    /// acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Message::Shutdown)?;
        match self.recv_reply()? {
            Message::ShutdownAck => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected SHUTDOWN_ACK, got {other:?}"),
            )),
        }
    }
}
