//! A small blocking client for the serving protocol.
//!
//! This is the reference peer for [`crate::net::server`]: tests, the
//! loopback load generator, and operational tooling all speak through it.
//! It is deliberately synchronous — one `TcpStream`, blocking reads — but
//! supports pipelining: [`send_infer`](Client::send_infer) queues a request
//! without waiting, [`recv_reply`](Client::recv_reply) blocks for the next
//! reply frame, and callers match them by `req_id` (replies arrive in
//! completion order, not submission order).
//!
//! [`Client`] is a thin, transparent wire peer: one connect, errors
//! surface as-is. [`RobustClient`] layers operational hardening on top —
//! reconnect with exponential backoff plus jitter, a per-call overall
//! deadline, and transparent retry of *idempotent* requests (`INFER`,
//! `PING`, `STATS` — inference is a pure function of the plan, so
//! resending after an ambiguous failure at worst recomputes). Non-idempotent
//! traffic (`RELOAD`, `SHUTDOWN`) is never silently resent. An
//! `Overloaded` refusal carrying a server retry hint is retried after
//! waiting out exactly that hint (capped by the call budget) instead of
//! the generic backoff curve — the server knows its backlog, the curve
//! does not.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};

use crate::net::frame::{self, stats, ErrCode, FrameDecoder, Message, DEFAULT_MAX_FRAME};

/// A successful `INFER` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct InferReply {
    /// Logit tensor shape.
    pub shape: Vec<usize>,
    /// Logit values, bit-identical to a serial run of the serving plan.
    pub data: Vec<f32>,
    /// Served by the brownout fallback plan rather than the primary.
    pub degraded: bool,
}

/// A typed refusal: the server answered, with an error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InferRefusal {
    /// Wire error code.
    pub code: ErrCode,
    /// Human-readable detail.
    pub msg: String,
    /// Server's estimate of when retrying could succeed (shed and
    /// rate-limit replies); `None` when the server sent no hint.
    pub retry_after: Option<Duration>,
}

/// One reply to an `INFER`: logits on success, a typed refusal otherwise.
pub type InferResult = Result<InferReply, InferRefusal>;

/// Snapshot of the server's lifetime counters ([`Client::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Individual requests served.
    pub items: u64,
    /// Flushes forced by the latency deadline rather than a full batch.
    pub flush_deadline_ns: u64,
    /// Worker panics caught and recovered from.
    pub worker_restarts: u64,
    /// Requests shed because their deadline passed before execution.
    pub deadline_expired: u64,
    /// Plan generation: bumped by every successful hot reload.
    pub generation: u64,
    /// Requests shed by overload control (estimate-shed + shed-oldest).
    pub shed_total: u64,
    /// Requests served by the brownout fallback plan.
    pub degraded_total: u64,
    /// Requests refused by a token bucket before reaching the queue.
    pub rate_limited: u64,
    /// EWMA of per-item service time, nanoseconds (0 until warm).
    pub ewma_service_ns: u64,
    /// Plan reloads rejected with the old plan left serving.
    pub reloads_rejected: u64,
}

impl ServerStats {
    /// Decode the fixed-index counter list from a `STATS_REPLY` (see
    /// [`stats`]). Forward- and backward-compatible by construction: a
    /// counter the server predates reads as 0, and unknown tail counters
    /// from a newer server are ignored.
    pub fn from_counters(counters: &[u64]) -> ServerStats {
        let g = |i: usize| counters.get(i).copied().unwrap_or(0);
        ServerStats {
            batches: g(stats::BATCHES),
            items: g(stats::ITEMS),
            flush_deadline_ns: g(stats::FLUSH_DEADLINE_NS),
            worker_restarts: g(stats::WORKER_RESTARTS),
            deadline_expired: g(stats::DEADLINE_EXPIRED),
            generation: g(stats::GENERATION),
            shed_total: g(stats::SHED_TOTAL),
            degraded_total: g(stats::DEGRADED_TOTAL),
            rate_limited: g(stats::RATE_LIMITED),
            ewma_service_ns: g(stats::EWMA_SERVICE_NS),
            reloads_rejected: g(stats::RELOADS_REJECTED),
        }
    }
}

/// Blocking protocol client (see module docs).
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    /// Frame ceiling applied to *replies*; mirrors the server default.
    pub max_frame: usize,
}

impl Client {
    /// Connect with Nagle disabled (single-request latency matters more
    /// than syscall counts here).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Bound how long [`recv_reply`](Client::recv_reply) may block.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Direct access to the underlying stream (tests use this to simulate
    /// abrupt disconnects and half-written frames).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Send any message as one frame.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.stream.write_all(&frame::encode(msg))
    }

    /// Block until one complete reply frame arrives and decode it.
    pub fn recv_reply(&mut self) -> io::Result<Message> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.decoder.next_payload(self.max_frame) {
                Ok(Some(payload)) => {
                    return frame::decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = match self.stream.read(&mut buf) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.decoder.push(&buf[..n]);
        }
    }

    /// Queue an `INFER` without waiting; returns the request id to match
    /// against [`recv_reply`](Client::recv_reply). The server applies its
    /// configured default deadline, if any.
    pub fn send_infer(&mut self, shape: &[usize], data: &[f32]) -> io::Result<u64> {
        self.send_infer_deadline(shape, data, None)
    }

    /// Like [`send_infer`](Client::send_infer) with an explicit per-request
    /// deadline. The budget starts ticking at server admission; if it
    /// expires before the request reaches a worker the reply is
    /// [`ErrCode::DeadlineExceeded`]. Sub-microsecond and zero budgets are
    /// rounded up to 1µs (`0` on the wire means "server default").
    pub fn send_infer_deadline(
        &mut self,
        shape: &[usize],
        data: &[f32],
        deadline: Option<Duration>,
    ) -> io::Result<u64> {
        let req_id = self.next_id;
        self.next_id += 1;
        let deadline_us = match deadline {
            None => 0,
            Some(d) => d.as_micros().clamp(1, u128::from(u32::MAX)) as u32,
        };
        self.send(&Message::Infer {
            req_id,
            deadline_us,
            shape: shape.to_vec(),
            data: data.to_vec(),
        })?;
        Ok(req_id)
    }

    /// One synchronous inference round trip.
    pub fn infer(&mut self, shape: &[usize], data: &[f32]) -> io::Result<InferResult> {
        let want = self.send_infer(shape, data)?;
        let reply = self.recv_reply()?;
        decode_infer_reply(want, reply)
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Message::Ping)?;
        match self.recv_reply()? {
            Message::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Fetch the server's lifetime counters.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        self.send(&Message::Stats)?;
        match self.recv_reply()? {
            Message::StatsReply { counters } => Ok(ServerStats::from_counters(&counters)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS_REPLY, got {other:?}"),
            )),
        }
    }

    /// Ask the server to hot-reload its plan from `path` (empty string =
    /// the server's configured reload path). `Ok(Ok(generation))` means the
    /// replacement validated and is now serving; `Ok(Err(msg))` means it
    /// was rejected and the old plan keeps serving.
    pub fn reload(&mut self, path: &str) -> io::Result<Result<u64, String>> {
        self.send(&Message::Reload { path: path.to_string() })?;
        match self.recv_reply()? {
            Message::ReloadReply { ok: true, generation, .. } => Ok(Ok(generation)),
            Message::ReloadReply { ok: false, msg, .. } => Ok(Err(msg)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected RELOAD_REPLY, got {other:?}"),
            )),
        }
    }

    /// Ask the server to drain and exit; returns once the drain is
    /// acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Message::Shutdown)?;
        match self.recv_reply()? {
            Message::ShutdownAck => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected SHUTDOWN_ACK, got {other:?}"),
            )),
        }
    }
}

/// Knobs for [`RobustClient`]'s reconnect and retry behavior.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts per call, including the first (minimum 1).
    pub max_attempts: usize,
    /// Delay before the first reconnect; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) reconnect delay.
    pub max_backoff: Duration,
    /// Overall wall-clock budget per call, spanning reconnects and
    /// retries. `None` = unbounded.
    pub call_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            call_deadline: Some(Duration::from_secs(10)),
        }
    }
}

/// A self-healing wrapper over [`Client`] (see module docs): reconnects
/// with exponential backoff plus jitter and retries idempotent calls
/// until the [`RetryPolicy`] says stop. Construction is lazy and cannot
/// fail — the first call connects.
pub struct RobustClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    /// Consecutive connect failures; resets on success.
    connect_failures: u32,
    rng: rand::rngs::StdRng,
}

impl RobustClient {
    /// Create a client for `addr` ("host:port"). Does not connect yet.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RobustClient {
        let addr = addr.into();
        // Seed jitter from the wall clock so concurrent clients desync;
        // nothing here needs cryptographic or reproducible randomness.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            ^ (&addr as *const String as u64);
        RobustClient {
            addr,
            policy,
            conn: None,
            connect_failures: 0,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Pre-jitter backoff for the next reconnect attempt.
    fn backoff(&mut self) -> Duration {
        let exp = self.connect_failures.min(16);
        let raw = self.policy.base_backoff.saturating_mul(1u32 << exp).min(self.policy.max_backoff);
        // Full jitter in [raw/2, raw): desynchronizes a thundering herd
        // without ever collapsing the delay to zero.
        raw.mul_f64(self.rng.gen_range(0.5..1.0))
    }

    /// Connect if not connected, respecting `deadline`. On success the
    /// stream's read timeout is set to the remaining budget.
    fn ensure_conn(&mut self, deadline: Option<Instant>) -> io::Result<&mut Client> {
        while self.conn.is_none() {
            match Client::connect(&self.addr) {
                Ok(c) => {
                    self.connect_failures = 0;
                    self.conn = Some(c);
                }
                Err(err) => {
                    self.connect_failures = self.connect_failures.saturating_add(1);
                    let pause = self.backoff();
                    match deadline {
                        Some(d) if Instant::now() + pause >= d => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("connect to {} timed out: {err}", self.addr),
                            ));
                        }
                        _ => std::thread::sleep(pause),
                    }
                }
            }
        }
        let conn = self.conn.as_mut().expect("just connected");
        conn.set_read_timeout(
            deadline
                .map(|d| d.saturating_duration_since(Instant::now()).max(Duration::from_millis(1))),
        )?;
        Ok(conn)
    }

    /// Run one idempotent round trip with reconnect + retry. Any transport
    /// error drops the connection and retries on a fresh one until
    /// attempts or the deadline run out.
    fn with_retry<T>(&mut self, mut op: impl FnMut(&mut Client) -> io::Result<T>) -> io::Result<T> {
        let deadline = self.policy.call_deadline.map(|d| Instant::now() + d);
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for _ in 0..attempts {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break;
                }
            }
            match self.ensure_conn(deadline) {
                Ok(conn) => match op(conn) {
                    Ok(v) => return Ok(v),
                    Err(err) => {
                        // The stream may hold half a frame; never reuse it.
                        self.conn = None;
                        last = Some(err);
                    }
                },
                Err(err) => last = Some(err),
            }
        }
        Err(last
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "call deadline exhausted")))
    }

    /// One synchronous inference, surviving reconnects. `deadline` is both
    /// sent to the server (per-request budget) and, combined with
    /// [`RetryPolicy::call_deadline`], bounds the whole call locally.
    ///
    /// Refusals are server *answers*, not transport faults, and are
    /// normally returned as-is — except an [`ErrCode::Overloaded`] refusal
    /// carrying a retry hint: the client waits out exactly the hint
    /// (capped by the remaining call budget) on the same connection and
    /// resends, until attempts or the budget run out, at which point the
    /// last refusal is returned.
    pub fn infer(
        &mut self,
        shape: &[usize],
        data: &[f32],
        deadline: Option<Duration>,
    ) -> io::Result<InferResult> {
        let call_deadline = self.policy.call_deadline.map(|d| Instant::now() + d);
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        let mut last_refusal: Option<InferRefusal> = None;
        for _ in 0..attempts {
            if let Some(d) = call_deadline {
                if Instant::now() >= d {
                    break;
                }
            }
            let conn = match self.ensure_conn(call_deadline) {
                Ok(c) => c,
                Err(err) => {
                    last_err = Some(err);
                    continue;
                }
            };
            let round = conn
                .send_infer_deadline(shape, data, deadline)
                .and_then(|want| conn.recv_reply().map(|reply| (want, reply)))
                .and_then(|(want, reply)| decode_infer_reply(want, reply));
            match round {
                Ok(Ok(reply)) => return Ok(Ok(reply)),
                Ok(Err(refusal)) => {
                    let hint = (refusal.code == ErrCode::Overloaded)
                        .then_some(refusal.retry_after)
                        .flatten();
                    let Some(hint) = hint else { return Ok(Err(refusal)) };
                    // The connection is healthy — the server answered — so
                    // keep it and sleep the server's own estimate.
                    let pause = match call_deadline {
                        Some(d) => hint.min(d.saturating_duration_since(Instant::now())),
                        None => hint,
                    };
                    std::thread::sleep(pause);
                    last_refusal = Some(refusal);
                }
                Err(err) => {
                    // The stream may hold half a frame; never reuse it.
                    self.conn = None;
                    last_err = Some(err);
                }
            }
        }
        if let Some(refusal) = last_refusal {
            return Ok(Err(refusal));
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "call deadline exhausted")))
    }

    /// Liveness round trip, surviving reconnects.
    pub fn ping(&mut self) -> io::Result<()> {
        self.with_retry(|c| c.ping())
    }

    /// Fetch server counters, surviving reconnects.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        self.with_retry(|c| c.stats())
    }

    /// Escape hatch to the current raw connection (connecting if needed)
    /// for non-idempotent traffic the wrapper refuses to auto-retry.
    pub fn raw(&mut self) -> io::Result<&mut Client> {
        let deadline = self.policy.call_deadline.map(|d| Instant::now() + d);
        self.ensure_conn(deadline)
    }
}

/// Turn the reply frame for request `want` into an [`InferResult`]; any
/// other frame is a protocol error.
fn decode_infer_reply(want: u64, reply: Message) -> io::Result<InferResult> {
    match reply {
        Message::InferOk { req_id, degraded, shape, data } if req_id == want => {
            Ok(Ok(InferReply { shape, data, degraded }))
        }
        Message::InferErr { req_id, code, retry_after_us, msg } if req_id == want => {
            Ok(Err(InferRefusal {
                code,
                msg,
                retry_after: (retry_after_us > 0)
                    .then(|| Duration::from_micros(u64::from(retry_after_us))),
            }))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply to synchronous infer: {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn read_msg(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Message {
        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(p) = dec.next_payload(DEFAULT_MAX_FRAME).expect("well-framed") {
                return frame::decode(&p).expect("well-formed");
            }
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "peer closed mid-script");
            dec.push(&buf[..n]);
        }
    }

    #[test]
    fn server_stats_decode_is_forward_and_backward_compatible() {
        // An older server sent fewer counters than this build knows:
        // everything it predates reads 0.
        let old = ServerStats::from_counters(&[1, 2, 3]);
        assert_eq!(old.batches, 1);
        assert_eq!(old.items, 2);
        assert_eq!(old.flush_deadline_ns, 3);
        assert_eq!(old.worker_restarts, 0);
        assert_eq!(old.shed_total, 0);
        assert_eq!(old.rate_limited, 0);
        // A newer server sent counters this build does not know: the tail
        // is ignored, the known prefix decodes.
        let mut counters = vec![0u64; stats::COUNT + 5];
        counters[stats::SHED_TOTAL] = 9;
        counters[stats::RATE_LIMITED] = 4;
        counters[stats::EWMA_SERVICE_NS] = 77;
        counters[stats::COUNT..].fill(u64::MAX);
        let new = ServerStats::from_counters(&counters);
        assert_eq!(new.shed_total, 9);
        assert_eq!(new.rate_limited, 4);
        assert_eq!(new.ewma_service_ns, 77);
    }

    /// The RetryAfter satellite: an `Overloaded` refusal with a hint is
    /// retried after waiting out exactly the hint — on the same
    /// connection, not through the reconnect/backoff path.
    #[test]
    fn robust_client_waits_out_the_retry_hint_then_succeeds() {
        const HINT: Duration = Duration::from_millis(80);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut dec = FrameDecoder::new();
            let Message::Infer { req_id, .. } = read_msg(&mut stream, &mut dec) else {
                panic!("expected INFER")
            };
            stream
                .write_all(&frame::encode(&Message::InferErr {
                    req_id,
                    code: ErrCode::Overloaded,
                    retry_after_us: HINT.as_micros() as u32,
                    msg: "shed".into(),
                }))
                .expect("write refusal");
            // The retry arrives on the same stream: same decoder state.
            let Message::Infer { req_id, shape, data, .. } = read_msg(&mut stream, &mut dec)
            else {
                panic!("expected retried INFER")
            };
            stream
                .write_all(&frame::encode(&Message::InferOk { req_id, degraded: true, shape, data }))
                .expect("write reply");
        });
        let mut client = RobustClient::new(addr.to_string(), RetryPolicy::default());
        let t0 = Instant::now();
        let reply =
            client.infer(&[2], &[1.0, -2.0], None).expect("transport ok").expect("served");
        assert!(
            t0.elapsed() >= HINT,
            "retry fired after {:?}, before the {HINT:?} hint elapsed",
            t0.elapsed()
        );
        assert!(reply.degraded);
        assert_eq!(reply.data, vec![1.0, -2.0]);
        assert_eq!(reply.shape, vec![2]);
        server.join().expect("server thread");
    }

    /// Refusals that carry no hint — or are not `Overloaded` — come back
    /// immediately, untouched by the retry machinery.
    #[test]
    fn refusals_without_an_overload_hint_are_returned_immediately() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut dec = FrameDecoder::new();
            let Message::Infer { req_id, .. } = read_msg(&mut stream, &mut dec) else {
                panic!("expected INFER")
            };
            // A hint on a non-Overloaded code must not trigger a retry wait.
            stream
                .write_all(&frame::encode(&Message::InferErr {
                    req_id,
                    code: ErrCode::DeadlineExceeded,
                    retry_after_us: 5_000_000,
                    msg: "expired in queue".into(),
                }))
                .expect("write refusal");
        });
        let mut client = RobustClient::new(addr.to_string(), RetryPolicy::default());
        let t0 = Instant::now();
        let refusal =
            client.infer(&[1], &[0.5], None).expect("transport ok").expect_err("refused");
        assert!(t0.elapsed() < Duration::from_secs(5), "must not sleep a non-overload hint");
        assert_eq!(refusal.code, ErrCode::DeadlineExceeded);
        assert_eq!(refusal.retry_after, Some(Duration::from_secs(5)));
        server.join().expect("server thread");
    }
}
