//! A small blocking client for the serving protocol.
//!
//! This is the reference peer for [`crate::net::server`]: tests, the
//! loopback load generator, and operational tooling all speak through it.
//! It is deliberately synchronous — one `TcpStream`, blocking reads — but
//! supports pipelining: [`send_infer`](Client::send_infer) queues a request
//! without waiting, [`recv_reply`](Client::recv_reply) blocks for the next
//! reply frame, and callers match them by `req_id` (replies arrive in
//! completion order, not submission order).
//!
//! [`Client`] is a thin, transparent wire peer: one connect, errors
//! surface as-is. [`RobustClient`] layers operational hardening on top —
//! reconnect with exponential backoff plus jitter, a per-call overall
//! deadline, and transparent retry of *idempotent* requests (`INFER`,
//! `PING`, `STATS` — inference is a pure function of the plan, so
//! resending after an ambiguous failure at worst recomputes). Non-idempotent
//! traffic (`RELOAD`, `SHUTDOWN`) is never silently resent.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};

use crate::net::frame::{self, ErrCode, FrameDecoder, Message, DEFAULT_MAX_FRAME};

/// One reply to an `INFER`: logits on success, `(code, message)` on
/// failure.
pub type InferResult = Result<(Vec<usize>, Vec<f32>), (ErrCode, String)>;

/// Snapshot of the server's lifetime counters ([`Client::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Individual requests served.
    pub items: u64,
    /// Flushes forced by the latency deadline rather than a full batch.
    pub flush_deadline_ns: u64,
    /// Worker panics caught and recovered from.
    pub worker_restarts: u64,
    /// Requests shed because their deadline passed before execution.
    pub deadline_expired: u64,
    /// Plan generation: bumped by every successful hot reload.
    pub generation: u64,
}

/// Blocking protocol client (see module docs).
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    /// Frame ceiling applied to *replies*; mirrors the server default.
    pub max_frame: usize,
}

impl Client {
    /// Connect with Nagle disabled (single-request latency matters more
    /// than syscall counts here).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Bound how long [`recv_reply`](Client::recv_reply) may block.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Direct access to the underlying stream (tests use this to simulate
    /// abrupt disconnects and half-written frames).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Send any message as one frame.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.stream.write_all(&frame::encode(msg))
    }

    /// Block until one complete reply frame arrives and decode it.
    pub fn recv_reply(&mut self) -> io::Result<Message> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.decoder.next_payload(self.max_frame) {
                Ok(Some(payload)) => {
                    return frame::decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = match self.stream.read(&mut buf) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.decoder.push(&buf[..n]);
        }
    }

    /// Queue an `INFER` without waiting; returns the request id to match
    /// against [`recv_reply`](Client::recv_reply). The server applies its
    /// configured default deadline, if any.
    pub fn send_infer(&mut self, shape: &[usize], data: &[f32]) -> io::Result<u64> {
        self.send_infer_deadline(shape, data, None)
    }

    /// Like [`send_infer`](Client::send_infer) with an explicit per-request
    /// deadline. The budget starts ticking at server admission; if it
    /// expires before the request reaches a worker the reply is
    /// [`ErrCode::DeadlineExceeded`]. Sub-microsecond and zero budgets are
    /// rounded up to 1µs (`0` on the wire means "server default").
    pub fn send_infer_deadline(
        &mut self,
        shape: &[usize],
        data: &[f32],
        deadline: Option<Duration>,
    ) -> io::Result<u64> {
        let req_id = self.next_id;
        self.next_id += 1;
        let deadline_us = match deadline {
            None => 0,
            Some(d) => d.as_micros().clamp(1, u128::from(u32::MAX)) as u32,
        };
        self.send(&Message::Infer {
            req_id,
            deadline_us,
            shape: shape.to_vec(),
            data: data.to_vec(),
        })?;
        Ok(req_id)
    }

    /// One synchronous inference round trip.
    pub fn infer(&mut self, shape: &[usize], data: &[f32]) -> io::Result<InferResult> {
        let want = self.send_infer(shape, data)?;
        match self.recv_reply()? {
            Message::InferOk { req_id, shape, data } if req_id == want => Ok(Ok((shape, data))),
            Message::InferErr { req_id, code, msg } if req_id == want => Ok(Err((code, msg))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to synchronous infer: {other:?}"),
            )),
        }
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Message::Ping)?;
        match self.recv_reply()? {
            Message::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Fetch the server's lifetime counters.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        self.send(&Message::Stats)?;
        match self.recv_reply()? {
            Message::StatsReply {
                batches,
                items,
                flush_deadline_ns,
                worker_restarts,
                deadline_expired,
                generation,
            } => Ok(ServerStats {
                batches,
                items,
                flush_deadline_ns,
                worker_restarts,
                deadline_expired,
                generation,
            }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS_REPLY, got {other:?}"),
            )),
        }
    }

    /// Ask the server to hot-reload its plan from `path` (empty string =
    /// the server's configured reload path). `Ok(Ok(generation))` means the
    /// replacement validated and is now serving; `Ok(Err(msg))` means it
    /// was rejected and the old plan keeps serving.
    pub fn reload(&mut self, path: &str) -> io::Result<Result<u64, String>> {
        self.send(&Message::Reload { path: path.to_string() })?;
        match self.recv_reply()? {
            Message::ReloadReply { ok: true, generation, .. } => Ok(Ok(generation)),
            Message::ReloadReply { ok: false, msg, .. } => Ok(Err(msg)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected RELOAD_REPLY, got {other:?}"),
            )),
        }
    }

    /// Ask the server to drain and exit; returns once the drain is
    /// acknowledged.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Message::Shutdown)?;
        match self.recv_reply()? {
            Message::ShutdownAck => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected SHUTDOWN_ACK, got {other:?}"),
            )),
        }
    }
}

/// Knobs for [`RobustClient`]'s reconnect and retry behavior.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts per call, including the first (minimum 1).
    pub max_attempts: usize,
    /// Delay before the first reconnect; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) reconnect delay.
    pub max_backoff: Duration,
    /// Overall wall-clock budget per call, spanning reconnects and
    /// retries. `None` = unbounded.
    pub call_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            call_deadline: Some(Duration::from_secs(10)),
        }
    }
}

/// A self-healing wrapper over [`Client`] (see module docs): reconnects
/// with exponential backoff plus jitter and retries idempotent calls
/// until the [`RetryPolicy`] says stop. Construction is lazy and cannot
/// fail — the first call connects.
pub struct RobustClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    /// Consecutive connect failures; resets on success.
    connect_failures: u32,
    rng: rand::rngs::StdRng,
}

impl RobustClient {
    /// Create a client for `addr` ("host:port"). Does not connect yet.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RobustClient {
        let addr = addr.into();
        // Seed jitter from the wall clock so concurrent clients desync;
        // nothing here needs cryptographic or reproducible randomness.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            ^ (&addr as *const String as u64);
        RobustClient {
            addr,
            policy,
            conn: None,
            connect_failures: 0,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Pre-jitter backoff for the next reconnect attempt.
    fn backoff(&mut self) -> Duration {
        let exp = self.connect_failures.min(16);
        let raw = self.policy.base_backoff.saturating_mul(1u32 << exp).min(self.policy.max_backoff);
        // Full jitter in [raw/2, raw): desynchronizes a thundering herd
        // without ever collapsing the delay to zero.
        raw.mul_f64(self.rng.gen_range(0.5..1.0))
    }

    /// Connect if not connected, respecting `deadline`. On success the
    /// stream's read timeout is set to the remaining budget.
    fn ensure_conn(&mut self, deadline: Option<Instant>) -> io::Result<&mut Client> {
        while self.conn.is_none() {
            match Client::connect(&self.addr) {
                Ok(c) => {
                    self.connect_failures = 0;
                    self.conn = Some(c);
                }
                Err(err) => {
                    self.connect_failures = self.connect_failures.saturating_add(1);
                    let pause = self.backoff();
                    match deadline {
                        Some(d) if Instant::now() + pause >= d => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("connect to {} timed out: {err}", self.addr),
                            ));
                        }
                        _ => std::thread::sleep(pause),
                    }
                }
            }
        }
        let conn = self.conn.as_mut().expect("just connected");
        conn.set_read_timeout(
            deadline
                .map(|d| d.saturating_duration_since(Instant::now()).max(Duration::from_millis(1))),
        )?;
        Ok(conn)
    }

    /// Run one idempotent round trip with reconnect + retry. Any transport
    /// error drops the connection and retries on a fresh one until
    /// attempts or the deadline run out.
    fn with_retry<T>(&mut self, mut op: impl FnMut(&mut Client) -> io::Result<T>) -> io::Result<T> {
        let deadline = self.policy.call_deadline.map(|d| Instant::now() + d);
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for _ in 0..attempts {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break;
                }
            }
            match self.ensure_conn(deadline) {
                Ok(conn) => match op(conn) {
                    Ok(v) => return Ok(v),
                    Err(err) => {
                        // The stream may hold half a frame; never reuse it.
                        self.conn = None;
                        last = Some(err);
                    }
                },
                Err(err) => last = Some(err),
            }
        }
        Err(last
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "call deadline exhausted")))
    }

    /// One synchronous inference, surviving reconnects. `deadline` is both
    /// sent to the server (per-request budget) and, combined with
    /// [`RetryPolicy::call_deadline`], bounds the whole call locally.
    pub fn infer(
        &mut self,
        shape: &[usize],
        data: &[f32],
        deadline: Option<Duration>,
    ) -> io::Result<InferResult> {
        self.with_retry(|c| {
            let want = c.send_infer_deadline(shape, data, deadline)?;
            match c.recv_reply()? {
                Message::InferOk { req_id, shape, data } if req_id == want => Ok(Ok((shape, data))),
                Message::InferErr { req_id, code, msg } if req_id == want => Ok(Err((code, msg))),
                other => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected reply to synchronous infer: {other:?}"),
                )),
            }
        })
    }

    /// Liveness round trip, surviving reconnects.
    pub fn ping(&mut self) -> io::Result<()> {
        self.with_retry(|c| c.ping())
    }

    /// Fetch server counters, surviving reconnects.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        self.with_retry(|c| c.stats())
    }

    /// Escape hatch to the current raw connection (connecting if needed)
    /// for non-idempotent traffic the wrapper refuses to auto-retry.
    pub fn raw(&mut self) -> io::Result<&mut Client> {
        let deadline = self.policy.call_deadline.map(|d| Instant::now() + d);
        self.ensure_conn(deadline)
    }
}
