//! The socket front end: a single-threaded non-blocking reactor bridging
//! TCP clients to a [`BatchServer`].
//!
//! # Design
//!
//! One thread owns every socket. A [`polling::Poller`] (epoll on Linux,
//! `poll(2)` elsewhere — see `crates/shims/polling`) watches the listener
//! and every connection **level-triggered**: read interest is registered
//! while the server is willing to accept bytes from that client, write
//! interest only while a reply is partially flushed. The reactor never
//! blocks on a socket and never blocks on the batch server:
//!
//! * **Inbound**: readable sockets are drained until `WouldBlock`, bytes
//!   feed a [`FrameDecoder`], and every complete frame becomes a
//!   [`Message`]. `INFER` requests are handed to
//!   [`BatchServer::try_submit_with`] — the non-blocking, callback form of
//!   submission.
//! * **Completions**: the reply callback runs on a worker thread; it
//!   pushes `(conn, req_id, result)` onto a mutex-protected completion
//!   list and calls [`polling::Poller::notify`]. The reactor drains the
//!   list at the top of every iteration and writes replies out. A
//!   completion whose connection has since closed is silently dropped —
//!   a mid-reply disconnect affects nobody else.
//! * **Backpressure, per client**: a connection pauses (its read interest
//!   is withdrawn, so the kernel's TCP window eventually closes toward the
//!   client) whenever it has [`NetConfig::max_inflight`] requests in
//!   flight, a parked request the batch queue had no room for, or more
//!   than [`NetConfig::write_pause`] bytes of unflushed replies. Parked
//!   requests are retried after every completion drain, so a full batch
//!   queue sheds load onto exactly the clients producing it while idle
//!   clients stay live. Complete frames already sitting in a paused
//!   connection's decoder are resumed the same way — backpressure never
//!   strands a fully-received request waiting for bytes that will not come.
//! * **Admission control**: optional token buckets ([`NetConfig::rate`]
//!   global, [`NetConfig::conn_rate`] per connection, both refilled from
//!   the reactor clock) gate `INFER` admission *ahead of* the batch
//!   queue. A rate-limited request gets an immediate `INFER_ERR { code:
//!   Overloaded }` carrying a `retry_after_us` hint instead of occupying
//!   queue space; unconfigured buckets cost one `Option` check.
//! * **Graceful drain**: a `SHUTDOWN` frame (or [`NetHandle::shutdown`])
//!   stops the listener and all request reading, answers new `INFER`s
//!   with `ShuttingDown`, but lets every in-flight batch complete and
//!   every buffered reply flush — bit-identical to what the client would
//!   have seen without the shutdown. Only after the last reply (or
//!   [`NetConfig::drain_timeout`]) does the loop exit; dropping the
//!   [`BatchServer`] then joins its workers.
//! * **Slow clients**: [`NetConfig::idle_timeout`] closes connections that
//!   have sent no byte for the configured window and have nothing in
//!   flight or mid-flush — a slow-loris half-frame cannot hold a slot
//!   forever, while a reply still draining toward a slow reader is never
//!   truncated by the sweep.
//!
//! Protocol violations (oversized or zero-length frame, unknown opcode,
//! malformed body) get one best-effort `INFER_ERR { req_id: 0, code:
//! Protocol }` reply, then the connection flushes and closes. There is no
//! resynchronisation: a corrupt length prefix leaves no trustworthy frame
//! boundary.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use da_tensor::Tensor;
use polling::{Event, Poller};

use crate::net::frame::{self, ErrCode, FrameDecoder, Message, DEFAULT_MAX_FRAME};
use crate::serve::{BatchServer, Reply, ServeError};

/// Tuning knobs for the socket front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest accepted frame (length prefix bound). Default 16 MiB;
    /// values above `u32::MAX` (the prefix's ceiling) are clamped at bind.
    pub max_frame: usize,
    /// Per-connection in-flight request cap; beyond it the connection's
    /// read interest is withdrawn until replies drain. Default 32.
    pub max_inflight: usize,
    /// Unflushed reply bytes beyond which a connection stops being read.
    /// Default 1 MiB.
    pub write_pause: usize,
    /// Close connections with no received byte and nothing in flight for
    /// this long. `None` (default) disables the sweep.
    pub idle_timeout: Option<Duration>,
    /// Hard cap on the graceful-drain phase; connections still unflushed
    /// after this are dropped. Default 5 s.
    pub drain_timeout: Duration,
    /// Most connections open at once. At the cap, new connections get one
    /// best-effort `INFER_ERR { code: Overloaded }` reply and are closed —
    /// a clean refusal instead of an unbounded fd march toward EMFILE.
    /// Default 1024.
    pub max_conns: usize,
    /// How long to stop accepting after a *persistent* `accept(2)` error
    /// (EMFILE/ENFILE and kin). Under level-triggered readiness the
    /// listener would otherwise re-fire immediately and spin the reactor at
    /// 100% CPU; backing off gives the condition (usually fd exhaustion)
    /// time to clear. Default 50 ms.
    pub accept_backoff: Duration,
    /// Snapshot an empty-path RELOAD frame (or [`NetHandle::reload`], the
    /// SIGHUP path) re-maps. `None` rejects such reloads; RELOAD frames
    /// naming an explicit path work either way.
    pub reload_path: Option<PathBuf>,
    /// Use the portable `poll(2)` poller backend instead of the platform
    /// default (epoll on Linux). The fallback path serves real traffic on
    /// non-Linux Unixes, so tests exercise it explicitly via this knob.
    pub use_poll_backend: bool,
    /// Global admission rate in `INFER` requests per second. `None`
    /// (default) disables global rate limiting.
    pub rate: Option<f64>,
    /// Global token-bucket depth. `None` defaults to one second of
    /// [`rate`](NetConfig::rate) (floored at 1 token).
    pub burst: Option<f64>,
    /// Per-connection admission rate in requests per second. `None`
    /// (default) disables per-connection rate limiting.
    pub conn_rate: Option<f64>,
    /// Per-connection bucket depth; `None` defaults to one second of
    /// [`conn_rate`](NetConfig::conn_rate) (floored at 1 token).
    pub conn_burst: Option<f64>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 32,
            write_pause: 1 << 20,
            idle_timeout: None,
            drain_timeout: Duration::from_secs(5),
            max_conns: 1024,
            accept_backoff: Duration::from_millis(50),
            reload_path: None,
            use_poll_backend: false,
            rate: None,
            burst: None,
            conn_rate: None,
            conn_burst: None,
        }
    }
}

impl NetConfig {
    /// Clamp limits the wire format cannot represent: the length prefix is
    /// a u32, so a larger configured `max_frame` could admit a frame the
    /// protocol cannot re-emit.
    fn normalized(mut self) -> NetConfig {
        self.max_frame = self.max_frame.min(u32::MAX as usize);
        self
    }

    fn global_bucket(&self, now: Instant) -> Option<TokenBucket> {
        self.rate.map(|r| TokenBucket::new(r, self.burst, now))
    }

    fn conn_bucket(&self, now: Instant) -> Option<TokenBucket> {
        self.conn_rate.map(|r| TokenBucket::new(r, self.conn_burst, now))
    }
}

/// A token bucket refilled from the reactor clock: `rate` tokens per
/// second up to a depth of `burst`, one token per admitted request.
/// Time is always passed in (never sampled here) so tests drive it with
/// fabricated instants and the reactor samples the clock once per frame.
#[derive(Debug, Clone)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// `burst` defaults to one second of `rate` and is floored at one
    /// token — a bucket that can never admit anything is a misconfiguration,
    /// not a feature.
    fn new(rate: f64, burst: Option<f64>, now: Instant) -> TokenBucket {
        let rate = rate.max(f64::MIN_POSITIVE);
        let burst = burst.unwrap_or(rate).max(1.0);
        TokenBucket { rate, burst, tokens: burst, last: now }
    }

    /// Is a token available right now? Refills from the elapsed time but
    /// does not spend; `Err` carries the time until one token exists — the
    /// client's `retry_after` hint.
    fn peek(&mut self, now: Instant) -> Result<(), Duration> {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - self.tokens) / self.rate))
        }
    }

    /// Spend one token (call only after a successful [`peek`](TokenBucket::peek)).
    fn take(&mut self) {
        self.tokens = (self.tokens - 1.0).max(0.0);
    }
}

/// Counters the reactor accumulates over its lifetime (returned by
/// [`NetServer::run`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// `INFER_OK` replies sent.
    pub replies_ok: u64,
    /// `INFER_ERR` replies sent (any code).
    pub replies_err: u64,
    /// Connections closed for protocol violations.
    pub protocol_errors: u64,
    /// Connections closed by the idle sweep.
    pub idle_closed: u64,
    /// Persistent `accept(2)` errors that triggered the accept backoff.
    pub accept_errors: u64,
    /// Connections refused at the [`NetConfig::max_conns`] cap.
    pub conns_refused: u64,
    /// Plan reloads that swapped the pool (RELOAD frame or SIGHUP).
    pub reloads_ok: u64,
    /// Plan reloads rejected with the old plans left serving.
    pub reloads_rejected: u64,
    /// `INFER` requests refused by a token bucket (global or
    /// per-connection) before reaching the batch queue.
    pub rate_limited: u64,
}

/// Thread-safe trigger for a graceful drain or a plan reload (see module
/// docs).
#[derive(Clone)]
pub struct NetHandle {
    stop: Arc<AtomicBool>,
    reload: Arc<AtomicBool>,
    poller: Arc<Poller>,
}

impl NetHandle {
    /// Begin the graceful drain from any thread. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.poller.notify();
    }

    /// Ask the reactor to hot-reload [`NetConfig::reload_path`], as if an
    /// empty-path RELOAD frame had arrived. Both operations here — an
    /// atomic store and a write to the poller's self-pipe — are
    /// async-signal-safe, so `da-serve` calls this straight from its SIGHUP
    /// handler. A rejected reload (corrupt replacement, no configured path)
    /// leaves the current plans serving; outcomes are visible in
    /// [`NetStats`] and the STATS generation.
    pub fn reload(&self) {
        self.reload.store(true, Ordering::SeqCst);
        let _ = self.poller.notify();
    }
}

/// A reply that completed on a worker thread, waiting for the reactor.
type Completion = (usize, u64, Result<Reply, ServeError>);

const LISTENER_KEY: usize = 0;

/// Lifecycle of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading requests, writing replies.
    Open,
    /// Flush the write buffer, then close (protocol error or drain).
    Closing,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded replies not yet accepted by the kernel; `wpos` marks the
    /// flushed prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests submitted to the batch server, reply still pending.
    inflight: usize,
    /// Requests decoded but not yet admitted (in-flight cap or full batch
    /// queue); retried after every completion drain. Each carries its
    /// deadline so time queued here still counts against the budget.
    parked: VecDeque<(u64, Tensor, Option<Instant>)>,
    last_rx: Instant,
    state: ConnState,
    /// Interest currently registered with the poller, to skip redundant
    /// `modify` syscalls.
    registered: (bool, bool),
    /// Per-connection admission bucket ([`NetConfig::conn_rate`]).
    bucket: Option<TokenBucket>,
}

impl Conn {
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// The socket front end. Construct with [`bind`](NetServer::bind), then
/// either [`run`](NetServer::run) on the current thread or
/// [`spawn`](NetServer::spawn) a dedicated one.
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    server: BatchServer,
    config: NetConfig,
    poller: Arc<Poller>,
    completions: Arc<Mutex<Vec<Completion>>>,
    stop: Arc<AtomicBool>,
    reload: Arc<AtomicBool>,
}

impl NetServer {
    /// Bind the listener and wire up the poller. The batch server is owned
    /// by the front end from here on; dropping the front end (after `run`
    /// returns) drains and joins its workers.
    pub fn bind(
        server: BatchServer,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let config = config.normalized();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = if config.use_poll_backend {
            Arc::new(Poller::with_poll_backend()?)
        } else {
            Arc::new(Poller::new()?)
        };
        poller.add(listener.as_raw_fd(), Event::readable(LISTENER_KEY))?;
        Ok(NetServer {
            listener,
            addr,
            server,
            config,
            poller,
            completions: Arc::new(Mutex::new(Vec::new())),
            stop: Arc::new(AtomicBool::new(false)),
            reload: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the kernel's pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A trigger that starts the graceful drain (or a plan reload) from
    /// another thread or a signal handler.
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            stop: self.stop.clone(),
            reload: self.reload.clone(),
            poller: self.poller.clone(),
        }
    }

    /// Run the reactor on a dedicated thread; returns the bound address,
    /// the shutdown trigger, and the join handle yielding final stats.
    pub fn spawn(self) -> (SocketAddr, NetHandle, std::thread::JoinHandle<io::Result<NetStats>>) {
        let addr = self.addr;
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("da-serve-reactor".into())
            .spawn(move || self.run())
            .expect("spawn reactor thread");
        (addr, handle, join)
    }

    /// Run the reactor until a graceful drain completes. Blocking.
    pub fn run(self) -> io::Result<NetStats> {
        Reactor::new(self)?.run()
    }
}

struct Reactor {
    listener: TcpListener,
    server: BatchServer,
    config: NetConfig,
    poller: Arc<Poller>,
    completions: Arc<Mutex<Vec<Completion>>>,
    stop: Arc<AtomicBool>,
    reload: Arc<AtomicBool>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// While set, the listener is deregistered and accepting is paused
    /// until this instant (persistent accept-error backoff).
    accept_resume_at: Option<Instant>,
    /// Global admission bucket ([`NetConfig::rate`]).
    global_bucket: Option<TokenBucket>,
    stats: NetStats,
}

impl Reactor {
    fn new(front: NetServer) -> io::Result<Reactor> {
        let global_bucket = front.config.global_bucket(Instant::now());
        Ok(Reactor {
            listener: front.listener,
            server: front.server,
            config: front.config,
            poller: front.poller,
            completions: front.completions,
            stop: front.stop,
            reload: front.reload,
            conns: HashMap::new(),
            next_key: LISTENER_KEY + 1,
            draining: false,
            drain_deadline: None,
            accept_resume_at: None,
            global_bucket,
            stats: NetStats::default(),
        })
    }

    fn run(mut self) -> io::Result<NetStats> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            self.poller.wait(&mut events, self.wait_timeout())?;

            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.reload.swap(false, Ordering::SeqCst) {
                // The SIGHUP path: reload the configured snapshot on the
                // reactor thread (mmap + validate is a few ms — cheap
                // enough not to need a helper thread). Outcome lands in
                // the stats counters and the plan generation.
                self.do_reload(None);
            }
            self.resume_accept_if_due();
            self.drain_completions();
            self.pump_parked();

            let ready: Vec<Event> = events.clone();
            for ev in ready {
                if ev.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    self.service(ev);
                }
            }

            // After completions, parked retries, and flushes have lifted
            // backpressure, frames already sitting in a paused connection's
            // decoder must be processed here — no further socket readability
            // will announce them.
            self.resume_buffered();

            self.sweep_idle();

            if self.draining && self.drained() {
                break;
            }
            if let Some(deadline) = self.drain_deadline {
                if Instant::now() >= deadline {
                    break; // unflushed stragglers are dropped
                }
            }
        }
        Ok(self.stats)
    }

    /// How long the poller may sleep: forever when quiescent, bounded when
    /// a deadline (drain cap, idle sweep) or a parked retry is pending.
    fn wait_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut timeout: Option<Duration> = None;
        let mut consider = |d: Duration| {
            timeout = Some(timeout.map_or(d, |t| t.min(d)));
        };
        if let Some(deadline) = self.drain_deadline {
            consider(deadline.saturating_duration_since(now).max(Duration::from_millis(1)));
        }
        if let Some(resume) = self.accept_resume_at {
            consider(resume.saturating_duration_since(now).max(Duration::from_millis(1)));
        }
        if let Some(idle) = self.config.idle_timeout {
            if let Some(earliest) = self
                .conns
                .values()
                .filter(|c| c.inflight == 0 && c.parked.is_empty() && !c.wants_write())
                .map(|c| c.last_rx)
                .min()
            {
                let due = (earliest + idle).saturating_duration_since(now);
                consider(due.max(Duration::from_millis(1)));
            }
        }
        // Parked submissions are normally retried off a completion wakeup;
        // the bounded sleep is a safety net, not the signal path.
        if self.conns.values().any(|c| !c.parked.is_empty()) {
            consider(Duration::from_millis(10));
        }
        timeout
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.config.drain_timeout);
        if self.accept_resume_at.take().is_none() {
            // Only registered while not in accept backoff.
            let _ = self.poller.delete(self.listener.as_raw_fd());
        }
        // Stop reading everywhere; parked requests are answered with
        // ShuttingDown by the next pump.
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            self.refresh_interest(key);
        }
    }

    /// All replies delivered and flushed?
    fn drained(&self) -> bool {
        self.conns.values().all(|c| c.inflight == 0 && c.parked.is_empty() && !c.wants_write())
    }

    fn accept_ready(&mut self) {
        if self.draining || self.accept_resume_at.is_some() {
            return;
        }
        loop {
            // Chaos-test injection site (no-op unless the `failpoints`
            // feature is on): models a persistent accept(2) error storm
            // (EMFILE and kin).
            if let Some(_msg) = da_failpoints::check("net/accept") {
                self.stats.accept_errors += 1;
                self.pause_accept();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.config.max_conns {
                        self.refuse(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.next_key;
                    self.next_key += 1;
                    if self.poller.add(stream.as_raw_fd(), Event::readable(key)).is_err() {
                        continue;
                    }
                    let now = Instant::now();
                    self.conns.insert(
                        key,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            inflight: 0,
                            parked: VecDeque::new(),
                            last_rx: now,
                            state: ConnState::Open,
                            registered: (true, false),
                            bucket: self.config.conn_bucket(now),
                        },
                    );
                    self.stats.accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent failure (EMFILE/ENFILE, aborted handshake
                    // storms …). Under level-triggered readiness a bare
                    // `break` would re-fire this handler immediately and
                    // spin the reactor at 100% CPU; deregister the listener
                    // and come back after a backoff instead. Pending
                    // connections are not lost — they wait in the kernel's
                    // accept queue.
                    self.stats.accept_errors += 1;
                    self.pause_accept();
                    return;
                }
            }
        }
    }

    /// Deregister the listener and schedule re-registration after
    /// [`NetConfig::accept_backoff`].
    fn pause_accept(&mut self) {
        let _ = self.poller.delete(self.listener.as_raw_fd());
        self.accept_resume_at = Some(Instant::now() + self.config.accept_backoff);
    }

    /// Re-register the listener once the accept backoff has elapsed.
    fn resume_accept_if_due(&mut self) {
        let Some(resume) = self.accept_resume_at else { return };
        if Instant::now() < resume {
            return;
        }
        self.accept_resume_at = None;
        if !self.draining {
            let _ = self.poller.add(self.listener.as_raw_fd(), Event::readable(LISTENER_KEY));
        }
    }

    /// Refuse a connection at the `max_conns` cap: one best-effort
    /// `Overloaded` reply, then drop (closing the fd). The write is
    /// non-blocking and small enough for a fresh socket's send buffer, so
    /// the reactor never stalls on a refused peer.
    fn refuse(&mut self, stream: TcpStream) {
        self.stats.conns_refused += 1;
        if stream.set_nonblocking(true).is_ok() {
            let frame = frame::encode(&Message::InferErr {
                req_id: 0,
                code: ErrCode::Overloaded,
                retry_after_us: 0,
                msg: "connection limit reached".to_string(),
            });
            let _ = (&stream).write(&frame);
        }
    }

    /// Move completed replies from the worker-side list into write buffers.
    fn drain_completions(&mut self) {
        let completed: Vec<Completion> = {
            // Poison recovery: a worker that panicked inside the reply
            // callback must not wedge the reactor — the list is only ever
            // pushed to or swapped out whole.
            let mut lock = self.completions.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *lock)
        };
        for (key, req_id, result) in completed {
            // The connection may have closed mid-request; its reply is
            // simply dropped (the batch still served everyone else).
            if !self.conns.contains_key(&key) {
                continue;
            }
            let msg = match result {
                Ok(reply) => {
                    self.stats.replies_ok += 1;
                    Message::InferOk {
                        req_id,
                        degraded: reply.degraded,
                        shape: reply.shape,
                        data: reply.data,
                    }
                }
                Err(err) => {
                    self.stats.replies_err += 1;
                    err_reply(req_id, &err)
                }
            };
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.inflight -= 1;
            }
            self.send(key, &msg);
        }
    }

    /// Retry parked submissions (in-flight cap or batch queue full).
    fn pump_parked(&mut self) {
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            while let Some(conn) = self.conns.get_mut(&key) {
                if conn.parked.is_empty() || conn.inflight >= self.config.max_inflight {
                    break;
                }
                let (req_id, tensor, deadline) =
                    conn.parked.pop_front().expect("checked non-empty");
                if self.draining {
                    self.stats.replies_err += 1;
                    self.send(key, &err_reply(req_id, &ServeError::ShuttingDown));
                    continue;
                }
                match self.submit(key, req_id, &tensor, deadline) {
                    Ok(()) => {}
                    Err(ServeError::QueueFull) => {
                        // Still no room: back off until the next completion.
                        let conn = self.conns.get_mut(&key).expect("conn exists");
                        conn.parked.push_front((req_id, tensor, deadline));
                        break;
                    }
                    Err(err) => {
                        self.stats.replies_err += 1;
                        self.send(key, &err_reply(req_id, &err));
                    }
                }
            }
            self.refresh_interest(key);
        }
    }

    /// Hand one request to the batch server; the reply callback routes the
    /// completion back through the poller wakeup.
    fn submit(
        &mut self,
        key: usize,
        req_id: u64,
        tensor: &Tensor,
        deadline: Option<Instant>,
    ) -> Result<(), ServeError> {
        let completions = self.completions.clone();
        let poller = self.poller.clone();
        self.server.try_submit_with_deadline(
            tensor,
            deadline,
            Box::new(move |result| {
                // Poison recovery: losing a completion would strand the
                // client's req_id forever.
                let mut lock = completions.lock().unwrap_or_else(PoisonError::into_inner);
                lock.push((key, req_id, result));
                drop(lock);
                let _ = poller.notify();
            }),
        )?;
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.inflight += 1;
        }
        Ok(())
    }

    /// Perform a plan reload (RELOAD frame with a path, or `None` for the
    /// configured [`NetConfig::reload_path`] — the empty-path / SIGHUP
    /// form). Returns the reply fields.
    fn do_reload(&mut self, path: Option<&std::path::Path>) -> (bool, u64, String) {
        let path = match path {
            Some(p) => p,
            None => match self.config.reload_path.as_deref() {
                Some(p) => p,
                None => {
                    self.stats.reloads_rejected += 1;
                    return (
                        false,
                        self.server.generation(),
                        "no reload path configured".to_string(),
                    );
                }
            },
        };
        match self.server.reload_from_snapshot(path) {
            Ok(generation) => {
                self.stats.reloads_ok += 1;
                (true, generation, String::new())
            }
            Err(err) => {
                self.stats.reloads_rejected += 1;
                (false, self.server.generation(), err.to_string())
            }
        }
    }

    /// Handle readiness on one connection.
    fn service(&mut self, ev: Event) {
        let key = ev.key;
        if ev.writable {
            let closed = {
                let Some(conn) = self.conns.get_mut(&key) else { return };
                match flush(conn) {
                    Ok(()) => conn.state == ConnState::Closing && !conn.wants_write(),
                    Err(_) => true,
                }
            };
            if closed {
                self.close(key);
                return;
            }
        }
        if ev.readable {
            self.read_ready(key);
        }
        self.refresh_interest(key);
    }

    fn read_ready(&mut self, key: usize) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&key) else { return };
            if conn.state != ConnState::Open {
                return;
            }
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    // Peer closed. Anything buffered can no longer be
                    // answered on this socket; in-flight work still
                    // executes (the batch is shared) and its completion is
                    // dropped harmlessly.
                    self.close(key);
                    return;
                }
                Ok(n) => {
                    conn.last_rx = Instant::now();
                    conn.decoder.push(&buf[..n]);
                    if !self.decode_frames(key) {
                        return; // closed, poisoned, or paused by backpressure
                    }
                    // A paused connection stops consuming from the kernel
                    // buffer mid-readiness.
                    let Some(conn) = self.conns.get_mut(&key) else { return };
                    if !conn_wants_read(conn, self.draining, &self.config) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(key);
                    return;
                }
            }
        }
    }

    /// Process every complete frame buffered on `key`. Returns false if
    /// decoding must stop early: the connection was closed (or marked
    /// closing), or backpressure paused it with frames possibly still
    /// buffered — [`resume_buffered`](Reactor::resume_buffered) picks those
    /// up once the pressure lifts.
    fn decode_frames(&mut self, key: usize) -> bool {
        loop {
            let payload = {
                let Some(conn) = self.conns.get_mut(&key) else { return false };
                match conn.decoder.next_payload(self.config.max_frame) {
                    Ok(Some(p)) => p,
                    Ok(None) => return true,
                    Err(err) => {
                        self.protocol_error(key, &err.to_string());
                        return false;
                    }
                }
            };
            match frame::decode(&payload) {
                Ok(msg) => {
                    if !self.handle_message(key, msg) {
                        return false;
                    }
                }
                Err(err) => {
                    self.protocol_error(key, &err.to_string());
                    return false;
                }
            }
        }
    }

    /// Returns false if the connection should stop being read.
    fn handle_message(&mut self, key: usize, msg: Message) -> bool {
        match msg {
            Message::Ping => {
                self.send(key, &Message::Pong);
                true
            }
            Message::Stats => {
                // Fixed-index counter list (see [`frame::stats`]): older
                // clients ignore the tail, newer clients read zeros for
                // counters this build predates.
                let stats = self.server.stats();
                let mut counters = vec![0u64; frame::stats::COUNT];
                counters[frame::stats::BATCHES] = stats.batches;
                counters[frame::stats::ITEMS] = stats.items;
                counters[frame::stats::FLUSH_DEADLINE_NS] = stats.flush_deadline_ns;
                counters[frame::stats::WORKER_RESTARTS] = stats.worker_restarts;
                counters[frame::stats::DEADLINE_EXPIRED] = stats.deadline_expired;
                counters[frame::stats::GENERATION] = stats.generation;
                counters[frame::stats::SHED_TOTAL] = stats.shed_total;
                counters[frame::stats::DEGRADED_TOTAL] = stats.degraded_total;
                counters[frame::stats::RATE_LIMITED] = self.stats.rate_limited;
                counters[frame::stats::EWMA_SERVICE_NS] = stats.ewma_service_ns;
                counters[frame::stats::RELOADS_REJECTED] = self.stats.reloads_rejected;
                self.send(key, &Message::StatsReply { counters });
                true
            }
            Message::Shutdown => {
                self.send(key, &Message::ShutdownAck);
                self.begin_drain();
                false
            }
            Message::Reload { path } => {
                let explicit =
                    if path.is_empty() { None } else { Some(std::path::PathBuf::from(path)) };
                let (ok, generation, msg) = self.do_reload(explicit.as_deref());
                self.send(key, &Message::ReloadReply { ok, generation, msg });
                true
            }
            Message::Infer { req_id, deadline_us, shape, data } => {
                if self.draining {
                    self.stats.replies_err += 1;
                    self.send(key, &err_reply(req_id, &ServeError::ShuttingDown));
                    return true;
                }
                // Admission control, ahead of everything the request could
                // cost (tensor build, queue space): both buckets must pass
                // before either is debited, and the retry hint is the
                // longer of the two waits.
                let now = Instant::now();
                let conn = self.conns.get_mut(&key).expect("conn exists");
                let conn_wait = conn.bucket.as_mut().map(|b| b.peek(now));
                let global_wait = self.global_bucket.as_mut().map(|b| b.peek(now));
                let limited = [conn_wait, global_wait]
                    .into_iter()
                    .flatten()
                    .filter_map(Result::err)
                    .max();
                if let Some(wait) = limited {
                    self.stats.rate_limited += 1;
                    self.stats.replies_err += 1;
                    self.send(
                        key,
                        &Message::InferErr {
                            req_id,
                            code: ErrCode::Overloaded,
                            retry_after_us: clamp_retry_us(wait),
                            msg: "rate limited".to_string(),
                        },
                    );
                    return true;
                }
                if let Some(b) = self.global_bucket.as_mut() {
                    b.take();
                }
                if let Some(b) =
                    self.conns.get_mut(&key).and_then(|c| c.bucket.as_mut())
                {
                    b.take();
                }
                // Start the budget at admission; `0` defers to the batch
                // server's configured default.
                let deadline = if deadline_us == 0 {
                    None
                } else {
                    Instant::now().checked_add(Duration::from_micros(u64::from(deadline_us)))
                };
                // decode() proved data.len() == prod(shape), which is all
                // from_vec asserts.
                let tensor = Tensor::from_vec(data, &shape);
                let conn = self.conns.get_mut(&key).expect("conn exists");
                if conn.inflight >= self.config.max_inflight {
                    conn.parked.push_back((req_id, tensor, deadline));
                    return false; // paused until replies drain
                }
                match self.submit(key, req_id, &tensor, deadline) {
                    Ok(()) => true,
                    Err(ServeError::QueueFull) => {
                        let conn = self.conns.get_mut(&key).expect("conn exists");
                        conn.parked.push_back((req_id, tensor, deadline));
                        false // paused until the batch queue has room
                    }
                    Err(err) => {
                        self.stats.replies_err += 1;
                        self.send(key, &err_reply(req_id, &err));
                        true
                    }
                }
            }
            // Reply opcodes from a client are a protocol violation.
            Message::InferOk { .. }
            | Message::InferErr { .. }
            | Message::Pong
            | Message::StatsReply { .. }
            | Message::ShutdownAck
            | Message::ReloadReply { .. } => {
                self.protocol_error(key, "reply opcode sent by client");
                false
            }
        }
    }

    /// One best-effort error reply, then flush-and-close.
    fn protocol_error(&mut self, key: usize, detail: &str) {
        self.stats.protocol_errors += 1;
        self.stats.replies_err += 1;
        self.send(
            key,
            &Message::InferErr {
                req_id: 0,
                code: ErrCode::Protocol,
                retry_after_us: 0,
                msg: detail.to_string(),
            },
        );
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.state = ConnState::Closing;
            if !conn.wants_write() {
                self.close(key);
                return;
            }
        }
        self.refresh_interest(key);
    }

    /// Queue an encoded message and opportunistically flush.
    fn send(&mut self, key: usize, msg: &Message) {
        let Some(conn) = self.conns.get_mut(&key) else { return };
        conn.wbuf.extend_from_slice(&frame::encode(msg));
        let close = match flush(conn) {
            Ok(()) => conn.state == ConnState::Closing && !conn.wants_write(),
            Err(_) => true,
        };
        if close {
            self.close(key);
        } else {
            self.refresh_interest(key);
        }
    }

    /// Decode frames already buffered on connections whose backpressure has
    /// lifted. [`decode_frames`](Reactor::decode_frames) otherwise only runs
    /// off socket readability, so a complete frame stranded in the decoder
    /// when its connection paused (in-flight cap, parked request, write
    /// pressure) would wait for the client's *next* byte — forever, for a
    /// client that pipelined a burst and is now silently awaiting replies.
    fn resume_buffered(&mut self) {
        let pending: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.decoder.buffered() > 0 && conn_wants_read(c, self.draining, &self.config)
            })
            .map(|(k, _)| *k)
            .collect();
        for key in pending {
            self.decode_frames(key);
            self.refresh_interest(key);
        }
    }

    /// Close idle connections (slow-loris defence).
    fn sweep_idle(&mut self) {
        let Some(idle) = self.config.idle_timeout else { return };
        let now = Instant::now();
        let stale: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| idle_sweepable(c, now, idle))
            .map(|(k, _)| *k)
            .collect();
        for key in stale {
            self.stats.idle_closed += 1;
            self.close(key);
        }
    }

    fn close(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            // conn drops here: the fd closes, the kernel discards whatever
            // was left. Completions for this key no longer resolve and are
            // dropped in drain_completions.
        }
    }

    /// Re-register the connection's interest if it changed.
    fn refresh_interest(&mut self, key: usize) {
        let draining = self.draining;
        let config = &self.config;
        let Some(conn) = self.conns.get_mut(&key) else { return };
        let want = (conn_wants_read(conn, draining, config), conn.wants_write());
        if want != conn.registered {
            let ev = Event { key, readable: want.0, writable: want.1 };
            if self.poller.modify(conn.stream.as_raw_fd(), ev).is_ok() {
                conn.registered = want;
            }
        }
    }
}

/// Map a batch-server error onto its wire error code. `WorkerDied` has no
/// dedicated code: from the caller's view it is an execution failure (the
/// request may be retried — the replacement worker is already up).
fn err_code(err: &ServeError) -> ErrCode {
    match err {
        ServeError::QueueFull | ServeError::Overloaded { .. } => ErrCode::Overloaded,
        ServeError::ShuttingDown => ErrCode::ShuttingDown,
        ServeError::DeadlineExceeded => ErrCode::DeadlineExceeded,
        ServeError::Execution(_) | ServeError::WorkerDied => ErrCode::Execution,
    }
}

/// Build the `INFER_ERR` reply for a batch-server error, carrying the
/// shed retry hint when there is one.
fn err_reply(req_id: u64, err: &ServeError) -> Message {
    let retry_after_us = match err {
        ServeError::Overloaded { retry_after } => clamp_retry_us(*retry_after),
        _ => 0,
    };
    Message::InferErr { req_id, code: err_code(err), retry_after_us, msg: err.to_string() }
}

/// A retry hint on the wire: clamped into the u32 µs field, floored at
/// 1 µs so a nonzero `Duration` never rounds down to "no hint".
fn clamp_retry_us(wait: Duration) -> u32 {
    u32::try_from(wait.as_micros()).unwrap_or(u32::MAX).max(1)
}

/// Is this connection eligible for the idle sweep? Nothing in flight,
/// nothing parked, nothing mid-flush, and silent past the timeout. The
/// mid-flush exclusion means a reply the kernel has not yet accepted is
/// never truncated by the sweep; a client that refuses to read is still
/// bounded — reads stop at `write_pause`, the kernel's send buffer caps
/// what it can strand, and `drain_timeout` reaps it at shutdown.
fn idle_sweepable(conn: &Conn, now: Instant, idle: Duration) -> bool {
    conn.inflight == 0
        && conn.parked.is_empty()
        && !conn.wants_write()
        && now.saturating_duration_since(conn.last_rx) >= idle
}

/// Should this connection currently be read from? (Free function: callers
/// often hold a `&mut Conn` alongside the reactor's config.)
fn conn_wants_read(conn: &Conn, draining: bool, config: &NetConfig) -> bool {
    conn.state == ConnState::Open
        && !draining
        && conn.parked.is_empty()
        && conn.inflight < config.max_inflight
        && conn.wbuf.len() - conn.wpos < config.write_pause
}

/// Write as much of the buffer as the kernel accepts right now.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn test_conn() -> Conn {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: 0,
            parked: VecDeque::new(),
            last_rx: Instant::now(),
            state: ConnState::Open,
            registered: (true, false),
            bucket: None,
        }
    }

    #[test]
    fn max_frame_is_clamped_to_the_length_prefix_ceiling() {
        let over = NetConfig { max_frame: usize::MAX, ..NetConfig::default() }.normalized();
        assert_eq!(over.max_frame, u32::MAX as usize);
        let under = NetConfig::default().normalized();
        assert_eq!(under.max_frame, DEFAULT_MAX_FRAME);
    }

    #[test]
    fn idle_sweep_spares_a_connection_mid_flush() {
        let mut conn = test_conn();
        let idle = Duration::from_millis(100);
        let stale = conn.last_rx + Duration::from_secs(60);

        // Quiet past the timeout with nothing pending: sweepable.
        assert!(idle_sweepable(&conn, stale, idle));
        // Not yet past the timeout: spared.
        assert!(!idle_sweepable(&conn, conn.last_rx, idle));

        // A reply the kernel has not yet accepted must never be cut.
        conn.wbuf = vec![0u8; 8];
        conn.wpos = 3;
        assert!(!idle_sweepable(&conn, stale, idle), "mid-flush reply would be truncated");
        // Fully flushed: sweepable again.
        conn.wpos = conn.wbuf.len();
        assert!(idle_sweepable(&conn, stale, idle));

        // In-flight work or parked requests also exempt the connection.
        conn.wbuf.clear();
        conn.wpos = 0;
        conn.inflight = 1;
        assert!(!idle_sweepable(&conn, stale, idle));
        conn.inflight = 0;
        conn.parked.push_back((1, Tensor::zeros(&[1]), None));
        assert!(!idle_sweepable(&conn, stale, idle));
    }

    #[test]
    fn token_bucket_admits_burst_then_meters_by_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, Some(2.0), t0);
        assert!(b.peek(t0).is_ok());
        b.take();
        assert!(b.peek(t0).is_ok());
        b.take();
        let wait = b.peek(t0).expect_err("burst exhausted");
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100), "{wait:?}");
        // One token exists after 1/rate seconds...
        assert!(b.peek(t0 + Duration::from_millis(100)).is_ok());
        b.take();
        // ...and tokens never pile up past the burst, however long idle.
        let much_later = t0 + Duration::from_secs(3600);
        assert!(b.peek(much_later).is_ok());
        b.take();
        assert!(b.peek(much_later).is_ok());
        b.take();
        assert!(b.peek(much_later).is_err(), "only `burst` tokens accumulate");
    }

    #[test]
    fn token_bucket_burst_defaults_to_rate_with_a_floor_of_one() {
        let t0 = Instant::now();
        let mut whole = TokenBucket::new(5.0, None, t0);
        for _ in 0..5 {
            assert!(whole.peek(t0).is_ok());
            whole.take();
        }
        assert!(whole.peek(t0).is_err());
        // A sub-1/s rate still admits one request at a time.
        let mut slow = TokenBucket::new(0.5, None, t0);
        assert!(slow.peek(t0).is_ok());
        slow.take();
        assert!(slow.peek(t0).is_err());
        assert!(slow.peek(t0 + Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn retry_hints_clamp_into_the_wire_field() {
        assert_eq!(clamp_retry_us(Duration::ZERO), 1, "nonempty hint never rounds to none");
        assert_eq!(clamp_retry_us(Duration::from_nanos(1)), 1);
        assert_eq!(clamp_retry_us(Duration::from_micros(12_500)), 12_500);
        assert_eq!(clamp_retry_us(Duration::from_secs(1 << 40)), u32::MAX);
        match err_reply(7, &ServeError::Overloaded { retry_after: Duration::from_millis(3) }) {
            Message::InferErr { req_id: 7, code: ErrCode::Overloaded, retry_after_us, .. } => {
                assert_eq!(retry_after_us, 3_000);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        match err_reply(8, &ServeError::DeadlineExceeded) {
            Message::InferErr { retry_after_us: 0, code: ErrCode::DeadlineExceeded, .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
}
