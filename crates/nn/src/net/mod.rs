//! Cross-process serving: a TCP front end for the batch server.
//!
//! Everything below `da_nn::serve` assumes the caller shares the server's
//! address space. This module is the boundary where that stops being true:
//! a hand-rolled non-blocking reactor ([`server`]) accepts TCP clients,
//! speaks a minimal length-prefixed binary protocol ([`frame`]), and feeds
//! the same bounded queue in-process callers use — so a remote `INFER` is
//! bit-identical to a local [`crate::serve::BatchServer::logits`] call,
//! micro-batched with whatever else is in flight.
//!
//! # Layering
//!
//! ```text
//!   net::client::Client ── TCP ──▶ net::server::NetServer (reactor thread)
//!                                         │ try_submit_with(…callback…)
//!                                         ▼
//!                                  serve::BatchServer (bounded queue)
//!                                         │ micro-batches
//!                                         ▼
//!                                  engine::InferencePlan replicas
//! ```
//!
//! * [`frame`] — the wire format: framing, message codec, hostile-input
//!   bounds. Pure functions over byte slices; compiled and tested on every
//!   platform.
//! * [`server`] — the reactor: epoll/poll readiness loop (via the
//!   `crates/shims/polling` shim), partial-read/-write handling,
//!   per-client backpressure, graceful drain. Unix-only.
//! * [`client`] — the blocking reference client used by tests, the
//!   loopback load generator, and the CI hammer. Unix-gated only because
//!   it is useless without a server to dial.
//!
//! The binary that ties this to a `.daplan` snapshot on disk is
//! `src/bin/da-serve.rs` at the workspace root.
//!
//! # Self-healing operations
//!
//! The wire protocol carries the runtime's robustness features end to end
//! (see `SERVING.md` at the workspace root for the ops view):
//!
//! * **Per-request deadlines** — `INFER` frames carry a microsecond budget
//!   (`0` defers to the server's [`crate::serve::ServeConfig`] default);
//!   requests that expire before execution come back as
//!   [`ErrCode::DeadlineExceeded`] instead of queueing forever.
//! * **Hot snapshot reload** — a `RELOAD` frame (or `SIGHUP` to
//!   `da-serve`, via [`NetHandle::reload`]) re-maps a `.daplan` snapshot
//!   and atomically swaps it in without dropping a connection. The
//!   replacement is fully validated first: a corrupt file is rejected in
//!   the `RELOAD_REPLY` while the old plan keeps serving.
//! * **Worker supervision** — a worker panic mid-batch fails only that
//!   batch's requests (typed error replies, never a hang); the `STATS`
//!   reply exposes the restart count, the deadline-shed count, and the
//!   plan-pool generation.
//! * **Overload control** — token-bucket admission ([`NetConfig::rate`],
//!   [`NetConfig::conn_rate`]) and deadline-aware load shedding refuse
//!   excess traffic with typed `Overloaded` replies carrying a
//!   `retry_after_us` hint (which [`RobustClient`] honors); under
//!   sustained shed pressure the batch server can fail over to a cheaper
//!   fallback plan, flagging each such reply `degraded`. The `STATS`
//!   reply is a forward-compatible counter list ([`frame::stats`]) so new
//!   counters never break old clients.
//!
//! # Why not an async runtime?
//!
//! The serving path's latency budget is dominated by the batch flush
//! deadline (microseconds to milliseconds), not socket readiness
//! dispatch. One reactor thread multiplexing all connections is enough to
//! saturate the worker pool, keeps the dependency surface at zero (the
//! build environment has no registry access), and makes the
//! concurrency story auditable: every socket is owned by exactly one
//! thread, and the only cross-thread traffic is the completion list +
//! poller wakeup pair documented in [`server`].

pub mod frame;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod server;

pub use frame::{ErrCode, FrameDecoder, FrameError, Message, DEFAULT_MAX_FRAME, MAX_RANK};

#[cfg(unix)]
pub use client::{Client, InferRefusal, InferReply, RetryPolicy, RobustClient, ServerStats};
#[cfg(unix)]
pub use server::{NetConfig, NetHandle, NetServer, NetStats};
