//! Softmax and cross-entropy loss.

use da_tensor::Tensor;

/// Index of the largest logit in one row, **last** maximum winning ties —
/// the single argmax definition shared by every prediction path
/// (`Network::predict`, the serving engine, the attack harness), so their
/// tie/NaN behavior cannot drift apart.
///
/// # Panics
///
/// Panics on an empty row or non-comparable (NaN) logits.
///
/// # Examples
///
/// ```
/// use da_nn::loss::argmax_logits;
///
/// assert_eq!(argmax_logits(&[0.1, 0.7, 0.2]), 1);
/// assert_eq!(argmax_logits(&[0.7, 0.7]), 1); // last max wins
/// ```
pub fn argmax_logits(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

/// Numerically stable softmax over the last axis of a `[N, K]` logit matrix.
///
/// # Examples
///
/// ```
/// use da_nn::loss::softmax;
/// use da_tensor::Tensor;
///
/// let p = softmax(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]));
/// for &v in p.data() {
///     assert!((v - 1.0 / 3.0).abs() < 1e-6);
/// }
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "softmax expects [N, K]");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (j, e) in exps.into_iter().enumerate() {
            out.data_mut()[i * k + j] = e / sum;
        }
    }
    out
}

/// Mean cross-entropy of `[N, K]` logits against integer labels, returning
/// `(loss, ∂loss/∂logits)`.
///
/// # Panics
///
/// Panics if `labels.len() != N` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "one label per row");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of {k} classes");
        let p = probs.data()[i * k + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + label] -= 1.0;
    }
    grad.scale(1.0 / n as f32);
    (loss / n as f32, grad)
}

/// Classification confidence `C = p[label] − max_{j≠label} p[j]` (paper §6).
///
/// # Panics
///
/// Panics if `probs` is not a rank-1 distribution or `label` out of range.
pub fn confidence(probs: &[f32], label: usize) -> f32 {
    assert!(label < probs.len(), "label out of range");
    let runner_up = probs
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != label)
        .map(|(_, &p)| p)
        .fold(f32::NEG_INFINITY, f32::max);
    probs[label] - runner_up
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn softmax_rows_are_distributions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let logits = Tensor::randn(&[5, 7], 3.0, &mut rng);
        let p = softmax(&logits);
        for i in 0..5 {
            let row = &p.data()[i * 7..(i + 1) * 7];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        for (x, y) in softmax(&a).data().iter().zip(softmax(&b).data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        let (wrong_loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(wrong_loss > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [2usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let numeric = (softmax_cross_entropy(&lp, &labels).0
                - softmax_cross_entropy(&lm, &labels).0)
                / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "at {i}: numeric {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // Softmax-CE gradients are mean-free per row.
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.0, 0.1, -0.1], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn confidence_definition() {
        assert!((confidence(&[0.7, 0.2, 0.1], 0) - 0.5).abs() < 1e-6);
        assert!((confidence(&[0.5, 0.5], 0) - 0.0).abs() < 1e-6);
        assert!(confidence(&[0.1, 0.9], 0) < 0.0, "misclassified: negative");
    }
}
