//! Zero-copy plan snapshots: save compiled [`InferencePlan`]s to a
//! versioned, checksummed binary file and map them back in with near-zero
//! cold start.
//!
//! Compiling a plan is expensive: the f32 path re-decomposes every weight,
//! and the quantized paths run a full f32 calibration pass and then build
//! one 256×256 [`ProductLut`] per distinct quantizer pair — 65 536 scalar
//! `multiply` calls each, which for gate-level wirings means 65 536 full
//! gate-level evaluations *per table*. A snapshot pays that cost once:
//! loading performs **no calibration and no LUT build**, and the big flat
//! payloads (product tables, weight matrices, code tensors) are not even
//! copied — the loaded plan's [`da_arith::Storage`] slices borrow the
//! `mmap`ed file directly, so N workers (or N processes, via the page
//! cache) share one physical copy of every table.
//!
//! # File format (version 1)
//!
//! All integers and floats are **little-endian**; `f32` payloads are raw
//! IEEE-754 bit patterns, so the round trip is bit-exact. Layout:
//!
//! ```text
//! offset 0, 64 bytes — header
//!     0..8    magic           b"DASNAPv1"
//!     8..12   version         u32 (currently 1)
//!     12..16  section count   u32 (META + one per payload blob)
//!     16..24  file length     u64 (must equal the real file length)
//!     24..32  checksum        u64 FNV-1a over the whole file with this
//!                             field read as zero (see [`file_checksum`])
//!     32..64  reserved        zeros
//! offset 64 — section table, 16 bytes per section
//!     0..8    section offset  u64, 64-byte aligned from file start
//!     8..16   section length  u64, bytes
//! section 0 — META (parsed once at load; everything small lives here)
//!     multiplier name, plan precision, the LUT registry (quantizer pairs
//!     + payload section index per distinct table), and the step list
//!     (structure, shapes, biases, quantizers, payload section indices)
//! sections 1.. — payload blobs, each 64-byte aligned
//!     ProductLut/ProductLut4 tables (f32), f32 weight matrices,
//!     u8 weight-code tensors
//! ```
//!
//! **Alignment.** Every section offset is a multiple of 64 and the mapping
//! base is at least 64-byte aligned (page-aligned `mmap`, or the shim's
//! aligned heap fallback), so `f32` payload views are always valid; this is
//! asserted again when each typed view is constructed and surfaces as
//! [`SnapshotError::Misaligned`] for hostile offsets.
//!
//! **Integrity.** The checksum covers every byte of the file, so
//! truncation, bit flips, and section-table tampering all surface as typed
//! errors ([`SnapshotError`]) at load — never as a panic in a serving
//! worker. Structural validation (section bounds, payload lengths vs layer
//! shapes, quantizer validity, step/precision consistency) runs before the
//! plan is assembled, so a plan that loads successfully is safe to serve.
//!
//! **Sharing.** Steps that shared one `Arc<ProductLut>` in the compiled
//! plan reference the same payload section in the file and are re-interned
//! into one `Arc` at load — the compile-time `LutCache` dedup survives the
//! round trip (observable through
//! [`InferencePlan::product_lut_sharing`]).
//!
//! # Warm pools
//!
//! [`PlanCache`] is the compile-once/map-everywhere front end: keyed
//! snapshot files in one directory, with [`PlanCache::get_or_insert_with`]
//! compiling on miss and mapping on hit. A rotation-style defense can
//! precompile one snapshot per [`MultiplierKind`] and later swap serving
//! pools in milliseconds (see `examples/snapshot.rs`).

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use da_arith::quantized::{CODES, CODES4};
use da_arith::storage::{ByteRegion, Storage, StorageError};
use da_arith::{
    Lut4Order, Multiplier, MultiplierKind, PreparedOperands, ProductLut, ProductLut4, QuantParams,
    QuantParams4, RowClass,
};
use memmap2::Mmap;

use crate::engine::{ConvWeights, InferencePlan, PlanPrecision, QOut, Step};

/// Magic bytes at offset 0 of every snapshot file.
pub const MAGIC: [u8; 8] = *b"DASNAPv1";

/// Current format version (see the module docs for the layout it pins).
pub const VERSION: u32 = 1;

/// Section (and payload) alignment in bytes.
pub const ALIGN: usize = 64;

const HEADER_LEN: usize = 64;
const CHECKSUM_RANGE: std::ops::Range<usize> = 24..32;

/// Why a snapshot could not be saved or loaded. Every hostile-input path
/// lands here — loading never panics and never hands a corrupt plan to a
/// serving worker.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem or mapping failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion(u32),
    /// The file is shorter than its header/section table claims.
    Truncated,
    /// The whole-file checksum does not match (bit flips, tampering, or a
    /// torn write).
    ChecksumMismatch,
    /// A section offset violates the 64-byte alignment the zero-copy views
    /// require.
    Misaligned,
    /// Structurally invalid contents (bad section index, payload length
    /// inconsistent with the recorded shapes, invalid quantizer, ...).
    Corrupt(&'static str),
    /// The snapshot names a multiplier this build cannot reconstruct.
    UnknownMultiplier(String),
    /// The plan (or host) cannot be snapshotted: custom multiplier objects
    /// have no stable serial name, and big-endian hosts would break the
    /// little-endian zero-copy layout.
    Unsupported(&'static str),
    /// A [`PlanCache`] key contains path separators or other characters
    /// outside `[A-Za-z0-9._-]`.
    BadKey(String),
    /// A hot-reload replacement's serving interface (input/output shapes or
    /// precision family) differs from the plan it would replace — swapping
    /// it in would silently change what connected clients get back.
    Incompatible(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a plan snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Misaligned => write!(f, "snapshot section is misaligned"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::UnknownMultiplier(name) => {
                write!(f, "snapshot requires unknown multiplier {name:?}")
            }
            SnapshotError::Unsupported(what) => write!(f, "cannot snapshot: {what}"),
            SnapshotError::BadKey(key) => write!(f, "invalid plan-cache key {key:?}"),
            SnapshotError::Incompatible(what) => {
                write!(f, "incompatible replacement plan: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl From<StorageError> for SnapshotError {
    fn from(e: StorageError) -> SnapshotError {
        match e {
            StorageError::OutOfBounds => SnapshotError::Truncated,
            StorageError::Misaligned => SnapshotError::Misaligned,
        }
    }
}

/// The whole-file checksum the header stores: 64-bit FNV-1a over every byte
/// of the file, with the checksum field itself (bytes 24..32) read as zero.
/// Public so tooling (and hostile-file tests) can recompute it after
/// patching bytes.
pub fn file_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &b) in bytes.iter().enumerate() {
        let b = if CHECKSUM_RANGE.contains(&i) { 0 } else { b };
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Meta encoding helpers
// ---------------------------------------------------------------------------

/// Little-endian append-only buffer for the META section.
#[derive(Default)]
struct MetaBuf {
    buf: Vec<u8>,
}

impl MetaBuf {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn dim(&mut self, v: usize) -> Result<(), SnapshotError> {
        let v = u32::try_from(v)
            .map_err(|_| SnapshotError::Unsupported("dimension exceeds u32 range"))?;
        self.u32(v);
        Ok(())
    }
    fn f32s(&mut self, v: &[f32]) -> Result<(), SnapshotError> {
        self.dim(v.len())?;
        for &x in v {
            self.f32(x);
        }
        Ok(())
    }
    fn str(&mut self, s: &str) -> Result<(), SnapshotError> {
        self.dim(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
    fn quant(&mut self, q: QuantParams) {
        self.f32(q.scale());
        self.u8(q.zero_point());
    }
    fn quant4(&mut self, q: QuantParams4) {
        self.f32(q.scale());
        self.u8(q.zero_point());
    }
}

/// Bounds-checked little-endian reader over the META section; every overrun
/// is a typed [`SnapshotError::Corrupt`].
struct MetaCursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> MetaCursor<'a> {
    fn new(b: &'a [u8]) -> MetaCursor<'a> {
        MetaCursor { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Corrupt("meta overrun"))?;
        if end > self.b.len() {
            return Err(SnapshotError::Corrupt("meta overrun"));
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn dim(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.u32()? as usize)
    }
    fn f32s(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.dim()?;
        // Guarded by the meta section length: n floats need 4n bytes.
        if n > self.b.len().saturating_sub(self.pos) / 4 {
            return Err(SnapshotError::Corrupt("meta overrun"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.dim()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string in meta"))
    }
    fn quant(&mut self) -> Result<QuantParams, SnapshotError> {
        let scale = self.f32()?;
        let zp = self.u8()?;
        QuantParams::from_parts(scale, zp).ok_or(SnapshotError::Corrupt("invalid int8 quantizer"))
    }
    fn quant4(&mut self) -> Result<QuantParams4, SnapshotError> {
        let scale = self.f32()?;
        let zp = self.u8()?;
        QuantParams4::from_parts(scale, zp).ok_or(SnapshotError::Corrupt("invalid int4 quantizer"))
    }
    /// Bytes not yet consumed — the hard ceiling for any count field that
    /// claims more entries than the meta section could possibly encode.
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
    fn finished(&self) -> bool {
        self.pos == self.b.len()
    }
}

// Step tags (format version 1; append-only).
const TAG_CONV: u8 = 0;
const TAG_DENSE: u8 = 1;
const TAG_MAXPOOL: u8 = 2;
const TAG_RELU: u8 = 3;
const TAG_FLATTEN: u8 = 4;
const TAG_BATCHNORM: u8 = 5;
const TAG_QUANTACT: u8 = 6;
const TAG_QUANTIZE_INPUT: u8 = 7;
const TAG_QCONV: u8 = 8;
const TAG_QDENSE: u8 = 9;
const TAG_QCONV4: u8 = 10;
const TAG_QDENSE4: u8 = 11;
const TAG_QMAXPOOL: u8 = 12;
const TAG_QRELU: u8 = 13;
const TAG_QDEQUANTIZE: u8 = 14;

// QOut tags.
const QOUT_FLOAT: u8 = 0;
const QOUT_CODES: u8 = 1;

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// A payload blob queued for its own aligned section.
enum Blob<'a> {
    F32Borrowed(&'a [f32]),
    F32Owned(Vec<f32>),
    U8(&'a [u8]),
}

impl Blob<'_> {
    fn bytes(&self) -> &[u8] {
        match self {
            Blob::F32Borrowed(v) => f32_bytes(v),
            Blob::F32Owned(v) => f32_bytes(v),
            Blob::U8(v) => v,
        }
    }
}

/// View an f32 slice as raw bytes. On the little-endian hosts the format
/// supports, the in-memory representation *is* the file representation.
fn f32_bytes(v: &[f32]) -> &[u8] {
    // SAFETY: f32 has no padding and every bit pattern is valid as bytes.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// Queue a payload blob; section 0 is META, so blob `i` becomes section
/// `i + 1`.
fn push_blob<'a>(blobs: &mut Vec<Blob<'a>>, b: Blob<'a>) -> Result<u32, SnapshotError> {
    let section = u32::try_from(blobs.len() + 1)
        .map_err(|_| SnapshotError::Unsupported("too many sections"))?;
    blobs.push(b);
    Ok(section)
}

/// Serialize `plan` into the version-1 snapshot byte image.
fn encode_plan(plan: &InferencePlan) -> Result<Vec<u8>, SnapshotError> {
    if cfg!(target_endian = "big") {
        return Err(SnapshotError::Unsupported("big-endian hosts"));
    }
    let mult_name = match &plan.multiplier {
        None => String::new(),
        Some(m) => {
            let name = m.name();
            if !MultiplierKind::ALL.iter().any(|k| k.as_str() == name) {
                return Err(SnapshotError::UnknownMultiplier(name.to_string()));
            }
            name.to_string()
        }
    };

    let mut blobs: Vec<Blob<'_>> = Vec::new();
    // LUT interning by Arc identity: steps that share a table in memory
    // share one payload section in the file.
    let mut lut8: Vec<(*const ProductLut, u32)> = Vec::new();
    let mut lut4: Vec<(*const ProductLut4, u32)> = Vec::new();
    let mut lut8_meta = MetaBuf::default();
    let mut lut4_meta = MetaBuf::default();

    let mut steps = MetaBuf::default();
    steps.dim(plan.steps.len())?;
    for step in &plan.steps {
        match step {
            Step::Conv { weights, bias, cout, cin, kh, kw, stride, pad, fuse_relu } => {
                let blob = match weights {
                    ConvWeights::Raw(w) => Blob::F32Borrowed(w.as_slice()),
                    // Prepared operands keep the original value of every
                    // weight; the decomposition is recomputed at load.
                    ConvWeights::Prepared(p) => Blob::F32Owned(
                        (0..p.rows()).flat_map(|r| p.row(r).iter().map(|op| op.value())).collect(),
                    ),
                };
                let section = push_blob(&mut blobs, blob)?;
                steps.u8(TAG_CONV);
                steps.u32(section);
                steps.f32s(bias)?;
                for &d in &[*cout, *cin, *kh, *kw, *stride, *pad] {
                    steps.dim(d)?;
                }
                steps.u8(u8::from(*fuse_relu));
            }
            Step::Dense { wt, bias, in_features, out_features, fuse_relu, .. } => {
                let section = push_blob(&mut blobs, Blob::F32Borrowed(wt.as_slice()))?;
                steps.u8(TAG_DENSE);
                steps.u32(section);
                steps.f32s(bias)?;
                steps.dim(*in_features)?;
                steps.dim(*out_features)?;
                steps.u8(u8::from(*fuse_relu));
            }
            Step::MaxPool { window, stride } => {
                steps.u8(TAG_MAXPOOL);
                steps.dim(*window)?;
                steps.dim(*stride)?;
            }
            Step::Relu => steps.u8(TAG_RELU),
            Step::Flatten => steps.u8(TAG_FLATTEN),
            Step::BatchNorm { mean, denom, gamma, beta } => {
                steps.u8(TAG_BATCHNORM);
                steps.f32s(mean)?;
                steps.f32s(denom)?;
                steps.f32s(gamma)?;
                steps.f32s(beta)?;
            }
            Step::QuantAct { bits } => {
                steps.u8(TAG_QUANTACT);
                steps.u32(*bits);
            }
            Step::QuantizeInput { params } => {
                steps.u8(TAG_QUANTIZE_INPUT);
                steps.quant(*params);
            }
            Step::QConv { qweight, lut, bias, cout, cin, kh, kw, stride, pad, fuse_relu, out } => {
                let lut_idx = intern_lut8(&mut lut8, &mut lut8_meta, &mut blobs, lut)?;
                let section = push_blob(&mut blobs, Blob::U8(qweight.as_slice()))?;
                steps.u8(TAG_QCONV);
                steps.u32(section);
                steps.u32(lut_idx);
                steps.f32s(bias)?;
                for &d in &[*cout, *cin, *kh, *kw, *stride, *pad] {
                    steps.dim(d)?;
                }
                steps.u8(u8::from(*fuse_relu));
                encode_qout(&mut steps, out);
            }
            Step::QDense { qwt, lut, bias, in_features, out_features, fuse_relu, out } => {
                let lut_idx = intern_lut8(&mut lut8, &mut lut8_meta, &mut blobs, lut)?;
                let section = push_blob(&mut blobs, Blob::U8(qwt.as_slice()))?;
                steps.u8(TAG_QDENSE);
                steps.u32(section);
                steps.u32(lut_idx);
                steps.f32s(bias)?;
                steps.dim(*in_features)?;
                steps.dim(*out_features)?;
                steps.u8(u8::from(*fuse_relu));
                encode_qout(&mut steps, out);
            }
            Step::QConv4 {
                qweight_t,
                lut,
                bias,
                cout,
                cin,
                kh,
                kw,
                stride,
                pad,
                fuse_relu,
                out,
            } => {
                let lut_idx = intern_lut4(&mut lut4, &mut lut4_meta, &mut blobs, lut)?;
                let section = push_blob(&mut blobs, Blob::U8(qweight_t.as_slice()))?;
                steps.u8(TAG_QCONV4);
                steps.u32(section);
                steps.u32(lut_idx);
                steps.f32s(bias)?;
                for &d in &[*cout, *cin, *kh, *kw, *stride, *pad] {
                    steps.dim(d)?;
                }
                steps.u8(u8::from(*fuse_relu));
                encode_qout(&mut steps, out);
            }
            Step::QDense4 { qwt, lut, bias, in_features, out_features, fuse_relu, out } => {
                let lut_idx = intern_lut4(&mut lut4, &mut lut4_meta, &mut blobs, lut)?;
                let section = push_blob(&mut blobs, Blob::U8(qwt.as_slice()))?;
                steps.u8(TAG_QDENSE4);
                steps.u32(section);
                steps.u32(lut_idx);
                steps.f32s(bias)?;
                steps.dim(*in_features)?;
                steps.dim(*out_features)?;
                steps.u8(u8::from(*fuse_relu));
                encode_qout(&mut steps, out);
            }
            Step::QMaxPool { window, stride } => {
                steps.u8(TAG_QMAXPOOL);
                steps.dim(*window)?;
                steps.dim(*stride)?;
            }
            Step::QRelu { zero_point } => {
                steps.u8(TAG_QRELU);
                steps.u8(*zero_point);
            }
            Step::QDequantize { params } => {
                steps.u8(TAG_QDEQUANTIZE);
                steps.quant(*params);
            }
        }
    }

    // Assemble META: identity, LUT registries, then the step list.
    let mut meta = MetaBuf::default();
    meta.str(&mult_name)?;
    meta.u8(match plan.precision {
        PlanPrecision::F32 => 0,
        PlanPrecision::Int8 => 1,
        PlanPrecision::Int4Weights => 2,
    });
    meta.dim(lut8.len())?;
    meta.buf.extend_from_slice(&lut8_meta.buf);
    meta.dim(lut4.len())?;
    meta.buf.extend_from_slice(&lut4_meta.buf);
    meta.buf.extend_from_slice(&steps.buf);

    // Lay the file out: header, section table, META, aligned blobs.
    let section_count = 1 + blobs.len();
    let table_len = section_count * 16;
    let meta_off = align_up(HEADER_LEN + table_len, ALIGN);
    let mut sections: Vec<(usize, usize)> = vec![(meta_off, meta.buf.len())];
    let mut cursor = align_up(meta_off + meta.buf.len(), ALIGN);
    for blob in &blobs {
        let len = blob.bytes().len();
        sections.push((cursor, len));
        cursor = align_up(cursor + len, ALIGN);
    }
    let file_len = cursor.max(meta_off + meta.buf.len());

    let mut out = vec![0u8; file_len];
    out[0..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&VERSION.to_le_bytes());
    out[12..16].copy_from_slice(
        &u32::try_from(section_count)
            .map_err(|_| SnapshotError::Unsupported("too many sections"))?
            .to_le_bytes(),
    );
    out[16..24].copy_from_slice(&(file_len as u64).to_le_bytes());
    for (i, (off, len)) in sections.iter().enumerate() {
        let at = HEADER_LEN + i * 16;
        out[at..at + 8].copy_from_slice(&(*off as u64).to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&(*len as u64).to_le_bytes());
    }
    out[meta_off..meta_off + meta.buf.len()].copy_from_slice(&meta.buf);
    for (blob, (off, len)) in blobs.iter().zip(&sections[1..]) {
        out[*off..*off + *len].copy_from_slice(blob.bytes());
    }
    let checksum = file_checksum(&out);
    out[CHECKSUM_RANGE].copy_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

fn encode_qout(meta: &mut MetaBuf, out: &QOut) {
    match out {
        QOut::Float => meta.u8(QOUT_FLOAT),
        QOut::Codes(params) => {
            meta.u8(QOUT_CODES);
            meta.quant(*params);
        }
    }
}

fn intern_lut8<'a>(
    seen: &mut Vec<(*const ProductLut, u32)>,
    meta: &mut MetaBuf,
    blobs: &mut Vec<Blob<'a>>,
    lut: &'a Arc<ProductLut>,
) -> Result<u32, SnapshotError> {
    let ptr = Arc::as_ptr(lut);
    if let Some((_, idx)) = seen.iter().find(|(p, _)| *p == ptr) {
        return Ok(*idx);
    }
    let section = u32::try_from(blobs.len() + 1)
        .map_err(|_| SnapshotError::Unsupported("too many sections"))?;
    blobs.push(Blob::F32Borrowed(lut.table()));
    let idx = u32::try_from(seen.len()).expect("fewer LUTs than sections");
    meta.quant(lut.a_params());
    meta.quant(lut.b_params());
    meta.u32(section);
    seen.push((ptr, idx));
    Ok(idx)
}

fn intern_lut4<'a>(
    seen: &mut Vec<(*const ProductLut4, u32)>,
    meta: &mut MetaBuf,
    blobs: &mut Vec<Blob<'a>>,
    lut: &'a Arc<ProductLut4>,
) -> Result<u32, SnapshotError> {
    let ptr = Arc::as_ptr(lut);
    if let Some((_, idx)) = seen.iter().find(|(p, _)| *p == ptr) {
        return Ok(*idx);
    }
    let section = u32::try_from(blobs.len() + 1)
        .map_err(|_| SnapshotError::Unsupported("too many sections"))?;
    blobs.push(Blob::F32Borrowed(lut.table()));
    let idx = u32::try_from(seen.len()).expect("fewer LUTs than sections");
    meta.quant(lut.act_params());
    meta.quant4(lut.w_params());
    meta.u8(match lut.order() {
        Lut4Order::WeightsLeft => 0,
        Lut4Order::ActivationsLeft => 1,
    });
    meta.u32(section);
    seen.push((ptr, idx));
    Ok(idx)
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// One validated section-table entry.
#[derive(Clone, Copy)]
struct Section {
    offset: usize,
    len: usize,
}

/// Validate the container (magic, version, length, checksum, section table)
/// and return the section list.
fn validate_container(bytes: &[u8]) -> Result<Vec<Section>, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let file_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if file_len != bytes.len() as u64 {
        return Err(SnapshotError::Truncated);
    }
    let stored = u64::from_le_bytes(bytes[CHECKSUM_RANGE].try_into().expect("8 bytes"));
    if stored != file_checksum(bytes) {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let table_end = HEADER_LEN
        .checked_add(count.checked_mul(16).ok_or(SnapshotError::Corrupt("section count"))?)
        .ok_or(SnapshotError::Corrupt("section count"))?;
    if count == 0 || table_end > bytes.len() {
        return Err(SnapshotError::Truncated);
    }
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_LEN + i * 16;
        let offset = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
        let (offset, len) = (
            usize::try_from(offset).map_err(|_| SnapshotError::Truncated)?,
            usize::try_from(len).map_err(|_| SnapshotError::Truncated)?,
        );
        if offset % ALIGN != 0 {
            return Err(SnapshotError::Misaligned);
        }
        let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        sections.push(Section { offset, len });
    }
    Ok(sections)
}

/// Shared state while decoding steps.
struct Decoder<'a> {
    region: Arc<dyn ByteRegion>,
    sections: &'a [Section],
    lut8: Vec<Arc<ProductLut>>,
    lut4: Vec<Arc<ProductLut4>>,
}

impl Decoder<'_> {
    /// The section for 1-based payload index `idx`, rejecting META (0) and
    /// out-of-range indices.
    fn payload(&self, idx: u32) -> Result<Section, SnapshotError> {
        let idx = idx as usize;
        if idx == 0 || idx >= self.sections.len() {
            return Err(SnapshotError::Corrupt("payload section index out of range"));
        }
        Ok(self.sections[idx])
    }

    /// A zero-copy `f32` window over payload section `idx`, which must hold
    /// exactly `len` floats.
    fn f32_payload(&self, idx: u32, len: usize) -> Result<Storage<f32>, SnapshotError> {
        let s = self.payload(idx)?;
        if s.len != len.checked_mul(4).ok_or(SnapshotError::Corrupt("payload length"))? {
            return Err(SnapshotError::Corrupt("payload length mismatch"));
        }
        Ok(Storage::mapped(self.region.clone(), s.offset, len)?)
    }

    /// A zero-copy `u8` window over payload section `idx`, which must hold
    /// exactly `len` bytes.
    fn u8_payload(&self, idx: u32, len: usize) -> Result<Storage<u8>, SnapshotError> {
        let s = self.payload(idx)?;
        if s.len != len {
            return Err(SnapshotError::Corrupt("payload length mismatch"));
        }
        Ok(Storage::mapped(self.region.clone(), s.offset, len)?)
    }

    fn lut8(&self, idx: u32) -> Result<Arc<ProductLut>, SnapshotError> {
        self.lut8.get(idx as usize).cloned().ok_or(SnapshotError::Corrupt("LUT index out of range"))
    }

    fn lut4(&self, idx: u32) -> Result<Arc<ProductLut4>, SnapshotError> {
        self.lut4.get(idx as usize).cloned().ok_or(SnapshotError::Corrupt("LUT index out of range"))
    }
}

fn decode_qout(c: &mut MetaCursor<'_>) -> Result<QOut, SnapshotError> {
    match c.u8()? {
        QOUT_FLOAT => Ok(QOut::Float),
        QOUT_CODES => Ok(QOut::Codes(c.quant()?)),
        _ => Err(SnapshotError::Corrupt("unknown QOut tag")),
    }
}

/// Read conv-shaped dims `[cout, cin, kh, kw, stride, pad]`, requiring the
/// first five to be nonzero (a zero stride or kernel would panic in shape
/// inference, not produce a typed error).
fn conv_dims(c: &mut MetaCursor<'_>) -> Result<[usize; 6], SnapshotError> {
    let mut d = [0usize; 6];
    for slot in d.iter_mut() {
        *slot = c.dim()?;
    }
    if d[..5].contains(&0) {
        return Err(SnapshotError::Corrupt("zero conv dimension"));
    }
    Ok(d)
}

/// `cout * cin * kh * kw` with overflow as a typed error.
fn conv_weight_len(d: &[usize; 6]) -> Result<usize, SnapshotError> {
    d[0].checked_mul(d[1])
        .and_then(|v| v.checked_mul(d[2]))
        .and_then(|v| v.checked_mul(d[3]))
        .ok_or(SnapshotError::Corrupt("conv shape overflow"))
}

/// Decode and validate the plan image (already container-validated).
fn decode_plan(bytes: &[u8], region: Arc<dyn ByteRegion>) -> Result<InferencePlan, SnapshotError> {
    if cfg!(target_endian = "big") {
        return Err(SnapshotError::Unsupported("big-endian hosts"));
    }
    let sections = validate_container(bytes)?;
    let meta_sec = sections[0];
    let mut c = MetaCursor::new(&bytes[meta_sec.offset..meta_sec.offset + meta_sec.len]);

    let mult_name = c.str()?;
    let multiplier: Option<Arc<dyn Multiplier>> = if mult_name.is_empty() {
        None
    } else {
        match MultiplierKind::ALL.iter().find(|k| k.as_str() == mult_name) {
            Some(kind) => Some(kind.build()),
            None => return Err(SnapshotError::UnknownMultiplier(mult_name)),
        }
    };
    let precision = match c.u8()? {
        0 => PlanPrecision::F32,
        1 => PlanPrecision::Int8,
        2 => PlanPrecision::Int4Weights,
        _ => return Err(SnapshotError::Corrupt("unknown precision tag")),
    };

    let mut dec = Decoder { region, sections: &sections, lut8: Vec::new(), lut4: Vec::new() };

    // LUT registries: one shared Arc per table section, so the compiled
    // plan's interning survives the round trip.
    // Registry counts are bounded two ways before any entry decodes: each
    // entry names a distinct table section (so the count can never exceed
    // the section table), and each entry occupies a fixed minimum of meta
    // bytes (so a hostile count cannot exceed what the meta section could
    // physically hold). Both are checks against bytes that provably exist
    // in the file — nothing is allocated on the claimed count alone.
    let n8 = c.dim()?;
    if n8 > sections.len() || n8 > c.remaining() / 14 {
        return Err(SnapshotError::Corrupt("LUT registry larger than section table"));
    }
    for _ in 0..n8 {
        let a = c.quant()?;
        let b = c.quant()?;
        let table = dec.f32_payload(c.u32()?, CODES * CODES)?;
        dec.lut8.push(Arc::new(ProductLut::from_parts(table, a, b)));
    }
    let n4 = c.dim()?;
    // ≥15 meta bytes per int4 entry: two quantizers, an order tag, a
    // section index.
    if n4 > sections.len() || n4 > c.remaining() / 15 {
        return Err(SnapshotError::Corrupt("LUT registry larger than section table"));
    }
    for _ in 0..n4 {
        let act = c.quant()?;
        let w = c.quant4()?;
        let order = match c.u8()? {
            0 => Lut4Order::WeightsLeft,
            1 => Lut4Order::ActivationsLeft,
            _ => return Err(SnapshotError::Corrupt("unknown Lut4Order tag")),
        };
        let table = dec.f32_payload(c.u32()?, CODES * CODES4)?;
        dec.lut4.push(Arc::new(ProductLut4::from_parts(table, act, w, order)));
    }

    let n_steps = c.dim()?;
    // Every step encoding starts with a tag byte, so the count can never
    // exceed the meta bytes still unread.
    if n_steps > c.remaining() {
        return Err(SnapshotError::Corrupt("step count larger than meta"));
    }
    // Capacity hint only, clamped: `n_steps` is bounded by real file bytes,
    // but a hostile meta section could still claim enough steps to reserve
    // hundreds of MB up front. Growth past the clamp is amortised as steps
    // actually decode.
    let mut steps = Vec::with_capacity(n_steps.min(256));
    for _ in 0..n_steps {
        let step = match c.u8()? {
            TAG_CONV => {
                let section = c.u32()?;
                let bias = c.f32s()?;
                let d = conv_dims(&mut c)?;
                let fuse_relu = c.u8()? != 0;
                if bias.len() != d[0] {
                    return Err(SnapshotError::Corrupt("conv bias length"));
                }
                let wlen = conv_weight_len(&d)?;
                let wmat = dec.f32_payload(section, wlen)?;
                let weights = match &multiplier {
                    // The kernel path consumes pre-decomposed operands;
                    // rebuilding them is cheap and deterministic, and
                    // `PreparedOperand::value` preserved the exact f32s.
                    Some(_) => ConvWeights::Prepared(PreparedOperands::from_matrix(
                        wmat.as_slice(),
                        d[0],
                        d[1] * d[2] * d[3],
                    )),
                    None => ConvWeights::Raw(wmat),
                };
                Step::Conv {
                    weights,
                    bias,
                    cout: d[0],
                    cin: d[1],
                    kh: d[2],
                    kw: d[3],
                    stride: d[4],
                    pad: d[5],
                    fuse_relu,
                }
            }
            TAG_DENSE => {
                let section = c.u32()?;
                let bias = c.f32s()?;
                let in_features = c.dim()?;
                let out_features = c.dim()?;
                let fuse_relu = c.u8()? != 0;
                if in_features == 0 || out_features == 0 {
                    return Err(SnapshotError::Corrupt("zero dense dimension"));
                }
                if bias.len() != out_features {
                    return Err(SnapshotError::Corrupt("dense bias length"));
                }
                let wlen = in_features
                    .checked_mul(out_features)
                    .ok_or(SnapshotError::Corrupt("dense shape overflow"))?;
                let wt = dec.f32_payload(section, wlen)?;
                // Row classes are a compile-time acceleration, rebuilt here
                // exactly as `InferencePlan::compile` builds them.
                let wt_class = match &multiplier {
                    Some(m) => {
                        let classifier = m.batch_kernel();
                        wt.as_slice()
                            .chunks(out_features)
                            .map(|r| classifier.classify_rhs(r))
                            .collect()
                    }
                    None => vec![RowClass::Normal; in_features],
                };
                Step::Dense { wt, wt_class, bias, in_features, out_features, fuse_relu }
            }
            TAG_MAXPOOL => {
                let window = c.dim()?;
                let stride = c.dim()?;
                if window == 0 || stride == 0 {
                    return Err(SnapshotError::Corrupt("zero pool dimension"));
                }
                Step::MaxPool { window, stride }
            }
            TAG_RELU => Step::Relu,
            TAG_FLATTEN => Step::Flatten,
            TAG_BATCHNORM => {
                let mean = c.f32s()?;
                let denom = c.f32s()?;
                let gamma = c.f32s()?;
                let beta = c.f32s()?;
                if mean.len() != denom.len()
                    || mean.len() != gamma.len()
                    || mean.len() != beta.len()
                {
                    return Err(SnapshotError::Corrupt("batch-norm length mismatch"));
                }
                Step::BatchNorm { mean, denom, gamma, beta }
            }
            TAG_QUANTACT => {
                let bits = c.u32()?;
                if bits == 0 || bits > 32 {
                    return Err(SnapshotError::Corrupt("quant-act bit width"));
                }
                Step::QuantAct { bits }
            }
            TAG_QUANTIZE_INPUT => Step::QuantizeInput { params: c.quant()? },
            TAG_QCONV => {
                let section = c.u32()?;
                let lut = dec.lut8(c.u32()?)?;
                let bias = c.f32s()?;
                let d = conv_dims(&mut c)?;
                let fuse_relu = c.u8()? != 0;
                let out = decode_qout(&mut c)?;
                if bias.len() != d[0] {
                    return Err(SnapshotError::Corrupt("conv bias length"));
                }
                let qweight = dec.u8_payload(section, conv_weight_len(&d)?)?;
                Step::QConv {
                    qweight,
                    lut,
                    bias,
                    cout: d[0],
                    cin: d[1],
                    kh: d[2],
                    kw: d[3],
                    stride: d[4],
                    pad: d[5],
                    fuse_relu,
                    out,
                }
            }
            TAG_QDENSE => {
                let section = c.u32()?;
                let lut = dec.lut8(c.u32()?)?;
                let bias = c.f32s()?;
                let in_features = c.dim()?;
                let out_features = c.dim()?;
                let fuse_relu = c.u8()? != 0;
                let out = decode_qout(&mut c)?;
                if in_features == 0 || out_features == 0 {
                    return Err(SnapshotError::Corrupt("zero dense dimension"));
                }
                if bias.len() != out_features {
                    return Err(SnapshotError::Corrupt("dense bias length"));
                }
                let wlen = in_features
                    .checked_mul(out_features)
                    .ok_or(SnapshotError::Corrupt("dense shape overflow"))?;
                let qwt = dec.u8_payload(section, wlen)?;
                Step::QDense { qwt, lut, bias, in_features, out_features, fuse_relu, out }
            }
            TAG_QCONV4 => {
                let section = c.u32()?;
                let lut = dec.lut4(c.u32()?)?;
                let bias = c.f32s()?;
                let d = conv_dims(&mut c)?;
                let fuse_relu = c.u8()? != 0;
                let out = decode_qout(&mut c)?;
                if bias.len() != d[0] {
                    return Err(SnapshotError::Corrupt("conv bias length"));
                }
                let qweight_t = dec.u8_payload(section, conv_weight_len(&d)?)?;
                Step::QConv4 {
                    qweight_t,
                    lut,
                    bias,
                    cout: d[0],
                    cin: d[1],
                    kh: d[2],
                    kw: d[3],
                    stride: d[4],
                    pad: d[5],
                    fuse_relu,
                    out,
                }
            }
            TAG_QDENSE4 => {
                let section = c.u32()?;
                let lut = dec.lut4(c.u32()?)?;
                let bias = c.f32s()?;
                let in_features = c.dim()?;
                let out_features = c.dim()?;
                let fuse_relu = c.u8()? != 0;
                let out = decode_qout(&mut c)?;
                if in_features == 0 || out_features == 0 {
                    return Err(SnapshotError::Corrupt("zero dense dimension"));
                }
                if bias.len() != out_features {
                    return Err(SnapshotError::Corrupt("dense bias length"));
                }
                let wlen = in_features
                    .checked_mul(out_features)
                    .ok_or(SnapshotError::Corrupt("dense shape overflow"))?;
                let qwt = dec.u8_payload(section, wlen)?;
                Step::QDense4 { qwt, lut, bias, in_features, out_features, fuse_relu, out }
            }
            TAG_QMAXPOOL => {
                let window = c.dim()?;
                let stride = c.dim()?;
                if window == 0 || stride == 0 {
                    return Err(SnapshotError::Corrupt("zero pool dimension"));
                }
                Step::QMaxPool { window, stride }
            }
            TAG_QRELU => Step::QRelu { zero_point: c.u8()? },
            TAG_QDEQUANTIZE => Step::QDequantize { params: c.quant()? },
            _ => return Err(SnapshotError::Corrupt("unknown step tag")),
        };
        steps.push(step);
    }
    if !c.finished() {
        return Err(SnapshotError::Corrupt("trailing bytes in meta"));
    }

    // Precision/step-family consistency: the execution engine dispatches on
    // precision and treats a mismatched step as unreachable, so reject it
    // here instead of panicking in a worker.
    for step in &steps {
        let quantized = matches!(
            step,
            Step::QuantizeInput { .. }
                | Step::QConv { .. }
                | Step::QDense { .. }
                | Step::QConv4 { .. }
                | Step::QDense4 { .. }
                | Step::QMaxPool { .. }
                | Step::QRelu { .. }
                | Step::QDequantize { .. }
        );
        let wants_quantized = precision != PlanPrecision::F32;
        if quantized != wants_quantized && !matches!(step, Step::Flatten) {
            return Err(SnapshotError::Corrupt("step family disagrees with plan precision"));
        }
    }

    Ok(InferencePlan::from_steps(multiplier, steps, precision))
}

impl InferencePlan {
    /// Serialize this plan into a snapshot file at `path` (see the module
    /// docs for the format).
    ///
    /// Works for every precision and every stock [`MultiplierKind`]
    /// (including plans with no multiplier); plans carrying a custom
    /// multiplier object have no stable serial name and are rejected with
    /// [`SnapshotError::UnknownMultiplier`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let image = encode_plan(self)?;
        let mut f = File::create(path.as_ref())?;
        f.write_all(&image)?;
        Ok(())
    }

    /// Map the snapshot at `path` and assemble a ready-to-serve plan.
    ///
    /// No calibration pass, no LUT build: product tables, weight matrices,
    /// and code tensors borrow the mapping zero-copy; only small metadata
    /// (biases, quantizers, shapes) and the cheap derived state (prepared
    /// conv operands, dense row classes) are materialized. Serving from the
    /// result is bit-identical to serving from the plan that was saved.
    pub fn load(path: impl AsRef<Path>) -> Result<InferencePlan, SnapshotError> {
        // Chaos-test injection site (no-op unless the `failpoints` feature
        // is on): models the disk failing mid-read, e.g. during a hot
        // reload of a replacement snapshot.
        if let Some(msg) = da_failpoints::check("snapshot/load") {
            return Err(SnapshotError::Io(std::io::Error::other(msg)));
        }
        let file = File::open(path.as_ref())?;
        // SAFETY: the mapping is validated by checksum immediately after
        // being created; concurrent modification of a published snapshot
        // file is excluded by convention (PlanCache publishes via rename).
        let map = unsafe { Mmap::map(&file)? };
        let region: Arc<dyn ByteRegion> = Arc::new(map);
        // The borrow is re-derived from the Arc'd region for decoding; the
        // resulting Storage windows keep the region alive independently.
        let bytes: &[u8] =
            unsafe { std::slice::from_raw_parts(region.bytes().as_ptr(), region.bytes().len()) };
        decode_plan(bytes, region)
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// A directory of keyed plan snapshots: the compile-once/map-everywhere
/// warm path.
///
/// One process precompiles a pool of wirings (e.g. one per
/// [`MultiplierKind`]) with [`PlanCache::store`]; later processes — or
/// later runs of the same process — map them back in milliseconds with
/// [`PlanCache::load`] or [`PlanCache::get_or_insert_with`]. Stores publish
/// atomically (write to a temp file, then rename), so concurrent readers
/// never observe a torn snapshot.
pub struct PlanCache {
    dir: PathBuf,
}

/// File extension for cached snapshots.
const CACHE_EXT: &str = "daplan";

impl PlanCache {
    /// Open (creating if needed) a cache directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<PlanCache, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PlanCache { dir })
    }

    /// The snapshot path for `key`. Keys are restricted to
    /// `[A-Za-z0-9._-]` (no path separators) so a key can never escape the
    /// cache directory.
    pub fn path(&self, key: &str) -> Result<PathBuf, SnapshotError> {
        if key.is_empty()
            || !key.chars().all(|ch| ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-'))
        {
            return Err(SnapshotError::BadKey(key.to_string()));
        }
        Ok(self.dir.join(format!("{key}.{CACHE_EXT}")))
    }

    /// Whether a snapshot for `key` exists (without validating it).
    pub fn contains(&self, key: &str) -> bool {
        self.path(key).map(|p| p.exists()).unwrap_or(false)
    }

    /// Save `plan` under `key`, publishing atomically. Returns the final
    /// snapshot path.
    pub fn store(&self, key: &str, plan: &InferencePlan) -> Result<PathBuf, SnapshotError> {
        let path = self.path(key)?;
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        plan.save(&tmp)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Map the snapshot stored under `key`.
    pub fn load(&self, key: &str) -> Result<InferencePlan, SnapshotError> {
        InferencePlan::load(self.path(key)?)
    }

    /// Map `key` if cached; otherwise compile with `make`, store the
    /// result, and return it. `make` returning `None` (a network that does
    /// not compile) surfaces as [`SnapshotError::Unsupported`].
    pub fn get_or_insert_with(
        &self,
        key: &str,
        make: impl FnOnce() -> Option<InferencePlan>,
    ) -> Result<InferencePlan, SnapshotError> {
        if self.contains(key) {
            return self.load(key);
        }
        let plan = make().ok_or(SnapshotError::Unsupported("network does not compile"))?;
        self.store(key, &plan)?;
        Ok(plan)
    }

    /// The keys currently cached (files with the snapshot extension).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(&format!(".{CACHE_EXT}")).map(str::to_string)
            })
            .collect();
        keys.sort();
        keys
    }
}
